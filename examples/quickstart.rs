//! Quickstart: record a production run cheaply, reproduce the concurrency
//! bug at diagnosis time, keep a deterministic reproduction forever.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use pres_core::api::Pres;
use pres_core::program::ClosureProgram;
use pres_core::sketch::Mechanism;
use pres_tvm::prelude::*;

fn main() {
    // A tiny "application": two workers increment a shared counter with a
    // classic unprotected read-modify-write.
    let mut spec = ResourceSpec::new();
    let counter = spec.var("counter", 0);
    let app = ClosureProgram::new("quickstart", spec, WorldConfig::default(), move || {
        Box::new(move |ctx: &mut Ctx| {
            let workers: Vec<ThreadId> = (0..2)
                .map(|i| {
                    ctx.spawn(&format!("w{i}"), move |ctx| {
                        let v = ctx.read(counter); // BUG: not atomic
                        ctx.compute(40);
                        ctx.write(counter, v + 1);
                    })
                })
                .collect();
            for w in workers {
                ctx.join(w);
            }
            let total = ctx.read(counter);
            ctx.check(total == 2, "lost update");
        })
    });

    // Production: SYNC sketching — the cheap recording mode.
    let pres = Pres::new(Mechanism::Sync);
    let recorded = pres
        .record_until_failure(&app, 0..5000)
        .expect("under some schedule the update is lost");
    println!(
        "production run failed (seed {}): {}",
        recorded.sketch.meta.seed, recorded.sketch.meta.failure_signature
    );
    println!(
        "recording overhead: {:.2}% | sketch: {} entries, {} bytes",
        recorded.overhead_pct(),
        recorded.sketch.len(),
        recorded.log_bytes
    );

    // Diagnosis: explore the unrecorded interleaving space.
    let repro = pres.reproduce(&app, &recorded);
    assert!(repro.reproduced);
    println!("reproduced after {} replay attempt(s)", repro.attempts);

    // Forever after: the certificate replays the failure deterministically.
    let cert = repro.certificate.expect("certificate minted");
    for i in 1..=3 {
        let out = cert.replay(&app).expect("reproduces every time");
        println!("certificate replay #{i}: {}", out.status);
    }
}
