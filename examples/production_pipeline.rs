//! A fleet simulation: recording is always on in production; the first
//! failing run triggers diagnosis; the resulting certificate becomes the
//! regression test that reproduces the bug on every CI run thereafter.
//!
//! ```sh
//! cargo run --example production_pipeline --release
//! ```

use pres_apps::pbzip::{Pbzip, PbzipConfig};
use pres_core::api::Pres;
use pres_core::sketch::Mechanism;

fn main() {
    let app = Pbzip::new(PbzipConfig::default());
    let pres = Pres::new(Mechanism::Sync);

    // Production fleet: run after run, recording always on. Seeds are tried
    // in order, so when run `seed` fails there were exactly `seed` clean runs.
    let mut overhead_sum = 0.0;
    let mut failing = None;
    for seed in 0..5000u32 {
        let run = pres.record(&app, u64::from(seed));
        overhead_sum += run.overhead_pct();
        if run.failed() {
            println!(
                "run {seed} FAILED: {} (after {seed} clean runs, mean recording overhead {:.2}%)",
                run.sketch.meta.failure_signature,
                overhead_sum / f64::from(seed + 1)
            );
            failing = Some(run);
            break;
        }
    }
    let recorded = failing.expect("the teardown race manifests eventually");

    // Diagnosis: reproduce once.
    let repro = pres.reproduce(&app, &recorded);
    assert!(repro.reproduced);
    println!("diagnosed in {} replay attempt(s)", repro.attempts);

    // Regression: the encoded certificate is the artifact you commit.
    let cert = repro.certificate.expect("certificate");
    let bytes = cert.encode();
    println!("certificate: {} bytes", bytes.len());
    let restored = pres_core::Certificate::decode(&bytes).expect("round-trips");
    let mut ok = 0;
    for _ in 0..20 {
        if restored.replay(&app).is_ok() {
            ok += 1;
        }
    }
    println!("CI regression replays: {ok}/20 deterministic reproductions");
    assert_eq!(ok, 20);
}
