//! The sketching spectrum on one workload: record the MySQL-style server
//! under every mechanism and compare overhead, log size, and the number of
//! replay attempts needed to reproduce its binlog atomicity violation.
//!
//! ```sh
//! cargo run --example sketch_comparison --release
//! ```

use pres_apps::sqld::{Sqld, SqldBug, SqldConfig};
use pres_core::api::Pres;
use pres_core::sketch::Mechanism;

fn main() {
    let buggy = Sqld::new(SqldConfig {
        bug: SqldBug::BinlogAtomicity,
        ..SqldConfig::default()
    });
    // The bug-free workload uses production-calibrated compute density
    // (thousands of instruction units between synchronization points).
    let clean = Sqld::new(SqldConfig {
        txns: 24,
        work_per_txn: 25_000,
        ..SqldConfig::default()
    });

    println!(
        "{:8} {:>12} {:>10} {:>10} {:>9}",
        "sketch", "overhead", "log", "entries", "attempts"
    );
    for mech in [
        Mechanism::Rw,
        Mechanism::Bb,
        Mechanism::BbN(4),
        Mechanism::Func,
        Mechanism::Sys,
        Mechanism::Sync,
    ] {
        let pres = Pres::new(mech).with_max_attempts(300);
        // Overhead measured on the bug-free workload (as in the paper).
        let over = pres.record(&clean, 7);
        // Reproduction measured on the recorded failing run.
        let recorded = pres
            .record_until_failure(&buggy, 0..5000)
            .expect("binlog race manifests");
        let repro = pres.reproduce(&buggy, &recorded);
        println!(
            "{:8} {:>11.2}% {:>9}B {:>10} {:>9}",
            mech.name(),
            over.overhead_pct(),
            over.log_bytes,
            over.sketch.len(),
            if repro.reproduced {
                repro.attempts.to_string()
            } else {
                ">300".into()
            }
        );
    }
    println!("\nthe trade: cheaper sketches record less and search more.");
}
