//! Walkthrough: diagnosing the Apache-style buffered-log corruption with
//! PRES — record the failing production run with SYNC sketching, reproduce
//! it, and inspect the failing execution's racing accesses.
//!
//! ```sh
//! cargo run --example debug_httpd_bug --release
//! ```

use pres_apps::httpd::{Httpd, HttpdBug, HttpdConfig};
use pres_core::api::Pres;
use pres_core::sketch::Mechanism;
use pres_race::hb::{dedup_static, detect_races};

fn main() {
    let server = Httpd::new(HttpdConfig {
        bug: HttpdBug::LogAtomicity,
        ..HttpdConfig::default()
    });

    // The server runs in production with cheap SYNC recording until the
    // log-corruption bug finally bites.
    let pres = Pres::new(Mechanism::Sync);
    let recorded = pres
        .record_until_failure(&server, 0..5000)
        .expect("the log race manifests under some schedule");
    println!(
        "production failure: {} (seed {}, recording overhead {:.2}%)",
        recorded.sketch.meta.failure_signature,
        recorded.sketch.meta.seed,
        recorded.overhead_pct()
    );

    // Diagnosis time: coordinated replay.
    let repro = pres.reproduce(&server, &recorded);
    assert!(repro.reproduced, "{:#?}", repro.history);
    println!("reproduced in {} attempt(s):", repro.attempts);
    for h in &repro.history {
        println!(
            "  attempt {}: {} ({} flip constraints)",
            h.index, h.status, h.constraints
        );
    }

    // The certificate gives a fully deterministic failing execution to
    // inspect: run it and analyse the races around the failure.
    let cert = repro.certificate.expect("certificate");
    let failing = cert.replay(&server).expect("deterministic");
    let races = dedup_static(&detect_races(&failing.trace));
    println!("racing access pairs in the failing execution:");
    for r in &races {
        println!(
            "  {} : {}#{} ({}) vs {}#{} ({})",
            r.loc,
            r.first.tid,
            r.first.gseq,
            if r.first.is_write { "write" } else { "read" },
            r.second.tid,
            r.second.gseq,
            if r.second.is_write { "write" } else { "read" },
        );
    }
    println!(
        "root cause: the access-log buffer length is read and used without the log lock"
    );
}
