//! Integration surface for the PRES reproduction workspace.
//!
//! This crate re-exports the public APIs of the workspace members so that the
//! repository-level examples and integration tests have a single import root.
//! Library users should depend on [`pres_core`] (the paper's contribution),
//! [`pres_tvm`] (the execution substrate), [`pres_race`] (race analysis),
//! [`pres_apps`] (the evaluation application corpus), and [`pres_svc`] (the
//! replay-as-a-service daemon) directly.

pub use pres_apps as apps;
pub use pres_core as core;
pub use pres_race as race;
pub use pres_svc as svc;
pub use pres_tvm as tvm;
