//! Parallel exploration integration: the worker pool must change only the
//! wall clock, never the verdict. For every bug in the corpus, a 4-worker
//! reproduction agrees with the serial one on `reproduced`, neither mode
//! ever spends budget on a duplicate `(seed, constraints)` plan, and the
//! certificate minted under contention replays deterministically.

use pres_core::api::Pres;
use pres_core::oracle::StatusOracle;
use pres_core::sketch::Mechanism;
use pres_core::stats::ExploreStats;
use pres_suite::apps::all_bugs;
use std::collections::BTreeSet;

#[test]
fn parallel_and_serial_agree_across_the_corpus() {
    for bug in all_bugs() {
        let prog = bug.program();
        let pres = Pres::new(Mechanism::Sync).with_max_attempts(300);
        let recorded = pres
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id));

        let serial = pres.reproduce(prog.as_ref(), &recorded);
        let parallel = pres
            .clone()
            .with_workers(4)
            .reproduce(prog.as_ref(), &recorded);

        assert_eq!(
            serial.reproduced, parallel.reproduced,
            "{}: serial and parallel disagree on the verdict",
            bug.id
        );

        for (mode, rep) in [("serial", &serial), ("parallel", &parallel)] {
            let plans: BTreeSet<&str> = rep.history.iter().map(|h| h.plan.as_str()).collect();
            assert_eq!(
                plans.len(),
                rep.history.len(),
                "{}: duplicate (seed, constraints) plan in {mode} history",
                bug.id
            );
            assert_eq!(
                ExploreStats::of(rep).wasted_attempts(),
                0,
                "{}: wasted attempts in {mode} mode",
                bug.id
            );
        }

        // The winner is the lowest-numbered success recorded, so the
        // report does not depend on thread timing.
        let lowest = parallel
            .history
            .iter()
            .filter(|h| h.reproduced)
            .map(|h| h.index)
            .min()
            .unwrap_or_else(|| panic!("{}: no successful attempt in history", bug.id));
        assert_eq!(parallel.attempts, lowest, "{}", bug.id);

        // Reproduce once under contention => reproduce every time.
        let cert = parallel
            .certificate
            .unwrap_or_else(|| panic!("{}: no parallel certificate", bug.id));
        let oracle = StatusOracle::new(&cert.expected_signature);
        for trial in 0..5 {
            cert.replay_with(prog.as_ref(), &oracle)
                .unwrap_or_else(|e| panic!("{} trial {trial}: {e}", bug.id));
        }
    }
}

#[test]
fn worker_count_does_not_change_an_unreproducible_verdict() {
    let bugs = all_bugs();
    let bug = &bugs[0];
    let prog = bug.program();
    let pres = Pres::new(Mechanism::Sync).with_max_attempts(24);
    let mut recorded = pres
        .record_until_failure(prog.as_ref(), 0..5000)
        .expect("failing production run");
    // A signature no run can exhibit: the full budget must be spent.
    recorded.sketch.meta.failure_signature = "assert:never-happens".into();
    for workers in [1usize, 2, 4, 8] {
        let rep = pres
            .clone()
            .with_workers(workers)
            .reproduce(prog.as_ref(), &recorded);
        assert!(!rep.reproduced, "{workers} workers");
        assert_eq!(rep.attempts, 24, "{workers} workers");
        assert_eq!(rep.history.len(), 24, "{workers} workers");
    }
}

/// The executor pool is a pure optimization: the serial/parallel agreement
/// matrix must hold under both engines, and the two engines must agree
/// with each other attempt for attempt, certificate byte for certificate
/// byte.
#[test]
fn serial_parallel_agreement_holds_under_both_executors() {
    use pres_core::ExecutorKind;

    for bug in all_bugs() {
        let prog = bug.program();
        let base = Pres::new(Mechanism::Sync).with_max_attempts(300);
        let recorded = base
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id));

        let mut serial_reps = Vec::new();
        for executor in [ExecutorKind::Pooled, ExecutorKind::Spawning] {
            let pres = base.clone().with_executor(executor);
            let serial = pres.reproduce(prog.as_ref(), &recorded);
            let parallel = pres
                .clone()
                .with_workers(4)
                .reproduce(prog.as_ref(), &recorded);

            assert_eq!(
                serial.reproduced,
                parallel.reproduced,
                "{}: serial and parallel disagree under the {} executor",
                bug.id,
                executor.name()
            );
            for (mode, rep) in [("serial", &serial), ("parallel", &parallel)] {
                assert_eq!(
                    ExploreStats::of(rep).wasted_attempts(),
                    0,
                    "{}: wasted attempts in {mode} mode under the {} executor",
                    bug.id,
                    executor.name()
                );
            }
            serial_reps.push(serial);
        }

        // Cross-executor: serial exploration is fully deterministic, so
        // pooled and spawning runs must match exactly.
        let (pooled, spawning) = (&serial_reps[0], &serial_reps[1]);
        assert_eq!(pooled.reproduced, spawning.reproduced, "{}", bug.id);
        assert_eq!(pooled.attempts, spawning.attempts, "{}", bug.id);
        let cert_bytes =
            |rep: &pres_core::Reproduction| rep.certificate.as_ref().map(|c| c.encode());
        assert_eq!(
            cert_bytes(pooled),
            cert_bytes(spawning),
            "{}: executors mint different certificates",
            bug.id
        );
    }
}

/// Streaming feedback is a pure optimization: for every bug in the corpus
/// it must replicate the buffered (full-trace) pipeline exactly — same
/// attempt counts, same per-attempt plans, same exploration stats, and
/// byte-identical certificates.
#[test]
fn streaming_feedback_is_equivalent_to_buffered() {
    use pres_core::FeedbackMode;

    for bug in all_bugs() {
        let prog = bug.program();
        let base = Pres::new(Mechanism::Sync).with_max_attempts(300);
        let recorded = base
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id));

        // Serial: the whole exploration is deterministic, so every
        // observable must match between the modes.
        let streaming = base
            .clone()
            .with_feedback_mode(FeedbackMode::Streaming)
            .reproduce(prog.as_ref(), &recorded);
        let buffered = base
            .clone()
            .with_feedback_mode(FeedbackMode::Buffered)
            .reproduce(prog.as_ref(), &recorded);

        assert_eq!(streaming.reproduced, buffered.reproduced, "{}", bug.id);
        assert_eq!(streaming.attempts, buffered.attempts, "{}", bug.id);
        let plans = |rep: &pres_core::Reproduction| -> Vec<String> {
            rep.history.iter().map(|h| h.plan.clone()).collect()
        };
        assert_eq!(
            plans(&streaming),
            plans(&buffered),
            "{}: serial attempt-plan sequences diverge",
            bug.id
        );
        assert_eq!(
            ExploreStats::of(&streaming),
            ExploreStats::of(&buffered),
            "{}",
            bug.id
        );
        let cert_bytes = |rep: &pres_core::Reproduction| {
            rep.certificate.as_ref().map(|c| c.encode())
        };
        assert_eq!(
            cert_bytes(&streaming),
            cert_bytes(&buffered),
            "{}: serial certificates are not byte-identical",
            bug.id
        );

        // Parallel (4 workers): the attempt-index→plan mapping is
        // timing-dependent once several attempts are needed, but the
        // verdict never is, and no mode may waste budget on duplicates.
        let streaming4 = base
            .clone()
            .with_workers(4)
            .with_feedback_mode(FeedbackMode::Streaming)
            .reproduce(prog.as_ref(), &recorded);
        let buffered4 = base
            .clone()
            .with_workers(4)
            .with_feedback_mode(FeedbackMode::Buffered)
            .reproduce(prog.as_ref(), &recorded);
        assert_eq!(streaming4.reproduced, buffered4.reproduced, "{}", bug.id);
        assert_eq!(streaming.reproduced, streaming4.reproduced, "{}", bug.id);
        for (mode, rep) in [("streaming", &streaming4), ("buffered", &buffered4)] {
            assert_eq!(
                ExploreStats::of(rep).wasted_attempts(),
                0,
                "{}: wasted attempts under 4-worker {mode} feedback",
                bug.id
            );
        }
        // When the base plan already succeeds (serial attempts == 1) the
        // winning plan is deterministic even under contention, so the
        // minted certificates must agree byte for byte across all four
        // runs.
        if streaming.attempts == 1 {
            assert_eq!(streaming4.attempts, 1, "{}", bug.id);
            assert_eq!(buffered4.attempts, 1, "{}", bug.id);
            assert_eq!(cert_bytes(&streaming), cert_bytes(&streaming4), "{}", bug.id);
            assert_eq!(cert_bytes(&streaming), cert_bytes(&buffered4), "{}", bug.id);
        }
    }
}
