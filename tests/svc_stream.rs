//! End-to-end tests of the v2 front end over real loopback TCP: chunked
//! streaming submits, pipelined tagged requests, v1/v2 coexistence on one
//! daemon, the payload-vs-framing error severity contract, and the
//! connection cap — the properties the sharded connection workers add on
//! top of the PR 5 request/response pipeline.

use pres_suite::apps::registry::all_bugs;
use pres_suite::core::api::Pres;
use pres_suite::core::codec::encode_sketch;
use pres_suite::core::sketch::Mechanism;
use pres_suite::svc::digest::sha256;
use pres_suite::svc::proto::{AnyFrame, Frame, Frame2, Request, Response, DEFAULT_MAX_FRAME};
use pres_suite::svc::queue::QueueConfig;
use pres_suite::svc::server::{FrontendKind, ServeOptions, Server};
use pres_suite::svc::{Client, JobStatus};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const BUG: &str = "pbzip-order";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pres-svc-stream-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_with(data_dir: &std::path::Path, opts: ServeOptions) -> Server {
    Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.to_path_buf(),
        log_interval: None,
        ..opts
    })
    .expect("daemon starts")
}

fn start(data_dir: &std::path::Path) -> Server {
    start_with(data_dir, ServeOptions::default())
}

/// A quick queue config for tests that only exercise the submit path.
fn quick_queue() -> QueueConfig {
    QueueConfig {
        max_attempts: 1,
        max_retries: 0,
        ..QueueConfig::default()
    }
}

fn recorded_sketch_bytes(bug: &str) -> Vec<u8> {
    let case = all_bugs().into_iter().find(|b| b.id == bug).unwrap();
    let program = case.program();
    let pres = Pres::new(Mechanism::Sync);
    let run = pres
        .record_until_failure(program.as_ref(), 0..5000)
        .expect("bug manifests in production");
    encode_sketch(&run.sketch)
}

/// Raw-socket helpers for tests that need frame-level control.
fn send_v2(s: &mut TcpStream, tag: u32, req: &Request) {
    req.to_frame2(tag).unwrap().write_to(s).unwrap();
}

fn recv_v2(s: &mut TcpStream) -> (u32, Response) {
    let frame = AnyFrame::read_from(s, DEFAULT_MAX_FRAME).unwrap().unwrap();
    (frame.tag(), Response::from_any(&frame).unwrap())
}

#[test]
fn streamed_submit_matches_monolithic_digest_and_certificate() {
    let dir = scratch("digest");
    let server = start(&dir);
    let sketch_bytes = recorded_sketch_bytes(BUG);

    // Stream at an adversarially small chunk size: the digest must land on
    // the content hash of the whole message regardless of the split.
    let mut v2 = Client::connect(server.addr()).unwrap();
    v2.set_chunk_bytes(1024);
    let streamed = v2.submit(BUG, &sketch_bytes).unwrap();
    assert_eq!(streamed.sketch, sha256(&sketch_bytes));
    assert!(streamed.fresh_object);
    assert!(streamed.fresh_job);

    // A legacy monolithic submit of the same bytes dedups onto the same
    // object and job: both paths computed the same content address.
    let mut v1 = Client::connect(server.addr()).unwrap();
    v1.use_v1();
    let mono = v1.submit(BUG, &sketch_bytes).unwrap();
    assert_eq!(mono.sketch, streamed.sketch);
    assert_eq!(mono.job, streamed.job);
    assert!(!mono.fresh_object);
    assert!(!mono.fresh_job);

    // The certificate minted from a streamed sketch is the same bytes
    // either client fetches.
    let status = v2.wait(streamed.job, Duration::from_secs(120)).unwrap();
    assert!(matches!(status, JobStatus::Succeeded { .. }), "{status:?}");
    let cert_v2 = v2.fetch_certificate(streamed.job).unwrap();
    let cert_v1 = v1.fetch_certificate(mono.job).unwrap();
    assert!(!cert_v2.is_empty());
    assert_eq!(cert_v2, cert_v1);

    let stats = v2.stats().unwrap();
    assert!(stats.contains("streaming_submits  1"), "stats:\n{stats}");

    server.shutdown();
    server.join();
}

#[test]
fn status_is_answered_while_a_submit_is_still_streaming() {
    let dir = scratch("pipeline");
    let server = start_with(
        &dir,
        ServeOptions {
            queue: quick_queue(),
            ..ServeOptions::default()
        },
    );

    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Open a stream and push one chunk, but do NOT close it...
    send_v2(&mut s, 1, &Request::SubmitBegin { bug: BUG.into() });
    send_v2(
        &mut s,
        1,
        &Request::SubmitChunk {
            data: vec![0xaa; 4096],
        },
    );
    // ...then ask an unrelated question on the same connection.
    send_v2(&mut s, 2, &Request::Status { job: 999 });
    let (tag, response) = recv_v2(&mut s);
    assert_eq!(tag, 2, "the status answer must not wait for the stream");
    assert_eq!(response, Response::Status { status: None });

    // Now finish the stream; its receipt arrives on the stream's tag.
    send_v2(
        &mut s,
        1,
        &Request::SubmitChunk {
            data: vec![0xbb; 4096],
        },
    );
    send_v2(&mut s, 1, &Request::SubmitEnd);
    let (tag, response) = recv_v2(&mut s);
    assert_eq!(tag, 1);
    let Response::Submitted { sketch, .. } = response else {
        panic!("expected a receipt, got {response:?}");
    };
    let mut whole = vec![0xaa; 4096];
    whole.extend_from_slice(&vec![0xbb; 4096]);
    assert_eq!(sketch, sha256(&whole));

    server.shutdown();
    server.join();
}

#[test]
fn two_streams_interleave_on_one_connection() {
    let dir = scratch("interleave");
    let server = start_with(
        &dir,
        ServeOptions {
            queue: quick_queue(),
            ..ServeOptions::default()
        },
    );

    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let body_a: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
    let body_b: Vec<u8> = (0..7_777u32).map(|i| (i * 3 + 1) as u8).collect();

    // Two submits in flight at once, chunks strictly alternating: the
    // server must key stream state by tag, not by connection.
    send_v2(&mut s, 10, &Request::SubmitBegin { bug: BUG.into() });
    send_v2(&mut s, 20, &Request::SubmitBegin { bug: BUG.into() });
    let (mut ca, mut cb) = (body_a.chunks(1000), body_b.chunks(1000));
    loop {
        let (a, b) = (ca.next(), cb.next());
        if let Some(a) = a {
            send_v2(&mut s, 10, &Request::SubmitChunk { data: a.to_vec() });
        }
        if let Some(b) = b {
            send_v2(&mut s, 20, &Request::SubmitChunk { data: b.to_vec() });
        }
        if a.is_none() && b.is_none() {
            break;
        }
    }
    send_v2(&mut s, 20, &Request::SubmitEnd);
    send_v2(&mut s, 10, &Request::SubmitEnd);

    // Both receipts arrive, tagged, in completion order (B closed first).
    let (tag_first, resp_first) = recv_v2(&mut s);
    let (tag_second, resp_second) = recv_v2(&mut s);
    assert_eq!((tag_first, tag_second), (20, 10));
    let Response::Submitted { sketch: got_b, .. } = resp_first else {
        panic!("expected a receipt, got {resp_first:?}");
    };
    let Response::Submitted { sketch: got_a, .. } = resp_second else {
        panic!("expected a receipt, got {resp_second:?}");
    };
    assert_eq!(got_a, sha256(&body_a));
    assert_eq!(got_b, sha256(&body_b));
    assert_ne!(got_a, got_b);

    server.shutdown();
    server.join();
}

#[test]
fn mid_stream_disconnect_leaves_the_store_clean() {
    let dir = scratch("disconnect");
    let server = start(&dir);
    let objects_before = server.queue().store().len().unwrap();

    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        send_v2(&mut s, 1, &Request::SubmitBegin { bug: BUG.into() });
        send_v2(
            &mut s,
            1,
            &Request::SubmitChunk {
                data: vec![0xcd; 100_000],
            },
        );
        // Hang up with the stream open: the staging file must go with us.
    }

    // The worker notices the EOF on its next poll round; wait for the
    // live-connection gauge to drop before inspecting the staging dir.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let live = server.metrics().snapshot().connections_live;
        if live == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "connection never reaped (live {live})");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Give the Drop a moment past the gauge update, then: no objects
    // gained, no staging litter.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(server.queue().store().len().unwrap(), objects_before);
    let tmp_entries: Vec<_> = std::fs::read_dir(dir.join("store").join("tmp"))
        .unwrap()
        .collect();
    assert!(tmp_entries.is_empty(), "staging litter: {tmp_entries:?}");

    // And the daemon still serves.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.status(0).unwrap().is_none());

    server.shutdown();
    server.join();
}

#[test]
fn payload_errors_keep_the_connection_framing_errors_drop_it() {
    let dir = scratch("severity");
    let server = start(&dir);

    // Payload severity on the sharded front end: an unknown kind costs
    // one tagged ERROR, then the same connection keeps serving.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    Frame2 {
        tag: 7,
        kind: 0x6e,
        payload: vec![],
    }
    .write_to(&mut s)
    .unwrap();
    let (tag, response) = recv_v2(&mut s);
    assert_eq!(tag, 7);
    assert!(matches!(response, Response::Error { .. }));
    send_v2(&mut s, 8, &Request::Status { job: 1 });
    let (tag, response) = recv_v2(&mut s);
    assert_eq!(tag, 8, "connection must survive a payload error");
    assert_eq!(response, Response::Status { status: None });

    // Chunks without a BEGIN are payload errors too, and named as such.
    send_v2(&mut s, 9, &Request::SubmitEnd);
    let (tag, response) = recv_v2(&mut s);
    assert_eq!(tag, 9);
    let Response::Error { message } = response else {
        panic!("expected an error, got {response:?}");
    };
    assert!(message.contains("no open stream"), "{message}");

    // Framing severity: garbage magic gets one ERROR frame, then EOF.
    let mut bad = TcpStream::connect(server.addr()).unwrap();
    bad.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    bad.write_all(b"XXXXXXXXXXXX").unwrap();
    let frame = Frame::read_from(&mut bad, DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert!(matches!(
        Response::from_frame(&frame),
        Ok(Response::Error { .. })
    ));
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "framing error must close the connection");

    server.shutdown();
    server.join();
}

#[test]
fn legacy_frontend_applies_the_same_severity_contract() {
    let dir = scratch("legacy");
    let server = start_with(
        &dir,
        ServeOptions {
            frontend: FrontendKind::Legacy,
            ..ServeOptions::default()
        },
    );

    // Unknown kind over v1: one ERROR, connection kept (this was a drop
    // before the severity split).
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    Frame {
        kind: 0x6e,
        payload: vec![],
    }
    .write_to(&mut s)
    .unwrap();
    let frame = Frame::read_from(&mut s, DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert!(matches!(
        Response::from_frame(&frame),
        Ok(Response::Error { .. })
    ));
    Request::Status { job: 5 }
        .to_frame()
        .unwrap()
        .write_to(&mut s)
        .unwrap();
    let frame = Frame::read_from(&mut s, DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert_eq!(
        Response::from_frame(&frame).unwrap(),
        Response::Status { status: None },
        "legacy connection must survive a payload error"
    );

    // Bad magic over v1: one ERROR, then EOF.
    let mut bad = TcpStream::connect(server.addr()).unwrap();
    bad.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    bad.write_all(b"XXXXXXXX").unwrap();
    let frame = Frame::read_from(&mut bad, DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert!(matches!(
        Response::from_frame(&frame),
        Ok(Response::Error { .. })
    ));
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // A v2 client degrades loudly, not silently: the legacy front end
    // rejects the versioned frame as a framing error.
    let mut v2 = TcpStream::connect(server.addr()).unwrap();
    v2.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    send_v2(&mut v2, 1, &Request::Stats);
    let frame = Frame::read_from(&mut v2, DEFAULT_MAX_FRAME).unwrap().unwrap();
    let Ok(Response::Error { message }) = Response::from_frame(&frame) else {
        panic!("expected an error frame");
    };
    assert!(message.contains("version"), "{message}");

    server.shutdown();
    server.join();
}

#[test]
fn connection_cap_refuses_with_an_error_frame() {
    let dir = scratch("cap");
    let server = start_with(
        &dir,
        ServeOptions {
            max_connections: 2,
            ..ServeOptions::default()
        },
    );

    // Two live connections, proven live with a roundtrip each.
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    assert!(a.status(0).unwrap().is_none());
    assert!(b.status(0).unwrap().is_none());

    // The third is answered with one ERROR frame and closed.
    let mut c = TcpStream::connect(server.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let frame = Frame::read_from(&mut c, DEFAULT_MAX_FRAME).unwrap().unwrap();
    let Ok(Response::Error { message }) = Response::from_frame(&frame) else {
        panic!("expected a refusal frame");
    };
    assert!(message.contains("connection limit"), "{message}");
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    let stats = a.stats().unwrap();
    assert!(stats.contains("connections_refused 1"), "stats:\n{stats}");

    // Freeing a slot readmits new clients.
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.metrics().snapshot().connections_live < 2 {
            break;
        }
        assert!(Instant::now() < deadline, "closed connection never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut d = Client::connect(server.addr()).unwrap();
    assert!(d.status(0).unwrap().is_none());

    server.shutdown();
    server.join();
}

#[test]
fn a_filled_pipeline_window_stalls_and_recovers() {
    let dir = scratch("window");
    let server = start_with(
        &dir,
        ServeOptions {
            inflight_window: 2,
            ..ServeOptions::default()
        },
    );

    // Fire a burst of pipelined requests without reading a single
    // response: the tiny window must stall reads rather than buffer
    // unboundedly — and every response must still arrive, tagged, once we
    // start draining.
    let mut client = Client::connect(server.addr()).unwrap();
    let tags: Vec<u32> = (0..50u64)
        .map(|job| client.send(&Request::Status { job }).unwrap())
        .collect();
    let mut got = Vec::new();
    for _ in &tags {
        let (tag, response) = client.recv().unwrap();
        assert_eq!(response, Response::Status { status: None });
        got.push(tag);
    }
    assert_eq!(got, tags, "responses arrive in dispatch order");

    assert!(
        server.metrics().snapshot().window_stalls >= 1,
        "a 2-deep window under a 50-deep burst must stall at least once"
    );

    server.shutdown();
    server.join();
}
