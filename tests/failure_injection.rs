//! Failure-path coverage through the public API: deadlock detection, step
//! budgets, crashes, and misuse faults all surface as structured outcomes
//! rather than hangs or panics of the harness itself.

use pres_core::program::ClosureProgram;
use pres_core::recorder::run_traced;
use pres_suite::tvm::prelude::*;

fn run_program(
    prog: &dyn pres_core::program::Program,
    seed: u64,
    max_steps: u64,
) -> pres_suite::tvm::vm::RunOutcome {
    let body = prog.root();
    pres_suite::tvm::vm::run(
        VmConfig {
            max_steps,
            world: prog.world(),
            ..VmConfig::default()
        },
        prog.resources(),
        &mut RandomScheduler::new(seed),
        &mut NullObserver,
        move |ctx| body(ctx),
    )
}

#[test]
fn forced_deadlock_reports_the_cycle() {
    let mut spec = ResourceSpec::new();
    let a = spec.lock("a");
    let b = spec.lock("b");
    let gate = spec.chan("gate");
    let prog = ClosureProgram::new("abba", spec, WorldConfig::default(), move || {
        Box::new(move |ctx: &mut Ctx| {
            let t = ctx.spawn("t", move |ctx| {
                ctx.lock(b);
                ctx.send(gate, 1);
                ctx.lock(a);
                ctx.unlock(a);
                ctx.unlock(b);
            });
            ctx.lock(a);
            ctx.recv(gate);
            ctx.lock(b);
            ctx.unlock(b);
            ctx.unlock(a);
            ctx.join(t);
        })
    });
    match run_program(&prog, 0, 100_000).status {
        RunStatus::Failed(Failure::Deadlock { locks, threads, .. }) => {
            assert_eq!(locks.len(), 2);
            assert_eq!(threads.len(), 2);
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn infinite_loops_hit_the_step_budget() {
    let mut spec = ResourceSpec::new();
    let x = spec.var("x", 0);
    let prog = ClosureProgram::new("spin", spec, WorldConfig::default(), move || {
        Box::new(move |ctx: &mut Ctx| loop {
            ctx.fetch_add(x, 1);
        })
    });
    assert_eq!(run_program(&prog, 0, 1_000).status, RunStatus::StepLimit);
}

#[test]
fn vthread_panic_is_an_isolated_crash() {
    let spec = ResourceSpec::new();
    let prog = ClosureProgram::new("boom", spec, WorldConfig::default(), || {
        Box::new(|ctx: &mut Ctx| {
            let t = ctx.spawn("bomber", |ctx| {
                ctx.compute(5);
                panic!("simulated segfault");
            });
            ctx.join(t);
        })
    });
    match run_program(&prog, 0, 100_000).status {
        RunStatus::Failed(Failure::Crash { message, .. }) => {
            assert!(message.contains("simulated segfault"));
        }
        other => panic!("expected crash, got {other}"),
    }
}

#[test]
fn lock_misuse_is_a_crash_with_context() {
    let mut spec = ResourceSpec::new();
    let l = spec.lock("m");
    let prog = ClosureProgram::new("misuse", spec, WorldConfig::default(), move || {
        Box::new(move |ctx: &mut Ctx| {
            ctx.unlock(l);
        })
    });
    match run_program(&prog, 0, 1_000).status {
        RunStatus::Failed(Failure::Crash { message, .. }) => {
            assert!(message.contains("does not hold"), "{message}");
        }
        other => panic!("expected misuse crash, got {other}"),
    }
}

#[test]
fn double_acquire_self_deadlocks_with_unit_cycle() {
    let mut spec = ResourceSpec::new();
    let l = spec.lock("m");
    let prog = ClosureProgram::new("reenter", spec, WorldConfig::default(), move || {
        Box::new(move |ctx: &mut Ctx| {
            ctx.lock(l);
            ctx.lock(l); // non-reentrant: self-deadlock
        })
    });
    match run_program(&prog, 0, 1_000).status {
        RunStatus::Failed(Failure::Deadlock { threads, .. }) => {
            assert_eq!(threads.len(), 1);
        }
        other => panic!("expected self-deadlock, got {other}"),
    }
}

#[test]
fn traced_runs_capture_failure_context() {
    let mut spec = ResourceSpec::new();
    let x = spec.var("x", 0);
    let prog = ClosureProgram::new("assertfail", spec, WorldConfig::default(), move || {
        Box::new(move |ctx: &mut Ctx| {
            ctx.write(x, 41);
            ctx.check(false, "invariant violated");
        })
    });
    let out = run_traced(&prog, &VmConfig::default(), 0);
    assert!(out.status.is_failed());
    // The trace contains everything up to the failure.
    assert!(out
        .trace
        .events()
        .iter()
        .any(|e| matches!(e.op, pres_tvm::op::Op::Write(v, 41) if v == x)));
}
