//! Executor-pool reuse: hosting replay attempts on recycled OS workers is
//! invisible to every observable artifact. A width-1 pool serves 50
//! PI-replay attempts of one corpus bug and each attempt's schedule,
//! status, output, and re-derived sketch are byte-identical to a fresh
//! spawning VM's; re-running the same seeds on the warmed pool creates
//! zero OS threads.

use std::sync::Arc;

use pres_core::codec::encode_sketch;
use pres_core::recorder::record;
use pres_core::replay::PiReplayScheduler;
use pres_core::sketch::{Mechanism, Sketch, SketchIndex};
use pres_suite::apps::all_bugs;
use pres_suite::tvm::pool::VthreadPool;
use pres_suite::tvm::trace::{NullObserver, TraceMode};
use pres_suite::tvm::vm::{self, RunOutcome, VmConfig};

const ATTEMPTS: u64 = 50;

/// One PI-replay attempt, on the pool when given one, spawning otherwise.
fn attempt(
    prog: &dyn pres_core::program::Program,
    index: &Arc<SketchIndex>,
    seed: u64,
    pool: Option<&VthreadPool>,
) -> RunOutcome {
    let config = VmConfig {
        trace_mode: TraceMode::Full,
        world: prog.world(),
        ..VmConfig::default()
    };
    let mut sched = PiReplayScheduler::with_index(Arc::clone(index), Vec::new(), seed);
    let body = prog.root();
    match pool {
        Some(pool) => vm::run_with_pool(
            config,
            prog.resources(),
            &mut sched,
            &mut NullObserver,
            pool,
            move |ctx| body(ctx),
        ),
        None => vm::run(
            config,
            prog.resources(),
            &mut sched,
            &mut NullObserver,
            move |ctx| body(ctx),
        ),
    }
}

#[test]
fn fifty_attempts_on_a_width_one_pool_match_fresh_vms_byte_for_byte() {
    let bugs = all_bugs();
    let bug = &bugs[0];
    let prog = bug.program();
    let recorded = record(prog.as_ref(), Mechanism::Sync, &VmConfig::default(), 7);
    let index = Arc::new(SketchIndex::new(&recorded.sketch));

    // Width 1 is only a sizing hint: the pool must still grow to the
    // program's peak concurrency and then serve every attempt from the
    // recycled workers.
    let pool = VthreadPool::new(1);
    let mut total_pool_spawns = 0;
    for seed in 0..ATTEMPTS {
        let pooled = attempt(prog.as_ref(), &index, seed, Some(&pool));
        let fresh = attempt(prog.as_ref(), &index, seed, None);

        assert_eq!(pooled.schedule, fresh.schedule, "seed {seed}: schedules");
        assert_eq!(
            pooled.status.to_string(),
            fresh.status.to_string(),
            "seed {seed}: status"
        );
        assert_eq!(pooled.stdout, fresh.stdout, "seed {seed}: stdout");
        assert_eq!(
            pooled.thread_names, fresh.thread_names,
            "seed {seed}: thread names"
        );

        // The sketch a recorder would distill from the attempt is the
        // artifact the whole system trades in: byte-identical too.
        let sketch_of = |out: &RunOutcome| {
            encode_sketch(&Sketch::from_events(Mechanism::Sync, out.trace.events()))
        };
        assert_eq!(
            sketch_of(&pooled),
            sketch_of(&fresh),
            "seed {seed}: re-derived sketches diverge"
        );

        // Virtual spawn counts agree; OS spawn counts tell the story:
        // every fresh VM pays spawns+1 threads, the pool only grows.
        assert_eq!(pooled.stats.spawns, fresh.stats.spawns, "seed {seed}");
        assert_eq!(
            fresh.stats.os_spawns,
            fresh.stats.spawns + 1,
            "seed {seed}: spawning executor thread accounting"
        );
        total_pool_spawns += pooled.stats.os_spawns;
    }
    assert_eq!(
        total_pool_spawns,
        pool.spawned_workers(),
        "pool spawn accounting disagrees with per-run stats"
    );

    // Steady state: the same 50 seeds replayed on the warmed pool create
    // zero OS threads and leave the worker set untouched.
    let warmed = pool.spawned_workers();
    for seed in 0..ATTEMPTS {
        let out = attempt(prog.as_ref(), &index, seed, Some(&pool));
        assert_eq!(
            out.stats.os_spawns, 0,
            "seed {seed}: warm attempt spawned an OS thread"
        );
    }
    assert_eq!(
        pool.spawned_workers(),
        warmed,
        "worker set grew after warm-up"
    );
    assert!(
        pool.take_escaped_panics().is_empty(),
        "no vthread body panicked"
    );
}
