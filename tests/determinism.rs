//! Determinism guarantees, checked across crates: identical seeds yield
//! identical executions for every application; recorded pick sequences
//! replay exactly; recording never perturbs scheduling.

use pres_core::recorder::{record, run_traced};
use pres_core::sketch::Mechanism;
use pres_suite::apps::registry::{all_apps, WorkloadScale};
use pres_suite::tvm::prelude::*;

#[test]
fn identical_seeds_give_identical_traces_for_every_app() {
    let config = VmConfig {
        trace_mode: TraceMode::Full,
        ..VmConfig::default()
    };
    for app in all_apps() {
        let prog = app.workload(WorkloadScale::Small);
        let a = run_traced(prog.as_ref(), &config, 17);
        let b = run_traced(prog.as_ref(), &config, 17);
        assert_eq!(a.schedule, b.schedule, "{}", app.id);
        assert_eq!(a.trace.len(), b.trace.len(), "{}", app.id);
        for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
            assert_eq!(x, y, "{}", app.id);
        }
        assert_eq!(a.stdout, b.stdout, "{}", app.id);
        assert_eq!(a.files, b.files, "{}", app.id);
    }
}

#[test]
fn different_seeds_eventually_differ() {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.id == "lu").expect("lu");
    let prog = app.workload(WorkloadScale::Small);
    let config = VmConfig::default();
    let base = run_traced(prog.as_ref(), &config, 0);
    let mut any_differs = false;
    for seed in 1..10 {
        if run_traced(prog.as_ref(), &config, seed).schedule != base.schedule {
            any_differs = true;
            break;
        }
    }
    assert!(any_differs, "the scheduler must actually vary with the seed");
}

#[test]
fn recorded_schedules_replay_exactly_for_every_app() {
    let config = VmConfig {
        trace_mode: TraceMode::Full,
        ..VmConfig::default()
    };
    for app in all_apps() {
        let prog = app.workload(WorkloadScale::Small);
        let first = run_traced(prog.as_ref(), &config, 23);
        let body = prog.root();
        let mut scripted = ScriptedScheduler::new(first.schedule.clone());
        let second = pres_suite::tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                world: prog.world(),
                ..VmConfig::default()
            },
            prog.resources(),
            &mut scripted,
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        assert_eq!(first.status, second.status, "{}", app.id);
        assert_eq!(first.schedule, second.schedule, "{}", app.id);
        for (x, y) in first.trace.events().iter().zip(second.trace.events()) {
            assert_eq!(x, y, "{}", app.id);
        }
    }
}

#[test]
fn recording_never_perturbs_the_schedule() {
    let config = VmConfig::default();
    for app in all_apps() {
        let prog = app.workload(WorkloadScale::Small);
        for mech in [Mechanism::Rw, Mechanism::Sync] {
            let run = record(prog.as_ref(), mech, &config, 9);
            assert_eq!(
                run.native.schedule, run.outcome.schedule,
                "{} under {}",
                app.id, mech
            );
            assert_eq!(run.native.stats, run.outcome.stats, "{}", app.id);
            // But the recorded run is never cheaper than native.
            assert!(run.outcome.time.makespan >= run.native.time.makespan);
        }
    }
}
