//! Always-on ring recording vs. classic full-run recording, across the
//! whole bug corpus, both executors, and worker counts 1 and 4.
//!
//! Two pins:
//!
//! * **Full retention** (budgets larger than any run): the ring never
//!   rotates, its checkpoint is genesis, and everything downstream —
//!   sketch entries, exploration, the minted certificate — must be
//!   *byte-identical* to classic recording. Always-on mode costs nothing
//!   when nothing is evicted.
//! * **Bounded retention** (budgets forcing rotation): memory is provably
//!   bounded by `ring_epochs x epoch_entries`, the flush replays only the
//!   retained window after a deterministic fast-forward, reproduction
//!   still succeeds for every corpus bug (the failure always lies in the
//!   retained window — the flush happens *at* the failure), and the
//!   minted certificate's schedule is prefix-faithful to the production
//!   run up to the checkpoint boundary.

use pres_core::api::Pres;
use pres_core::recorder::{run_traced, RingConfig};
use pres_core::sketch::Mechanism;
use pres_core::ExecutorKind;
use pres_suite::apps::all_bugs;
use pres_suite::tvm::vm::VmConfig;

const EXECUTORS: [ExecutorKind; 2] = [ExecutorKind::Pooled, ExecutorKind::Spawning];
const WORKER_COUNTS: [usize; 2] = [1, 4];

fn explorer(executor: ExecutorKind, workers: usize) -> Pres {
    Pres::new(Mechanism::Sync)
        .with_max_attempts(300)
        .with_executor(executor)
        .with_workers(workers)
}

#[test]
fn full_retention_ring_is_byte_identical_to_classic() {
    // Budgets no corpus run can exhaust: the ring holds the whole run.
    let full = RingConfig {
        epoch_entries: 1 << 20,
        epoch_cost: 0,
        ring_epochs: 4,
    };
    for bug in all_bugs() {
        let prog = bug.program();
        let classic = Pres::new(Mechanism::Sync)
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id));
        let ring = Pres::new(Mechanism::Sync)
            .with_ring(full.clone())
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing ring run", bug.id));

        // Same production run, same window: the ring saw everything.
        assert_eq!(classic.sketch.meta, ring.sketch.meta, "{}", bug.id);
        assert_eq!(classic.sketch.entries, ring.sketch.entries, "{}", bug.id);
        let cp = ring
            .sketch
            .checkpoint
            .as_deref()
            .unwrap_or_else(|| panic!("{}: ring run lost its checkpoint", bug.id));
        assert!(cp.is_genesis(), "{}: full retention must not rotate", bug.id);
        assert_eq!(cp.dropped_entries, 0, "{}", bug.id);

        // Exploration from the ring flush is byte-identical to classic,
        // whatever hosts the attempt vthreads and however many workers
        // race them.
        for executor in EXECUTORS {
            for workers in WORKER_COUNTS {
                let from_classic = explorer(executor, workers).reproduce(prog.as_ref(), &classic);
                let from_ring = explorer(executor, workers).reproduce(prog.as_ref(), &ring);
                assert_eq!(
                    from_classic.reproduced,
                    from_ring.reproduced,
                    "{} ({} executor, {workers} workers): verdicts diverge",
                    bug.id,
                    executor.name(),
                );
                let a = from_classic
                    .certificate
                    .unwrap_or_else(|| panic!("{}: classic did not reproduce", bug.id));
                let b = from_ring
                    .certificate
                    .unwrap_or_else(|| panic!("{}: ring did not reproduce", bug.id));
                assert_eq!(a.expected_signature, b.expected_signature, "{}", bug.id);
                if workers == 1 {
                    // Serial exploration is byte-deterministic, so the
                    // genesis-checkpoint ring must mint the *same bytes*
                    // as classic. (Racing workers merge feedback in
                    // completion order, so deep multi-worker searches are
                    // only verdict-deterministic, ring or no ring.)
                    assert_eq!(from_classic.attempts, from_ring.attempts, "{}", bug.id);
                    assert_eq!(
                        a.encode(),
                        b.encode(),
                        "{} ({} executor): certificates differ",
                        bug.id,
                        executor.name(),
                    );
                } else {
                    b.replay(prog.as_ref())
                        .unwrap_or_else(|e| panic!("{}: {e}", bug.id));
                }
            }
        }
    }
}

#[test]
fn bounded_ring_reproduces_every_corpus_bug_from_its_retained_window() {
    let mut any_rotated = false;
    for bug in all_bugs() {
        let prog = bug.program();
        // Size the window off the classic sketch so every bug rotates but
        // still retains meaningful context: two epochs of ~one third of
        // the full run each (the oldest third is evicted).
        let classic = Pres::new(Mechanism::Sync)
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id));
        let epoch_entries = (classic.sketch.len() as u64 / 3).max(8);
        let ring_cfg = RingConfig {
            epoch_entries,
            epoch_cost: 0,
            ring_epochs: 2,
        };
        let ring = Pres::new(Mechanism::Sync)
            .with_ring(ring_cfg.clone())
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing ring run", bug.id));
        let cp = ring
            .sketch
            .checkpoint
            .as_deref()
            .unwrap_or_else(|| panic!("{}: ring run lost its checkpoint", bug.id));

        // Bounded memory, proven: the retained window never exceeds the
        // configured budget (each epoch cuts at `epoch_entries`), and the
        // epoch directory accounts for exactly the retained entries.
        assert!(
            ring.sketch.len() as u64 <= ring_cfg.ring_epochs as u64 * epoch_entries,
            "{}: {} retained entries exceed the {}x{} budget",
            bug.id,
            ring.sketch.len(),
            ring_cfg.ring_epochs,
            epoch_entries,
        );
        assert_eq!(
            cp.retained_entries(),
            ring.sketch.len() as u64,
            "{}: epoch directory disagrees with the window",
            bug.id
        );
        if !cp.is_genesis() {
            any_rotated = true;
            assert!(cp.dropped_entries > 0, "{}", bug.id);
            assert!(
                ring.sketch.len() < classic.sketch.len(),
                "{}: rotation must shrink the flushed window",
                bug.id
            );
        }

        // The production schedule prefix the fast-forward must retrace.
        let production = run_traced(prog.as_ref(), &VmConfig::default(), ring.sketch.meta.seed);

        // The failure lies in the retained window by construction (the
        // flush happens at the failure), so every executor/worker
        // combination must reproduce it — deterministically.
        for executor in EXECUTORS {
            for workers in WORKER_COUNTS {
                let first = explorer(executor, workers).reproduce(prog.as_ref(), &ring);
                assert!(
                    first.reproduced,
                    "{} ({} executor, {workers} workers): not reproduced from the window",
                    bug.id,
                    executor.name(),
                );
                if !cp.is_genesis() {
                    let status = first
                        .checkpoint
                        .as_ref()
                        .unwrap_or_else(|| panic!("{}: no checkpoint status", bug.id));
                    assert!(status.verified, "{}: {:?}", bug.id, status.detail);
                    assert_eq!(status.boundary, cp.boundary, "{}", bug.id);
                }
                let cert = first.certificate.expect("certificate exists on success");
                assert_eq!(
                    cert.expected_signature, ring.sketch.meta.failure_signature,
                    "{}",
                    bug.id
                );
                // Prefix fidelity: the certificate's schedule replays the
                // production run's picks verbatim up to the boundary —
                // the window replay really did resume *that* run.
                let boundary = cp.boundary as usize;
                assert!(cert.schedule.len() >= boundary, "{}", bug.id);
                assert_eq!(
                    cert.schedule[..boundary],
                    production.schedule[..boundary],
                    "{} ({} executor, {workers} workers): fast-forward prefix diverges",
                    bug.id,
                    executor.name(),
                );
                // Certificates replay standalone, window or no window.
                cert.replay(prog.as_ref())
                    .unwrap_or_else(|e| panic!("{}: {e}", bug.id));

                // Determinism: a serial configuration reruns to the same
                // certificate bytes. (Multi-worker reruns are verdict-
                // deterministic only — feedback merges in completion
                // order.)
                if workers == 1 {
                    let again = explorer(executor, workers).reproduce(prog.as_ref(), &ring);
                    assert_eq!(
                        again.certificate.expect("reproduces again").encode(),
                        cert.encode(),
                        "{} ({} executor): rerun diverged",
                        bug.id,
                        executor.name(),
                    );
                }
            }
        }
        let pooled = explorer(ExecutorKind::Pooled, 1).reproduce(prog.as_ref(), &ring);
        let spawning = explorer(ExecutorKind::Spawning, 1).reproduce(prog.as_ref(), &ring);
        assert_eq!(
            pooled.certificate.unwrap().encode(),
            spawning.certificate.unwrap().encode(),
            "{}: executor kind leaked into the certificate",
            bug.id
        );
    }
    assert!(
        any_rotated,
        "no corpus bug rotated its ring; the bounded pin tested nothing"
    );
}
