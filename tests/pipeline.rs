//! End-to-end pipeline integration: for every bug in the corpus, a failing
//! production run recorded with SYNC sketching is reproducible, and the
//! minted certificate replays the identical failure deterministically —
//! the full record → explore → certify loop across all five crates.

use pres_core::api::Pres;
use pres_core::explore::Strategy;
use pres_core::sketch::Mechanism;
use pres_suite::apps::all_bugs;

#[test]
fn every_bug_reproduces_under_sync_sketching() {
    for bug in all_bugs() {
        let prog = bug.program();
        let pres = Pres::new(Mechanism::Sync).with_max_attempts(300);
        let recorded = pres
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id));
        assert_eq!(
            recorded.sketch.meta.program, bug.id,
            "sketch is tagged with the program"
        );
        let repro = pres.reproduce(prog.as_ref(), &recorded);
        assert!(
            repro.reproduced,
            "{}: not reproduced in 300 attempts: {:#?}",
            bug.id,
            repro.history.last()
        );
        assert!(
            repro.attempts <= 60,
            "{}: took {} attempts under SYNC",
            bug.id,
            repro.attempts
        );
        // Reproduce once => reproduce every time.
        let cert = repro.certificate.expect("certificate minted");
        for trial in 0..5 {
            cert.replay(prog.as_ref())
                .unwrap_or_else(|e| panic!("{} trial {trial}: {e}", bug.id));
        }
    }
}

#[test]
fn rw_baseline_reproduces_every_bug_first_try() {
    for bug in all_bugs() {
        let prog = bug.program();
        let pres = Pres::new(Mechanism::Rw).with_max_attempts(5);
        let recorded = pres
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id));
        let repro = pres.reproduce(prog.as_ref(), &recorded);
        assert!(repro.reproduced, "{}", bug.id);
        assert_eq!(
            repro.attempts, 1,
            "{}: RW must be deterministic on the first attempt",
            bug.id
        );
    }
}

#[test]
fn random_strategy_also_terminates_for_an_easy_bug() {
    let bugs = all_bugs();
    let bug = bugs
        .iter()
        .find(|b| b.id == "browser-multivar-atomicity")
        .expect("bug exists");
    let prog = bug.program();
    let pres = Pres::new(Mechanism::Sync)
        .with_strategy(Strategy::Random)
        .with_max_attempts(300);
    let recorded = pres
        .record_until_failure(prog.as_ref(), 0..5000)
        .expect("failing run");
    let repro = pres.reproduce(prog.as_ref(), &recorded);
    assert!(repro.reproduced);
}

#[test]
fn certificates_survive_serialization() {
    let bugs = all_bugs();
    let bug = bugs.iter().find(|b| b.id == "pbzip-order").expect("bug");
    let prog = bug.program();
    let pres = Pres::new(Mechanism::Sync).with_max_attempts(300);
    let recorded = pres
        .record_until_failure(prog.as_ref(), 0..5000)
        .expect("failing run");
    let repro = pres.reproduce(prog.as_ref(), &recorded);
    let cert = repro.certificate.expect("certificate");
    let decoded = pres_core::Certificate::decode(&cert.encode()).expect("round-trips");
    assert_eq!(decoded, cert);
    decoded.replay(prog.as_ref()).expect("still reproduces");
}
