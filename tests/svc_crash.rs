//! Crash-consistency matrix for the service store and journal.
//!
//! Every injectable crash point in [`FaultPoint::ALL`] is driven here:
//! arm the point, perform the write until it "crashes" (the injected
//! error leaves the same bytes on disk a SIGKILL at that instruction
//! would), then reopen the directory — the restart — and assert the
//! recovery invariants:
//!
//! * no write that was acknowledged before the crash is lost;
//! * no write that was *not* acknowledged surfaces after recovery
//!   (no phantom objects, no phantom journal records);
//! * the store's index (the directory walk) matches the objects on disk,
//!   every readable object passes its self-verifying read, and staging
//!   leftovers are swept;
//! * the journal replays cleanly and appends land after the last clean
//!   record, not behind torn garbage.
//!
//! The `pres-torture` binary covers the same invariants against the real
//! daemon under SIGKILL; this file covers them deterministically, one
//! crash point at a time.

use pres_suite::svc::faultpoint::{FaultMode, FaultPoint, Faults, INJECTED};
use pres_suite::svc::journal::{Journal, Record};
use pres_suite::svc::queue::{JobQueue, JobStatus, QueueConfig};
use pres_suite::svc::store::Store;
use pres_suite::svc::{sha256, Metrics};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pres-svc-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dir_entry_count(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0)
}

/// The store half of the matrix: `(point, mode, published after crash?)`.
/// Publication is the rename; only a crash *after* it leaves the object
/// visible — and then it must verify, because the staging bytes were
/// fsynced before the rename was issued.
fn store_matrix() -> Vec<(FaultPoint, FaultMode, bool)> {
    vec![
        (FaultPoint::StoreStageCrash, FaultMode::Crash, false),
        (
            FaultPoint::StoreStageTorn,
            FaultMode::Torn { keep: 3 },
            false,
        ),
        (FaultPoint::StoreTmpSyncCrash, FaultMode::Crash, false),
        (FaultPoint::StoreRenameCrash, FaultMode::Crash, false),
        (FaultPoint::StoreDirSyncCrash, FaultMode::Crash, true),
    ]
}

/// The journal half: every point interrupts the append of a second
/// record. `keep: 6` leaves a plausible length prefix plus partial
/// payload — the torn shape only the CRC trailer can unmask. The cohort
/// points are the group-commit batch boundaries: before any cohort byte
/// is written, and between the cohort write and its single `fdatasync`
/// (a single-record append is a one-member cohort, so they fire on plain
/// `append` too).
fn journal_matrix() -> Vec<(FaultPoint, FaultMode)> {
    vec![
        (FaultPoint::JournalWriteCrash, FaultMode::Crash),
        (
            FaultPoint::JournalWriteTorn,
            FaultMode::Torn { keep: 6 },
        ),
        (FaultPoint::JournalSyncCrash, FaultMode::Crash),
        (FaultPoint::JournalCohortWriteCrash, FaultMode::Crash),
        (FaultPoint::JournalCohortSyncCrash, FaultMode::Crash),
    ]
}

/// The ring-flush half: `(point, mode, target complete after crash?)`.
/// Same contract as the store — the rename is the commit point, so only
/// [`FaultPoint::FlushDirSyncCrash`] leaves the target visible, and then
/// it must hold the complete sketch (staging was fsynced first).
fn flush_matrix() -> Vec<(FaultPoint, FaultMode, bool)> {
    vec![
        (FaultPoint::FlushStageCrash, FaultMode::Crash, false),
        (
            FaultPoint::FlushStageTorn,
            FaultMode::Torn { keep: 10 },
            false,
        ),
        (FaultPoint::FlushTmpSyncCrash, FaultMode::Crash, false),
        (FaultPoint::FlushRenameCrash, FaultMode::Crash, false),
        (FaultPoint::FlushDirSyncCrash, FaultMode::Crash, true),
    ]
}

#[test]
fn the_matrix_covers_every_injectable_crash_point() {
    let mut covered: Vec<FaultPoint> = store_matrix().iter().map(|&(p, _, _)| p).collect();
    covered.extend(journal_matrix().iter().map(|&(p, _)| p));
    covered.extend(flush_matrix().iter().map(|&(p, _, _)| p));
    for point in FaultPoint::ALL {
        assert!(
            covered.contains(&point),
            "crash point {} has no matrix entry",
            point.name()
        );
    }
    assert_eq!(covered.len(), FaultPoint::ALL.len());
}

#[test]
fn store_put_recovers_from_a_crash_at_every_point() {
    for (point, mode, published) in store_matrix() {
        let root = scratch(point.name().replace('.', "-").as_str());
        let data = b"sketch bytes for the crash matrix".to_vec();
        let expected_digest = sha256(&data);

        // Crash mid-put at `point`.
        let faults = Faults::new();
        let (store, count) =
            Store::open_with_faults(&root, faults.clone()).expect("fresh store opens");
        assert_eq!(count, 0);
        faults.arm(point, mode, 1);
        let err = store.put(&data).expect_err("armed put crashes");
        assert!(
            err.to_string().contains(INJECTED),
            "{}: unexpected error {err}",
            point.name()
        );
        assert!(faults.fired(), "{}: fault never hit", point.name());
        drop(store);

        // Restart: reopen without faults and check the invariants.
        let (store, count) = Store::open(&root).expect("store reopens after crash");
        assert_eq!(
            count,
            usize::from(published),
            "{}: index/object mismatch after crash",
            point.name()
        );
        assert_eq!(
            dir_entry_count(&root.join("tmp")),
            0,
            "{}: staging leftovers survived the reopen sweep",
            point.name()
        );
        assert_eq!(
            dir_entry_count(&store.quarantine_dir()),
            0,
            "{}: a clean crash must never quarantine",
            point.name()
        );
        let read_back = store.get(&expected_digest).expect("get never errors here");
        if published {
            // Crash after the rename: the object is visible and — because
            // staging was fsynced before rename — verifies.
            assert_eq!(read_back.as_deref(), Some(data.as_slice()));
        } else {
            assert_eq!(read_back, None, "{}: phantom object", point.name());
        }

        // A resubmission repairs/repeats the put and the store converges.
        let (digest, fresh) = store.put(&data).expect("re-put succeeds");
        assert_eq!(digest, expected_digest);
        assert_eq!(fresh, !published);
        assert_eq!(
            store.get(&expected_digest).unwrap().as_deref(),
            Some(data.as_slice())
        );
        let report = store.fsck().unwrap();
        assert_eq!((report.verified, report.quarantined), (1, 0));
    }
}

#[test]
fn journal_append_recovers_from_a_crash_at_every_point() {
    let first = Record::Submit {
        job: 1,
        bug: "pbzip-order".into(),
        sketch: sha256(b"first"),
    };
    let second = Record::Result {
        job: 1,
        status: JobStatus::Exhausted { attempts: 7 },
    };
    let third = Record::Retry { job: 1, retries: 2 };

    for (point, mode) in journal_matrix() {
        let dir = scratch(point.name().replace('.', "-").as_str());
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.log");

        let faults = Faults::new();
        let (journal, records) =
            Journal::open_with_faults(&path, faults.clone()).expect("fresh journal opens");
        assert!(records.is_empty());
        journal.append(&first).expect("unarmed append succeeds");
        faults.arm(point, mode, 1);
        let err = journal.append(&second).expect_err("armed append crashes");
        assert!(
            err.to_string().contains(INJECTED),
            "{}: unexpected error {err}",
            point.name()
        );
        assert!(faults.fired(), "{}: fault never hit", point.name());
        drop(journal);

        // Restart. The acknowledged record must be there; the interrupted
        // one may be (sync-crash points: bytes written, fdatasync lost)
        // or not (write-crash points, torn write) — but never as garbage.
        let (journal, records) = Journal::open(&path).expect("journal reopens after crash");
        assert!(!records.is_empty() && records[0] == first,
            "{}: acknowledged record lost", point.name());
        match point {
            FaultPoint::JournalSyncCrash | FaultPoint::JournalCohortSyncCrash => {
                assert_eq!(records, vec![first.clone(), second.clone()]);
            }
            _ => assert_eq!(records, vec![first.clone()], "{}: phantom record", point.name()),
        }

        // Appends after the crash land after the clean prefix and replay.
        journal.append(&third).expect("post-crash append succeeds");
        drop(journal);
        let (_, records) = Journal::open(&path).unwrap();
        assert_eq!(records.last(), Some(&third), "{}: post-crash append lost", point.name());
    }
}

/// The batch-boundary invariants for *multi-record* cohorts: a cohort
/// that crashes between claim and write vanishes wholesale; one that
/// crashes between write and sync may replay wholesale (its bytes are on
/// disk, unsynced) — but either way no member was acknowledged, every
/// appender got the error, and nothing replays as garbage or out of
/// order.
#[test]
fn a_crashed_cohort_is_all_unacked_and_never_garbage() {
    use pres_suite::svc::journal::GroupCommit;
    use pres_suite::svc::Metrics;
    use std::sync::Arc;
    use std::time::Duration;

    let acked = Record::Submit {
        job: 1,
        bug: "pbzip-order".into(),
        sketch: sha256(b"acked"),
    };
    let cohort = [
        Record::Retry { job: 1, retries: 1 },
        Record::Result {
            job: 1,
            status: JobStatus::Exhausted { attempts: 3 },
        },
        Record::Retry { job: 2, retries: 2 },
    ];
    for (point, surfaces) in [
        (FaultPoint::JournalCohortWriteCrash, false),
        (FaultPoint::JournalCohortSyncCrash, true),
    ] {
        let dir = scratch(&format!("cohort-{}", point.name().replace('.', "-")));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.log");
        let faults = Faults::new();
        let (journal, _) = Journal::open_with(
            &path,
            faults.clone(),
            GroupCommit {
                max_records: 64,
                max_hold: Duration::ZERO,
            },
            Arc::new(Metrics::new()),
        )
        .expect("journal opens");
        journal.append(&acked).expect("unarmed append succeeds");
        faults.arm(point, FaultMode::Crash, 1);
        let err = journal
            .append_batch(&cohort)
            .expect_err("armed cohort commit crashes");
        assert!(err.to_string().contains(INJECTED), "{}: {err}", point.name());
        assert!(faults.fired(), "{}: fault never hit", point.name());
        drop(journal);

        let (_, records) = Journal::open(&path).expect("journal reopens after cohort crash");
        assert_eq!(records.first(), Some(&acked), "{}: acked record lost", point.name());
        if surfaces {
            // Written-but-unsynced: the whole cohort may replay, intact
            // and in order — unacknowledged work, never phantoms.
            assert_eq!(records[1..], cohort, "{}: cohort mangled", point.name());
        } else {
            assert_eq!(records.len(), 1, "{}: phantom cohort records", point.name());
        }
    }
}

/// The flush-on-failure contract: a crash at any point of the ring-flush
/// write leaves the target path either absent or holding the complete
/// encoded sketch — a half-flushed file must never decode as a valid
/// sketch (same tmp+rename chain as `store::put`).
#[test]
fn a_half_flushed_ring_sketch_never_decodes_as_valid() {
    use pres_suite::core::codec::{decode_sketch, encode_sketch};
    use pres_suite::core::sketch::Mechanism;
    use pres_suite::core::{Pres, RingConfig};
    use pres_suite::svc::flush::{sweep_stale, write_flush_with_faults};

    // A real ring-flushed sketch (rotated ring: nonzero boundary, so the
    // checkpoint segment is load-bearing, not a genesis stub).
    let bug = pres_suite::apps::registry::all_bugs()
        .into_iter()
        .find(|b| b.id == "httpd-log-atomicity")
        .expect("corpus bug exists");
    let prog = bug.program();
    let ring = RingConfig {
        epoch_entries: 48,
        epoch_cost: 0,
        ring_epochs: 2,
    };
    let recorded = Pres::new(Mechanism::Sync)
        .with_ring(ring)
        .record_until_failure(prog.as_ref(), 0..2000)
        .expect("failing production run");
    let bytes = encode_sketch(&recorded.sketch);
    assert!(
        recorded.sketch.checkpoint.is_some(),
        "ring recording attaches a checkpoint"
    );

    for (point, mode, complete) in flush_matrix() {
        let dir = scratch(&format!("flush-{}", point.name().replace('.', "-")));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("ring-flush.sketch");

        let faults = Faults::new();
        faults.arm(point, mode, 1);
        let err =
            write_flush_with_faults(&target, &bytes, &faults).expect_err("armed flush crashes");
        assert!(err.to_string().contains(INJECTED), "{}: {err}", point.name());
        assert!(faults.fired(), "{}: fault never hit", point.name());

        // Restart invariant: the target is absent or complete — never a
        // prefix that parses.
        if complete {
            let on_disk = std::fs::read(&target).expect("post-rename crash leaves the flush");
            assert_eq!(on_disk, bytes, "{}: flush bytes mangled", point.name());
        } else {
            assert!(
                !target.exists(),
                "{}: half-flushed sketch is visible at the target path",
                point.name()
            );
        }
        // A torn staging write strands a prefix that must not parse.
        // (A clean crash *after* `write_all` may strand a complete tmp
        // file — harmless, because recovery only ever trusts the target
        // name, and the sweep below removes it.)
        if point.is_torn() {
            for entry in std::fs::read_dir(&dir).unwrap().flatten() {
                if entry.path() != target {
                    let leftover = std::fs::read(entry.path()).unwrap();
                    assert!(
                        decode_sketch(&leftover).is_err(),
                        "{}: torn staging file decodes as a valid sketch",
                        point.name()
                    );
                }
            }
        }
        sweep_stale(&target);
        assert_eq!(
            dir_entry_count(&dir),
            usize::from(complete),
            "{}: staging leftovers survived the sweep",
            point.name()
        );

        // A retry after restart completes, and the flushed sketch round-
        // trips with its checkpoint intact.
        write_flush_with_faults(&target, &bytes, &faults).expect("retry flush succeeds");
        let decoded =
            decode_sketch(&std::fs::read(&target).unwrap()).expect("flushed sketch decodes");
        assert_eq!(decoded.checkpoint, recorded.sketch.checkpoint);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_journal_crash_during_submit_is_an_unacknowledged_submit() {
    let dir = scratch("queue-submit");
    std::fs::create_dir_all(&dir).unwrap();
    let faults = Faults::new();
    let (store, _) = Store::open(dir.join("store")).unwrap();
    let open = |faults: Faults, store: Store| {
        JobQueue::open_with_faults(
            dir.join("journal.log"),
            Arc::new(store),
            Arc::new(Metrics::new()),
            QueueConfig::default(),
            faults,
        )
        .expect("queue opens")
    };
    let queue = open(faults.clone(), store);

    let sketch_a = queue.store().put(b"sketch a").unwrap().0;
    let sketch_b = queue.store().put(b"sketch b").unwrap().0;
    let (job_a, fresh) = queue.submit("pbzip-order", sketch_a).unwrap();
    assert!(fresh);

    // The journal dies mid-append: the submit must fail loudly *before*
    // the job becomes visible, because acknowledging it would promise a
    // durability the journal no longer has.
    faults.arm(FaultPoint::JournalWriteCrash, FaultMode::Crash, 1);
    queue
        .submit("pbzip-order", sketch_b)
        .expect_err("submit with a dead journal append must fail");
    assert_eq!(queue.status(job_a), Some(JobStatus::Queued { retries: 0 }));
    assert_eq!(queue.status(job_a + 1), None, "failed submit leaked a job");
    drop(queue);

    // Restart: the acknowledged submit is back (requeued), the failed one
    // never existed, and resubmitting it creates a *fresh* job.
    let (store, _) = Store::open(dir.join("store")).unwrap();
    let queue = open(Faults::none(), store);
    assert_eq!(queue.status(job_a), Some(JobStatus::Queued { retries: 0 }));
    assert_eq!(queue.status(job_a + 1), None);
    let (job_b, fresh) = queue.submit("pbzip-order", sketch_b).unwrap();
    assert!(fresh, "the unacknowledged submit must not have been replayed");
    assert_ne!(job_b, job_a);
}
