//! Byte-identity pin for the digest-keyed sketch decode cache.
//!
//! The cache memoizes a *pure function* of immutable, content-addressed
//! bytes (digest → decoded sketch + replay index), so it must be
//! observationally invisible: the daemon run with `--sketch-cache-bytes 0`
//! (every execution re-reads, re-verifies, re-decodes, re-indexes) and the
//! daemon run with the default budget must mint identical certificates
//! with identical attempt counts for the same corpus. These tests hold it
//! to that, and to staying correct when a starvation-sized budget forces
//! eviction on every insert.

use pres_suite::apps::registry::all_bugs;
use pres_suite::core::api::Pres;
use pres_suite::core::codec::encode_sketch;
use pres_suite::core::sketch::Mechanism;
use pres_suite::svc::queue::QueueConfig;
use pres_suite::svc::server::{ServeOptions, Server};
use pres_suite::svc::{Client, JobStatus};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Three bugs across three mechanisms — enough digests that a tiny budget
/// must evict between jobs.
const CORPUS: [&str; 3] = ["pbzip-order", "aget-progress-atomicity", "fft-barrier-order"];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pres-svc-cache-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(data_dir: &std::path::Path, queue: QueueConfig) -> Server {
    Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.to_path_buf(),
        queue,
        log_interval: None,
        ..ServeOptions::default()
    })
    .expect("daemon starts")
}

fn recorded_sketch_bytes(bug: &str) -> Vec<u8> {
    let case = all_bugs().into_iter().find(|b| b.id == bug).unwrap();
    let program = case.program();
    let pres = Pres::new(Mechanism::Sync);
    let run = pres
        .record_until_failure(program.as_ref(), 0..5000)
        .expect("bug manifests in production");
    encode_sketch(&run.sketch)
}

/// Runs the corpus through a daemon with the given queue config and
/// returns, per bug, the attempt count and certificate bytes.
fn run_corpus(tag: &str, queue: QueueConfig) -> Vec<(u32, Vec<u8>)> {
    let dir = scratch(tag);
    let server = start(&dir, queue);
    let mut client = Client::connect(server.addr()).unwrap();
    let mut receipts = Vec::new();
    for bug in CORPUS {
        let sketch_bytes = recorded_sketch_bytes(bug);
        receipts.push(client.submit(bug, &sketch_bytes).unwrap());
    }
    let mut out = Vec::new();
    for receipt in receipts {
        let status = client.wait(receipt.job, Duration::from_secs(240)).unwrap();
        let JobStatus::Succeeded { attempts, .. } = status else {
            panic!("expected success, got {status:?}");
        };
        let cert = client.fetch_certificate(receipt.job).unwrap();
        assert!(!cert.is_empty());
        out.push((attempts, cert));
    }
    server.shutdown();
    server.join();
    out
}

/// The pin itself: cache off vs cache on (default budget) — identical
/// certificates, identical attempt counts, for every bug in the corpus.
#[test]
fn cached_and_uncached_runs_mint_identical_certificates() {
    let uncached = run_corpus(
        "uncached",
        QueueConfig {
            sketch_cache_bytes: 0,
            ..QueueConfig::default()
        },
    );
    let cached = run_corpus("cached", QueueConfig::default());
    assert_eq!(uncached.len(), cached.len());
    for (bug, ((ua, ucert), (ca, ccert))) in
        CORPUS.iter().zip(uncached.iter().zip(cached.iter()))
    {
        assert_eq!(ua, ca, "{bug}: attempt counts diverge with the cache on");
        assert_eq!(ucert, ccert, "{bug}: certificate bytes diverge with the cache on");
    }
}

/// A starvation budget — smaller than any encoded sketch — disables
/// residency without disabling correctness: every lookup is a miss,
/// nothing is retained, and the corpus still reproduces.
#[test]
fn eviction_under_a_tiny_budget_stays_correct() {
    let results = run_corpus(
        "tiny",
        QueueConfig {
            sketch_cache_bytes: 1,
            ..QueueConfig::default()
        },
    );
    assert_eq!(results.len(), CORPUS.len());
    for (bug, (attempts, _)) in CORPUS.iter().zip(results.iter()) {
        assert!(*attempts >= 1, "{bug}: no attempts recorded");
    }
}

/// Hit/miss accounting and the hit *path*: a second job sharing a digest
/// (same sketch bytes submitted under a different bug id — dedup keys on
/// the pair, so this is a fresh job) must be served from the cache, and
/// must fail identically to the uncached daemon's store-read path.
#[test]
fn a_shared_digest_hits_the_cache_and_behaves_identically() {
    let sketch_bytes = recorded_sketch_bytes("pbzip-order");
    let mut failures = Vec::new();
    let mut hit_counts = Vec::new();
    for (tag, budget) in [("hit-off", 0u64), ("hit-on", 64 << 20)] {
        let dir = scratch(tag);
        let server = start(
            &dir,
            QueueConfig {
                sketch_cache_bytes: budget,
                ..QueueConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).unwrap();
        let good = client.submit("pbzip-order", &sketch_bytes).unwrap();
        let status = client.wait(good.job, Duration::from_secs(240)).unwrap();
        assert!(matches!(status, JobStatus::Succeeded { .. }), "{status:?}");
        // Same bytes, wrong bug id: a distinct job over the same digest.
        let mismatch = client.submit("aget-progress-atomicity", &sketch_bytes).unwrap();
        assert_ne!(mismatch.job, good.job);
        assert!(!mismatch.fresh_object, "store must dedup identical bytes");
        let status = client.wait(mismatch.job, Duration::from_secs(60)).unwrap();
        let JobStatus::Failed { message } = status else {
            panic!("expected program-name mismatch, got {status:?}");
        };
        failures.push(message);
        let metrics = server.metrics();
        let hits = metrics.sketch_cache_hits.load(Ordering::Relaxed);
        let misses = metrics.sketch_cache_misses.load(Ordering::Relaxed);
        if budget == 0 {
            assert_eq!(hits, 0, "a disabled cache must never hit");
            assert_eq!(misses, 2, "both executions re-read the store");
            assert!(server.queue().cache().is_empty());
        } else {
            assert_eq!(hits, 1, "the shared-digest job must be a hit");
            assert_eq!(misses, 1, "only the first execution decodes");
            assert_eq!(server.queue().cache().len(), 1);
        }
        hit_counts.push(hits);
        server.shutdown();
        server.join();
    }
    // The rejection is byte-identical either way — the cached sketch is
    // the decoded sketch.
    assert_eq!(failures[0], failures[1]);
    assert_eq!(hit_counts, vec![0, 1]);
}
