//! Multi-node cluster end-to-end tests over real loopback TCP: three
//! `pres serve` processes-worth of daemons acting as one service.
//!
//! What these pin down:
//!
//! * **Any node, same bytes.** A sketch submitted to any cluster member
//!   mints the same certificate, byte for byte — sharding, replication,
//!   and stealing add zero nondeterminism.
//! * **One node is expendable.** With N=2 replication on three nodes,
//!   killing any single node loses no object: every sketch and every
//!   certificate is still fetchable from the survivors.
//! * **Repair restores the invariant.** A node restarted over a wiped
//!   data directory pulls everything it owns back from its peers.
//! * **The shared secret gates every frame.** No HELLO (or a wrong
//!   token) means one error and a closed connection, on client and
//!   peer links alike.
//! * **Idle nodes steal.** Queued work on a busy node drains through
//!   an idle peer, and the origin still serves the certificate.

use pres_suite::apps::registry::all_bugs;
use pres_suite::core::api::Pres;
use pres_suite::core::codec::encode_sketch;
use pres_suite::core::sketch::Mechanism;
use pres_suite::svc::queue::QueueConfig;
use pres_suite::svc::server::{ServeOptions, Server};
use pres_suite::svc::{sha256, Client, Cluster, ClusterConfig, Digest, JobStatus, Metrics};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN: &str = "e2e-cluster-secret";
const WAIT: Duration = Duration::from_secs(180);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pres-svc-cluster-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reserves `n` distinct loopback addresses: bind ephemeral listeners,
/// record their addresses, drop them. The cluster needs every node's
/// address *before* any node starts (the static peer lists), which
/// port 0 alone cannot give us.
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

fn start_node(data_dir: &Path, addr: &str, peers: &[String], token: Option<&str>) -> Server {
    // The address was just released by `free_addrs` (or by a node this
    // test killed); tolerate a briefly lingering bind.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let opts = ServeOptions {
            addr: addr.into(),
            data_dir: data_dir.to_path_buf(),
            queue: QueueConfig::default(),
            log_interval: None,
            peers: peers.to_vec(),
            auth_token: token.map(String::from),
            ..ServeOptions::default()
        };
        match Server::start(opts) {
            Ok(server) => return server,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("node on {addr} failed to start: {e}"),
        }
    }
}

/// Starts an `n`-node cluster with a shared token; node `i` listens on
/// `addrs[i]` and peers with everyone else.
fn start_cluster(tag: &str, n: usize) -> (Vec<Server>, Vec<String>) {
    let addrs = free_addrs(n);
    let servers = (0..n)
        .map(|i| {
            let peers: Vec<String> = (0..n).filter(|&j| j != i).map(|j| addrs[j].clone()).collect();
            start_node(&scratch(&format!("{tag}-{i}")), &addrs[i], &peers, Some(TOKEN))
        })
        .collect();
    (servers, addrs)
}

fn client(addr: &str) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    c.hello(TOKEN.as_bytes()).expect("authenticate");
    c
}

fn recorded_sketch_bytes(bug: &str) -> Vec<u8> {
    let case = all_bugs().into_iter().find(|b| b.id == bug).unwrap();
    let program = case.program();
    let pres = Pres::new(Mechanism::Sync);
    let run = pres
        .record_until_failure(program.as_ref(), 0..5000)
        .expect("bug manifests in production");
    encode_sketch(&run.sketch)
}

fn succeed(client: &mut Client, bug: &str, sketch: &[u8]) -> (u64, Digest, Vec<u8>) {
    let receipt = client.submit(bug, sketch).unwrap();
    let status = client.wait(receipt.job, WAIT).unwrap();
    let JobStatus::Succeeded { certificate, .. } = status else {
        panic!("job for {bug} did not succeed: {status:?}");
    };
    let bytes = client.fetch_certificate(receipt.job).unwrap();
    assert_eq!(sha256(&bytes), certificate, "served cert matches its digest");
    (receipt.job, certificate, bytes)
}

#[test]
fn any_node_mints_the_same_certificate_and_replicates_objects() {
    let (servers, addrs) = start_cluster("identity", 3);
    let sketch = recorded_sketch_bytes("pbzip-order");
    let sketch_digest = sha256(&sketch);

    // The same sketch through two different nodes: same certificate,
    // byte for byte.
    let (_, cert_digest_a, cert_a) = succeed(&mut client(&addrs[0]), "pbzip-order", &sketch);
    let (_, cert_digest_b, cert_b) = succeed(&mut client(&addrs[1]), "pbzip-order", &sketch);
    assert_eq!(cert_digest_a, cert_digest_b);
    assert_eq!(cert_a, cert_b, "executing node must not leak into the certificate");

    // N=2 replication: sketch and certificate each live on at least two
    // of the three nodes (push is synchronous with the routed put).
    for (what, digest) in [("sketch", sketch_digest), ("certificate", cert_digest_a)] {
        let copies = addrs
            .iter()
            .filter(|addr| client(addr).peer_stat(&digest).unwrap())
            .count();
        assert!(copies >= 2, "{what} {digest} on {copies} node(s), want >= 2");
    }

    for server in &servers {
        server.shutdown();
    }
    for server in servers {
        server.join();
    }
}

#[test]
fn killing_one_node_of_three_loses_no_objects() {
    let (mut servers, addrs) = start_cluster("kill", 3);
    let bugs = ["pbzip-order", "fft-barrier-order", "radix-rank-order"];

    // Round-robin the corpus across the nodes and remember every object
    // the cluster now owes us.
    let mut objects: Vec<(Digest, Vec<u8>)> = Vec::new();
    for (i, bug) in bugs.iter().enumerate() {
        let sketch = recorded_sketch_bytes(bug);
        let (_, cert_digest, cert) = succeed(&mut client(&addrs[i % addrs.len()]), bug, &sketch);
        objects.push((sha256(&sketch), sketch));
        objects.push((cert_digest, cert));
    }

    // Kill node 0 outright (drain, join, gone).
    let dead = servers.remove(0);
    dead.shutdown();
    dead.join();

    // Every object must still be fetchable — and verify — from some
    // survivor. N=2 of 3 guarantees at least one owner outlived node 0.
    for (digest, expect) in &objects {
        let found = addrs[1..].iter().find_map(|addr| {
            client(addr).peer_get(digest).unwrap()
        });
        let Some(bytes) = found else {
            panic!("object {digest} lost with node 0");
        };
        assert_eq!(sha256(&bytes), *digest);
        assert_eq!(&bytes, expect);
    }

    for server in &servers {
        server.shutdown();
    }
    for server in servers {
        server.join();
    }
}

#[test]
fn wiped_node_repairs_itself_on_restart() {
    let tag_a = scratch("repair-a");
    let tag_b = scratch("repair-b");
    let addrs = free_addrs(2);
    let peers_a = vec![addrs[1].clone()];
    let peers_b = vec![addrs[0].clone()];
    let node_a = start_node(&tag_a, &addrs[0], &peers_a, Some(TOKEN));
    let mut node_b = start_node(&tag_b, &addrs[1], &peers_b, Some(TOKEN));

    let sketch = recorded_sketch_bytes("pbzip-order");
    let (_, cert_digest, _) = succeed(&mut client(&addrs[0]), "pbzip-order", &sketch);
    let sketch_digest = sha256(&sketch);
    // Two nodes, N=2: both own everything.
    assert!(client(&addrs[1]).peer_stat(&sketch_digest).unwrap());
    assert!(client(&addrs[1]).peer_stat(&cert_digest).unwrap());

    // Node B dies and loses its disk.
    node_b.shutdown();
    node_b.join();
    std::fs::remove_dir_all(&tag_b).unwrap();

    // The restarted B's startup repair pass pulls back everything it
    // owns (here: everything).
    node_b = start_node(&tag_b, &addrs[1], &peers_b, Some(TOKEN));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut c = client(&addrs[1]);
        if c.peer_stat(&sketch_digest).unwrap() && c.peer_stat(&cert_digest).unwrap() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "startup repair did not restore node B's objects"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The `pres fsck --peer` repair path agrees the invariant holds:
    // an offline view of A's store against live B reports healthy.
    node_a.shutdown();
    node_a.join();
    let (store, _) = pres_suite::svc::Store::open(tag_a.join("store")).unwrap();
    let mut config = ClusterConfig::new(addrs[0].clone(), peers_a.clone());
    config.auth_token = Some(TOKEN.into());
    let cluster = Cluster::new(config, Arc::new(Metrics::new()));
    let report = cluster.repair(&store).unwrap();
    assert!(
        report.healthy(),
        "offline repair found damage after the live repair: {report:?}"
    );

    node_b.shutdown();
    node_b.join();
}

#[test]
fn auth_token_gates_every_frame() {
    let dir = scratch("auth");
    let addrs = free_addrs(2);
    let peers = vec![addrs[1].clone()];
    let server = start_node(&dir, &addrs[0], &peers, Some(TOKEN));
    let sketch = recorded_sketch_bytes("pbzip-order");

    // No HELLO: the first real frame is answered with an error and the
    // connection is closed.
    let mut bare = Client::connect(&addrs[0]).unwrap();
    assert!(bare.submit("pbzip-order", &sketch).is_err());

    // Wrong token: refused at the HELLO itself.
    let mut wrong = Client::connect(&addrs[0]).unwrap();
    assert!(wrong.hello(b"not-the-secret").is_err());

    // Unauthenticated peer frames are refused too — replication does
    // not punch a hole in the perimeter.
    let mut peer = Client::connect(&addrs[0]).unwrap();
    assert!(peer.peer_list().is_err());

    // The right token opens everything.
    let (_, _, cert) = succeed(&mut client(&addrs[0]), "pbzip-order", &sketch);
    assert!(!cert.is_empty());

    server.shutdown();
    server.join();
}

#[test]
fn idle_peer_steals_queued_jobs_and_the_origin_serves_the_certificates() {
    let (servers, addrs) = start_cluster("steal", 2);
    let sketches: Vec<(&str, Vec<u8>)> = ["pbzip-order", "fft-barrier-order", "radix-rank-order"]
        .into_iter()
        .map(|bug| (bug, recorded_sketch_bytes(bug)))
        .collect();

    // Pile every job onto node 0. Its single worker runs one at a time;
    // node 1 is idle and raids the rest through PEER_STEAL.
    let mut c = client(&addrs[0]);
    let receipts: Vec<(u64, &str)> = sketches
        .iter()
        .map(|(bug, bytes)| (c.submit(bug, bytes).unwrap().job, *bug))
        .collect();
    for (job, bug) in &receipts {
        let status = c.wait(*job, WAIT).unwrap();
        assert!(
            matches!(status, JobStatus::Succeeded { .. }),
            "{bug} (job {job}) did not succeed: {status:?}"
        );
        // The origin serves the certificate even when a thief executed
        // the job: the routed store read follows the ring.
        let cert = c.fetch_certificate(*job).unwrap();
        assert!(!cert.is_empty());
    }

    // The division of labor is timing-dependent; the books must balance
    // regardless: every steal node 1 performed is a job node 0 leased
    // out and saw resolved.
    let stolen = servers[1].metrics().steals.load(std::sync::atomic::Ordering::Relaxed);
    let served = servers[0].metrics().stolen_served.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        stolen <= served,
        "thief ran {stolen} job(s) but the origin only leased {served}"
    );

    for server in &servers {
        server.shutdown();
    }
    for server in servers {
        server.join();
    }
}
