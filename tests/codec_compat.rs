//! On-disk format compatibility: committed containers must keep decoding
//! byte-for-byte forever, whatever the current default version — the v1
//! legacy format and the v3 checkpoint-bearing ring-flush format alike.

use pres_core::codec::{
    checkpoint_segment_bytes, container_version, decode_sketch, encode_sketch, encode_sketch_v1,
};
use pres_core::sketch::{Mechanism, Sketch, SketchEntry, SketchMeta, SketchOp, SyncKind, SysKind};
use pres_suite::tvm::prelude::*;
use pres_tvm::op::{MemLoc, OpResult};

const FIXTURE: &[u8] = include_bytes!("data/fixture_v1.sketch");
const FIXTURE_V3: &[u8] = include_bytes!("data/fixture_v3.sketch");

/// The exact sketch `data/fixture_v1.sketch` was written from. Committed
/// alongside the bytes so the fixture never depends on the recorder.
fn fixture_sketch() -> Sketch {
    let entry = |tid: u32, op: SketchOp| SketchEntry {
        tid: ThreadId(tid),
        op,
        result: OpResult::Unit,
    };
    Sketch {
        mechanism: Mechanism::Sync,
        entries: vec![
            entry(0, SketchOp::Start),
            entry(0, SketchOp::Spawn),
            entry(1, SketchOp::Start),
            entry(
                1,
                SketchOp::Sync {
                    kind: SyncKind::Lock,
                    obj: 3,
                },
            ),
            entry(
                0,
                SketchOp::Mem {
                    loc: MemLoc::Var(VarId(12)),
                    write: true,
                },
            ),
            entry(
                1,
                SketchOp::Sync {
                    kind: SyncKind::Unlock,
                    obj: 3,
                },
            ),
            SketchEntry {
                tid: ThreadId(1),
                op: SketchOp::Sys {
                    kind: SysKind::Read,
                    obj: 5,
                },
                result: OpResult::Bytes(b"payload".to_vec()),
            },
            entry(1, SketchOp::Exit),
            entry(0, SketchOp::Join { target: 1 }),
            entry(0, SketchOp::Exit),
        ],
        meta: SketchMeta {
            program: "fixture-app".into(),
            seed: 99,
            processors: 4,
            total_ops: 321,
            failure_signature: "assert: broken invariant".into(),
        },
        checkpoint: None,
    }
}

#[test]
fn committed_v1_fixture_still_decodes() {
    assert_eq!(container_version(FIXTURE).unwrap(), 1);
    let decoded = decode_sketch(FIXTURE).expect("v1 fixture decodes");
    assert_eq!(decoded, fixture_sketch());
    // And the v1 encoder still produces those exact bytes.
    assert_eq!(encode_sketch_v1(&fixture_sketch()), FIXTURE);
}

/// The committed v3 fixture: a real rotated-ring flush of
/// `httpd-log-atomicity` (seed 1, `epoch_entries 48`, `ring_epochs 2`),
/// so the checkpoint segment is load-bearing — nonzero boundary, evicted
/// epochs, and a 640-byte embedded VM snapshot the decoder validates.
#[test]
fn committed_v3_ring_fixture_still_decodes() {
    assert_eq!(container_version(FIXTURE_V3).unwrap(), 3);
    let decoded = decode_sketch(FIXTURE_V3).expect("v3 fixture decodes");
    let cp = decoded
        .checkpoint
        .as_deref()
        .expect("the fixture carries a checkpoint");
    assert_eq!(decoded.meta.program, "httpd-log-atomicity");
    assert_eq!(decoded.meta.seed, 1);
    assert_eq!(decoded.entries.len(), 48);
    assert_eq!(cp.boundary, 249);
    assert_eq!(cp.production_seed, 1);
    assert_eq!((cp.dropped_epochs, cp.dropped_entries), (2, 96));
    assert_eq!(cp.epochs.len(), 2);
    assert_eq!(cp.retained_entries(), 48);
    assert!(!cp.snapshot.is_empty());
    assert_eq!(
        checkpoint_segment_bytes(FIXTURE_V3).unwrap(),
        Some(661),
        "checkpoint segment size is part of the committed layout"
    );
    // And the current encoder still produces those exact bytes.
    assert_eq!(encode_sketch(&decoded), FIXTURE_V3);
}

/// Regenerates the fixture after an *intentional* v1 format change (none
/// should ever be needed): `cargo test --test codec_compat -- --ignored`.
#[test]
#[ignore]
fn regenerate_v1_fixture() {
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fixture_v1.sketch"),
        encode_sketch_v1(&fixture_sketch()),
    )
    .unwrap();
}

/// Regenerates the v3 fixture after an *intentional* format change:
/// `cargo test --test codec_compat -- --ignored`. Update the literal
/// assertions in [`committed_v3_ring_fixture_still_decodes`] to match.
#[test]
#[ignore]
fn regenerate_v3_fixture() {
    use pres_core::{Pres, RingConfig};
    let bug = pres_suite::apps::registry::all_bugs()
        .into_iter()
        .find(|b| b.id == "httpd-log-atomicity")
        .expect("corpus bug exists");
    let prog = bug.program();
    let run = Pres::new(Mechanism::Sync)
        .with_ring(RingConfig {
            epoch_entries: 48,
            epoch_cost: 0,
            ring_epochs: 2,
        })
        .record_until_failure(prog.as_ref(), 0..2000)
        .expect("failing production run");
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fixture_v3.sketch"),
        encode_sketch(&run.sketch),
    )
    .unwrap();
}
