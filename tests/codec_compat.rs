//! On-disk format compatibility: a committed v1 container must keep
//! decoding byte-for-byte forever, whatever the current default version.

use pres_core::codec::{container_version, decode_sketch, encode_sketch_v1};
use pres_core::sketch::{Mechanism, Sketch, SketchEntry, SketchMeta, SketchOp, SyncKind, SysKind};
use pres_suite::tvm::prelude::*;
use pres_tvm::op::{MemLoc, OpResult};

const FIXTURE: &[u8] = include_bytes!("data/fixture_v1.sketch");

/// The exact sketch `data/fixture_v1.sketch` was written from. Committed
/// alongside the bytes so the fixture never depends on the recorder.
fn fixture_sketch() -> Sketch {
    let entry = |tid: u32, op: SketchOp| SketchEntry {
        tid: ThreadId(tid),
        op,
        result: OpResult::Unit,
    };
    Sketch {
        mechanism: Mechanism::Sync,
        entries: vec![
            entry(0, SketchOp::Start),
            entry(0, SketchOp::Spawn),
            entry(1, SketchOp::Start),
            entry(
                1,
                SketchOp::Sync {
                    kind: SyncKind::Lock,
                    obj: 3,
                },
            ),
            entry(
                0,
                SketchOp::Mem {
                    loc: MemLoc::Var(VarId(12)),
                    write: true,
                },
            ),
            entry(
                1,
                SketchOp::Sync {
                    kind: SyncKind::Unlock,
                    obj: 3,
                },
            ),
            SketchEntry {
                tid: ThreadId(1),
                op: SketchOp::Sys {
                    kind: SysKind::Read,
                    obj: 5,
                },
                result: OpResult::Bytes(b"payload".to_vec()),
            },
            entry(1, SketchOp::Exit),
            entry(0, SketchOp::Join { target: 1 }),
            entry(0, SketchOp::Exit),
        ],
        meta: SketchMeta {
            program: "fixture-app".into(),
            seed: 99,
            processors: 4,
            total_ops: 321,
            failure_signature: "assert: broken invariant".into(),
        },
    }
}

#[test]
fn committed_v1_fixture_still_decodes() {
    assert_eq!(container_version(FIXTURE).unwrap(), 1);
    let decoded = decode_sketch(FIXTURE).expect("v1 fixture decodes");
    assert_eq!(decoded, fixture_sketch());
    // And the v1 encoder still produces those exact bytes.
    assert_eq!(encode_sketch_v1(&fixture_sketch()), FIXTURE);
}

/// Regenerates the fixture after an *intentional* v1 format change (none
/// should ever be needed): `cargo test --test codec_compat -- --ignored`.
#[test]
#[ignore]
fn regenerate_v1_fixture() {
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/fixture_v1.sketch"),
        encode_sketch_v1(&fixture_sketch()),
    )
    .unwrap();
}
