//! Property-based tests (proptest) over the core data structures and the
//! determinism invariants the whole system rests on.

use proptest::prelude::*;
use pres_core::codec::{decode_sketch, encode_sketch, ByteReader, ByteWriter};
use pres_core::sketch::{Mechanism, Sketch, SketchEntry, SketchMeta, SketchOp, SyncKind, SysKind};
use pres_race::vclock::VectorClock;
use pres_suite::tvm::prelude::*;
use pres_tvm::op::{MemLoc, OpResult};

// ---------------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------------

fn arb_mechanism() -> impl Strategy<Value = Mechanism> {
    prop_oneof![
        Just(Mechanism::Rw),
        Just(Mechanism::Sync),
        Just(Mechanism::Sys),
        Just(Mechanism::Func),
        Just(Mechanism::Bb),
        (1u32..64).prop_map(Mechanism::BbN),
    ]
}

fn arb_sync_kind() -> impl Strategy<Value = SyncKind> {
    prop_oneof![
        Just(SyncKind::Lock),
        Just(SyncKind::Unlock),
        Just(SyncKind::Wait),
        Just(SyncKind::Rewait),
        Just(SyncKind::Signal),
        Just(SyncKind::Broadcast),
        Just(SyncKind::Barrier),
        Just(SyncKind::SemP),
        Just(SyncKind::SemV),
        Just(SyncKind::Send),
        Just(SyncKind::Recv),
    ]
}

fn arb_sketch_op() -> impl Strategy<Value = SketchOp> {
    prop_oneof![
        Just(SketchOp::Start),
        Just(SketchOp::Exit),
        Just(SketchOp::Spawn),
        (0u32..100).prop_map(|t| SketchOp::Join { target: t }),
        (any::<bool>(), 0u32..1000).prop_map(|(w, v)| SketchOp::Mem {
            loc: MemLoc::Var(VarId(v)),
            write: w,
        }),
        (any::<bool>(), 0u32..50).prop_map(|(w, b)| SketchOp::Mem {
            loc: MemLoc::Buf(BufId(b)),
            write: w,
        }),
        (arb_sync_kind(), 0u32..100)
            .prop_map(|(kind, obj)| SketchOp::Sync { kind, obj }),
        (0u32..10_000).prop_map(SketchOp::Func),
        (0u32..100_000).prop_map(SketchOp::Bb),
    ]
}

fn arb_result() -> impl Strategy<Value = OpResult> {
    prop_oneof![
        Just(OpResult::Unit),
        any::<u64>().prop_map(OpResult::Value),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(OpResult::Bytes),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(OpResult::MaybeBytes),
        proptest::option::of(any::<u64>()).prop_map(OpResult::MaybeValue),
    ]
}

fn arb_entry() -> impl Strategy<Value = SketchEntry> {
    (0u32..32, arb_sketch_op(), arb_result()).prop_map(|(tid, op, result)| {
        let result = if matches!(op, SketchOp::Sys { .. }) {
            result
        } else {
            OpResult::Unit
        };
        SketchEntry {
            tid: ThreadId(tid),
            op,
            result,
        }
    })
}

fn arb_sys_entry() -> impl Strategy<Value = SketchEntry> {
    (0u32..32, 0u32..50, arb_result()).prop_map(|(tid, obj, result)| SketchEntry {
        tid: ThreadId(tid),
        op: SketchOp::Sys {
            kind: SysKind::Read,
            obj,
        },
        result,
    })
}

fn arb_sketch() -> impl Strategy<Value = Sketch> {
    (
        arb_mechanism(),
        proptest::collection::vec(prop_oneof![arb_entry(), arb_sys_entry()], 0..200),
        "[a-z]{0,12}",
        any::<u64>(),
        1u32..64,
    )
        .prop_map(|(mechanism, entries, program, seed, processors)| Sketch {
            mechanism,
            entries,
            meta: SketchMeta {
                program,
                seed,
                processors,
                total_ops: 0,
                failure_signature: String::new(),
            },
        })
}

// ---------------------------------------------------------------------------
// Codec properties.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn codec_round_trips_any_sketch(sketch in arb_sketch()) {
        let encoded = encode_sketch(&sketch);
        let decoded = decode_sketch(&encoded).expect("well-formed input decodes");
        prop_assert_eq!(sketch, decoded);
    }

    #[test]
    fn codec_never_panics_on_corrupt_input(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Decoding arbitrary bytes must fail cleanly, not crash.
        let _ = decode_sketch(&data);
    }

    #[test]
    fn truncation_is_always_detected(sketch in arb_sketch(), cut_fraction in 0.0f64..1.0) {
        let encoded = encode_sketch(&sketch);
        let cut = (encoded.len() as f64 * cut_fraction) as usize;
        if cut < encoded.len() {
            prop_assert!(decode_sketch(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn varints_round_trip(values in proptest::collection::vec(any::<u64>(), 0..100)) {
        let mut w = ByteWriter::new();
        for v in &values {
            w.varint(*v);
        }
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        for v in &values {
            prop_assert_eq!(r.varint().unwrap(), *v);
        }
        prop_assert!(r.at_end());
    }
}

// ---------------------------------------------------------------------------
// Vector-clock laws.
// ---------------------------------------------------------------------------

fn arb_vclock() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..50, 0..8).prop_map(|entries| {
        let mut vc = VectorClock::new();
        for (i, v) in entries.into_iter().enumerate() {
            vc.set(ThreadId(i as u32), v);
        }
        vc
    })
}

proptest! {
    #[test]
    fn join_is_an_upper_bound(a in arb_vclock(), b in arb_vclock()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn join_is_commutative_and_idempotent(a in arb_vclock(), b in arb_vclock()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(ab.clone(), ba);
        let mut again = ab.clone();
        again.join(&b);
        prop_assert_eq!(ab, again);
    }

    #[test]
    fn hb_is_antisymmetric(a in arb_vclock(), b in arb_vclock()) {
        if a.le(&b) && b.le(&a) {
            for i in 0..8u32 {
                prop_assert_eq!(a.get(ThreadId(i)), b.get(ThreadId(i)));
            }
        }
    }

    #[test]
    fn concurrency_is_symmetric(a in arb_vclock(), b in arb_vclock()) {
        prop_assert_eq!(a.concurrent(&b), b.concurrent(&a));
    }
}

// ---------------------------------------------------------------------------
// Determinism and sketch-filter invariants over generated programs.
// ---------------------------------------------------------------------------

/// A tiny generated concurrent program: N workers each run a generated
/// sequence of operations over a few shared variables and a lock.
#[derive(Debug, Clone)]
enum MiniOp {
    Read(u8),
    Write(u8, u8),
    FetchAdd(u8),
    Locked(u8),
    Compute(u8),
    Bb(u8),
}

fn arb_mini_ops() -> impl Strategy<Value = Vec<MiniOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..3).prop_map(MiniOp::Read),
            (0u8..3, any::<u8>()).prop_map(|(v, x)| MiniOp::Write(v, x)),
            (0u8..3).prop_map(MiniOp::FetchAdd),
            (0u8..3).prop_map(MiniOp::Locked),
            (1u8..20).prop_map(MiniOp::Compute),
            (0u8..16).prop_map(MiniOp::Bb),
        ],
        1..12,
    )
}

fn run_mini(workers: Vec<Vec<MiniOp>>, seed: u64) -> pres_suite::tvm::vm::RunOutcome {
    let mut spec = ResourceSpec::new();
    let v0 = spec.var_array("v", 3, 0);
    let lock = spec.lock("m");
    pres_suite::tvm::vm::run(
        VmConfig {
            trace_mode: TraceMode::Full,
            max_steps: 100_000,
            ..VmConfig::default()
        },
        spec,
        &mut RandomScheduler::new(seed),
        &mut NullObserver,
        move |ctx| {
            let handles: Vec<ThreadId> = workers
                .into_iter()
                .enumerate()
                .map(|(i, ops)| {
                    ctx.spawn(&format!("w{i}"), move |ctx| {
                        for op in ops {
                            match op {
                                MiniOp::Read(v) => {
                                    ctx.read(VarId(v0.0 + u32::from(v)));
                                }
                                MiniOp::Write(v, x) => {
                                    ctx.write(VarId(v0.0 + u32::from(v)), u64::from(x));
                                }
                                MiniOp::FetchAdd(v) => {
                                    ctx.fetch_add(VarId(v0.0 + u32::from(v)), 1);
                                }
                                MiniOp::Locked(v) => {
                                    ctx.with_lock(lock, |ctx| {
                                        let x = ctx.read(VarId(v0.0 + u32::from(v)));
                                        ctx.write(VarId(v0.0 + u32::from(v)), x + 1);
                                    });
                                }
                                MiniOp::Compute(n) => ctx.compute(u64::from(n) * 10),
                                MiniOp::Bb(b) => ctx.bb(u32::from(b)),
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                ctx.join(h);
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_programs_are_seed_deterministic(
        w1 in arb_mini_ops(),
        w2 in arb_mini_ops(),
        w3 in arb_mini_ops(),
        seed in any::<u64>(),
    ) {
        let a = run_mini(vec![w1.clone(), w2.clone(), w3.clone()], seed);
        let b = run_mini(vec![w1, w2, w3], seed);
        prop_assert_eq!(a.status, b.status);
        prop_assert_eq!(a.schedule, b.schedule);
        prop_assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn every_sketch_is_a_filtered_subsequence_of_rw(
        w1 in arb_mini_ops(),
        w2 in arb_mini_ops(),
        seed in any::<u64>(),
        mech in arb_mechanism(),
    ) {
        let out = run_mini(vec![w1, w2], seed);
        let rw = Sketch::from_events(Mechanism::Rw, out.trace.events());
        let other = Sketch::from_events(mech, out.trace.events());
        // Every non-marker entry of any sketch appears in RW order.
        let mut it = rw.entries.iter();
        for e in other.entries.iter().filter(|e| {
            !matches!(e.op, SketchOp::Func(_) | SketchOp::Bb(_))
        }) {
            prop_assert!(
                it.any(|r| r == e),
                "entry {:?} of {} missing from RW", e, mech
            );
        }
    }

    #[test]
    fn scripted_replay_reproduces_generated_runs(
        w1 in arb_mini_ops(),
        w2 in arb_mini_ops(),
        seed in any::<u64>(),
    ) {
        let first = run_mini(vec![w1.clone(), w2.clone()], seed);
        let mut scripted = ScriptedScheduler::new(first.schedule.clone());
        let mut spec = ResourceSpec::new();
        let v0 = spec.var_array("v", 3, 0);
        let lock = spec.lock("m");
        let workers = vec![w1, w2];
        let second = pres_suite::tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                max_steps: 100_000,
                ..VmConfig::default()
            },
            spec,
            &mut scripted,
            &mut NullObserver,
            move |ctx| {
                let handles: Vec<ThreadId> = workers
                    .into_iter()
                    .enumerate()
                    .map(|(i, ops)| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for op in ops {
                                match op {
                                    MiniOp::Read(v) => {
                                        ctx.read(VarId(v0.0 + u32::from(v)));
                                    }
                                    MiniOp::Write(v, x) => {
                                        ctx.write(VarId(v0.0 + u32::from(v)), u64::from(x));
                                    }
                                    MiniOp::FetchAdd(v) => {
                                        ctx.fetch_add(VarId(v0.0 + u32::from(v)), 1);
                                    }
                                    MiniOp::Locked(v) => {
                                        ctx.with_lock(lock, |ctx| {
                                            let x = ctx.read(VarId(v0.0 + u32::from(v)));
                                            ctx.write(VarId(v0.0 + u32::from(v)), x + 1);
                                        });
                                    }
                                    MiniOp::Compute(n) => ctx.compute(u64::from(n) * 10),
                                    MiniOp::Bb(b) => ctx.bb(u32::from(b)),
                                }
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    ctx.join(h);
                }
            },
        );
        prop_assert_eq!(first.schedule, second.schedule);
        for (x, y) in first.trace.events().iter().zip(second.trace.events()) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn hb_detection_is_deterministic_and_bounded(
        w1 in arb_mini_ops(),
        w2 in arb_mini_ops(),
        seed in any::<u64>(),
    ) {
        let out = run_mini(vec![w1, w2], seed);
        let a = pres_race::detect_races(&out.trace);
        let b = pres_race::detect_races(&out.trace);
        prop_assert_eq!(&a, &b);
        // Race end points always reference in-trace accesses.
        for r in &a {
            prop_assert!(r.first.gseq < r.second.gseq);
            prop_assert!(out.trace.get(r.second.gseq).is_some());
        }
    }
}
