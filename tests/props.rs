//! Randomized property tests over the core data structures and the
//! determinism invariants the whole system rests on.
//!
//! These were originally proptest properties; they are now driven by the
//! workspace's own deterministic generator ([`pres_tvm::rng`]) so the test
//! suite builds offline with zero external dependencies. Each property runs
//! over a fixed-seed stream of generated cases, which keeps failures
//! reproducible by construction.

use pres_core::codec::{
    container_version, decode_sketch, encode_sketch, encode_sketch_v1, ByteReader, ByteWriter,
};
use pres_core::sketch::{Mechanism, Sketch, SketchEntry, SketchMeta, SketchOp, SyncKind, SysKind};
use pres_race::vclock::VectorClock;
use pres_suite::tvm::prelude::*;
use pres_tvm::op::{MemLoc, OpResult};
use pres_tvm::rng::ChaCha8Rng;

// ---------------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------------

fn gen_mechanism(rng: &mut ChaCha8Rng) -> Mechanism {
    match rng.gen_range(0..6usize) {
        0 => Mechanism::Rw,
        1 => Mechanism::Sync,
        2 => Mechanism::Sys,
        3 => Mechanism::Func,
        4 => Mechanism::Bb,
        _ => Mechanism::BbN(rng.gen_range(1..=63u32)),
    }
}

fn gen_sync_kind(rng: &mut ChaCha8Rng) -> SyncKind {
    match rng.gen_range(0..11usize) {
        0 => SyncKind::Lock,
        1 => SyncKind::Unlock,
        2 => SyncKind::Wait,
        3 => SyncKind::Rewait,
        4 => SyncKind::Signal,
        5 => SyncKind::Broadcast,
        6 => SyncKind::Barrier,
        7 => SyncKind::SemP,
        8 => SyncKind::SemV,
        9 => SyncKind::Send,
        _ => SyncKind::Recv,
    }
}

fn gen_sketch_op(rng: &mut ChaCha8Rng) -> SketchOp {
    match rng.gen_range(0..9usize) {
        0 => SketchOp::Start,
        1 => SketchOp::Exit,
        2 => SketchOp::Spawn,
        3 => SketchOp::Join {
            target: rng.gen_range(0..=99u32),
        },
        4 => SketchOp::Mem {
            loc: MemLoc::Var(VarId(rng.gen_range(0..=999u32))),
            write: rng.next_u32() & 1 == 0,
        },
        5 => SketchOp::Mem {
            loc: MemLoc::Buf(BufId(rng.gen_range(0..=49u32))),
            write: rng.next_u32() & 1 == 0,
        },
        6 => SketchOp::Sync {
            kind: gen_sync_kind(rng),
            obj: rng.gen_range(0..=99u32),
        },
        7 => SketchOp::Func(rng.gen_range(0..=9_999u32)),
        _ => SketchOp::Bb(rng.gen_range(0..=99_999u32)),
    }
}

fn gen_bytes(rng: &mut ChaCha8Rng, max: usize) -> Vec<u8> {
    let n = rng.gen_range(0..max);
    (0..n).map(|_| rng.next_u32() as u8).collect()
}

fn gen_result(rng: &mut ChaCha8Rng) -> OpResult {
    match rng.gen_range(0..6usize) {
        0 => OpResult::Unit,
        1 => OpResult::Value(rng.next_u64()),
        2 => OpResult::Bytes(gen_bytes(rng, 64)),
        3 => OpResult::MaybeBytes(Some(gen_bytes(rng, 64))),
        4 => OpResult::MaybeBytes(None),
        _ => {
            if rng.next_u32() & 1 == 0 {
                OpResult::MaybeValue(Some(rng.next_u64()))
            } else {
                OpResult::MaybeValue(None)
            }
        }
    }
}

fn gen_entry(rng: &mut ChaCha8Rng) -> SketchEntry {
    if rng.gen_range(0..4usize) == 0 {
        // Sys entries carry their results.
        SketchEntry {
            tid: ThreadId(rng.gen_range(0..=31u32)),
            op: SketchOp::Sys {
                kind: SysKind::Read,
                obj: rng.gen_range(0..=49u32),
            },
            result: gen_result(rng),
        }
    } else {
        SketchEntry {
            tid: ThreadId(rng.gen_range(0..=31u32)),
            op: gen_sketch_op(rng),
            result: OpResult::Unit,
        }
    }
}

fn gen_sketch(rng: &mut ChaCha8Rng) -> Sketch {
    let n = rng.gen_range(0..200usize);
    let name_len = rng.gen_range(0..13usize);
    let program: String = (0..name_len)
        .map(|_| char::from(b'a' + (rng.gen_range(0..26usize) as u8)))
        .collect();
    Sketch {
        mechanism: gen_mechanism(rng),
        entries: (0..n).map(|_| gen_entry(rng)).collect(),
        meta: SketchMeta {
            program,
            seed: rng.next_u64(),
            processors: rng.gen_range(1..=63u32),
            total_ops: 0,
            failure_signature: String::new(),
        },
        checkpoint: None,
    }
}

// ---------------------------------------------------------------------------
// Codec properties.
// ---------------------------------------------------------------------------

#[test]
fn codec_round_trips_any_sketch() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xc0dec);
    for _ in 0..64 {
        let sketch = gen_sketch(&mut rng);
        let encoded = encode_sketch(&sketch);
        let decoded = decode_sketch(&encoded).expect("well-formed input decodes");
        assert_eq!(sketch, decoded);
    }
}

#[test]
fn both_container_versions_round_trip_any_sketch() {
    // The v2 columnar container must reproduce *arbitrary* interleavings
    // and id sequences exactly, and the legacy v1 path must keep decoding.
    let mut rng = ChaCha8Rng::seed_from_u64(0xc0dec2);
    for _ in 0..64 {
        let sketch = gen_sketch(&mut rng);
        let v1 = encode_sketch_v1(&sketch);
        let v2 = encode_sketch(&sketch);
        assert_eq!(container_version(&v1).unwrap(), 1);
        assert_eq!(container_version(&v2).unwrap(), 2);
        assert_eq!(decode_sketch(&v1).unwrap(), sketch);
        assert_eq!(decode_sketch(&v2).unwrap(), sketch);
    }
}

#[test]
fn codec_never_panics_on_corrupt_input() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xbad);
    for _ in 0..256 {
        // Decoding arbitrary bytes must fail cleanly, not crash.
        let data = gen_bytes(&mut rng, 512);
        let _ = decode_sketch(&data);
    }
}

#[test]
fn truncation_is_always_detected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x77);
    for _ in 0..64 {
        let sketch = gen_sketch(&mut rng);
        let encoded = encode_sketch(&sketch);
        let cut = rng.gen_range(0..encoded.len().max(1));
        if cut < encoded.len() {
            assert!(decode_sketch(&encoded[..cut]).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint-bearing (v3) container properties.
// ---------------------------------------------------------------------------

/// Records a generated mini program in always-on ring mode and returns
/// the flushed sketch. Tiny epoch budgets force real rotation on most
/// generated programs, so the checkpoint segment is exercised with
/// nonzero boundaries and evicted epochs — not just the genesis stub.
fn gen_ring_sketch(rng: &mut ChaCha8Rng) -> Sketch {
    use pres_core::{ClosureProgram, Pres, RingConfig};
    let workers = vec![
        gen_mini_ops(rng),
        gen_mini_ops(rng),
        gen_mini_ops(rng),
    ];
    let seed = rng.next_u64();
    let mut spec = ResourceSpec::new();
    let v0 = spec.var_array("v", 3, 0);
    let lock = spec.lock("m");
    let prog = ClosureProgram::new("props-ring", spec, WorldConfig::default(), move || {
        Box::new(mini_body(workers.clone(), v0, lock))
    });
    // RW records every memory access, maximizing entries per op so the
    // 6-entry epochs rotate even on short generated programs.
    Pres::new(Mechanism::Rw)
        .with_ring(RingConfig {
            epoch_entries: 6,
            epoch_cost: 0,
            ring_epochs: 2,
        })
        .record(&prog, seed)
        .sketch
}

#[test]
fn v3_round_trips_ring_flushed_sketches() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xc0dec3);
    let mut rotated = 0;
    for _ in 0..12 {
        let sketch = gen_ring_sketch(&mut rng);
        let cp = sketch.checkpoint.as_deref().expect("ring mode attaches a checkpoint");
        rotated += usize::from(!cp.is_genesis());
        let encoded = encode_sketch(&sketch);
        assert_eq!(container_version(&encoded).unwrap(), 3);
        assert_eq!(decode_sketch(&encoded).unwrap(), sketch);
    }
    assert!(rotated > 0, "no generated ring ever rotated; budgets too loose");
}

#[test]
fn v3_truncation_at_every_offset_is_detected() {
    // One rotated ring flush, cut at *every* byte offset: no prefix may
    // decode — in particular none may yield a sketch with a phantom (or
    // silently shortened) checkpoint.
    let mut rng = ChaCha8Rng::seed_from_u64(0x77f);
    let sketch = loop {
        let s = gen_ring_sketch(&mut rng);
        if s.checkpoint.as_deref().is_some_and(|cp| !cp.is_genesis()) {
            break s;
        }
    };
    let encoded = encode_sketch(&sketch);
    for cut in 0..encoded.len() {
        assert!(
            decode_sketch(&encoded[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded",
            encoded.len()
        );
    }
}

#[test]
fn bit_flips_never_panic_and_never_forge_a_phantom_checkpoint() {
    use pres_tvm::snapshot::VmSnapshot;
    let mut rng = ChaCha8Rng::seed_from_u64(0xf11b);
    let ring = gen_ring_sketch(&mut rng);
    let v3 = encode_sketch(&ring);
    let mut plain = gen_sketch(&mut rng);
    plain.entries.truncate(64);
    let v2 = encode_sketch(&plain);
    for base in [&v3, &v2] {
        for _ in 0..512 {
            // Flip 3 random bits: decode must fail cleanly or produce a
            // sketch whose checkpoint (if any) still satisfies the
            // invariants the decoder promises to enforce.
            let mut mutated = base.clone();
            for _ in 0..3 {
                let bit = rng.gen_range(0..mutated.len() * 8);
                mutated[bit / 8] ^= 1 << (bit % 8);
            }
            let Ok(decoded) = decode_sketch(&mutated) else {
                continue;
            };
            match container_version(&mutated) {
                // Only a v3 container can carry a checkpoint at all.
                Ok(3) => {
                    if let Some(cp) = decoded.checkpoint.as_deref() {
                        if cp.is_genesis() {
                            assert!(cp.snapshot.is_empty());
                        } else {
                            let snap = VmSnapshot::decode(&cp.snapshot)
                                .expect("decoder validated the embedded snapshot");
                            assert_eq!(snap.picks(), cp.boundary);
                        }
                    }
                }
                _ => assert!(
                    decoded.checkpoint.is_none(),
                    "non-v3 container decoded with a phantom checkpoint"
                ),
            }
        }
    }
}

#[test]
fn varints_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xa1);
    for _ in 0..64 {
        let n = rng.gen_range(0..100usize);
        // Mix small and full-width values to cover all varint lengths.
        let values: Vec<u64> = (0..n)
            .map(|_| {
                let raw = rng.next_u64();
                raw >> (rng.gen_range(0..64usize) as u32)
            })
            .collect();
        let mut w = ByteWriter::new();
        for v in &values {
            w.varint(*v);
        }
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        for v in &values {
            assert_eq!(r.varint().unwrap(), *v);
        }
        assert!(r.at_end());
    }
}

// ---------------------------------------------------------------------------
// Vector-clock laws.
// ---------------------------------------------------------------------------

fn gen_vclock(rng: &mut ChaCha8Rng) -> VectorClock {
    let n = rng.gen_range(0..8usize);
    let mut vc = VectorClock::new();
    for i in 0..n {
        vc.set(ThreadId(i as u32), rng.gen_range(0..=49u32));
    }
    vc
}

#[test]
fn join_is_an_upper_bound() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for _ in 0..128 {
        let a = gen_vclock(&mut rng);
        let b = gen_vclock(&mut rng);
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
    }
}

#[test]
fn join_is_commutative_and_idempotent() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for _ in 0..128 {
        let a = gen_vclock(&mut rng);
        let b = gen_vclock(&mut rng);
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(ab, ba);
        let mut again = ab.clone();
        again.join(&b);
        assert_eq!(ab, again);
    }
}

#[test]
fn hb_is_antisymmetric() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for _ in 0..256 {
        let a = gen_vclock(&mut rng);
        let b = gen_vclock(&mut rng);
        if a.le(&b) && b.le(&a) {
            for i in 0..8u32 {
                assert_eq!(a.get(ThreadId(i)), b.get(ThreadId(i)));
            }
        }
    }
}

#[test]
fn concurrency_is_symmetric() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for _ in 0..128 {
        let a = gen_vclock(&mut rng);
        let b = gen_vclock(&mut rng);
        assert_eq!(a.concurrent(&b), b.concurrent(&a));
    }
}

// ---------------------------------------------------------------------------
// Determinism and sketch-filter invariants over generated programs.
// ---------------------------------------------------------------------------

/// A tiny generated concurrent program: N workers each run a generated
/// sequence of operations over a few shared variables and a lock.
#[derive(Debug, Clone)]
enum MiniOp {
    Read(u8),
    Write(u8, u8),
    FetchAdd(u8),
    Locked(u8),
    Compute(u8),
    Bb(u8),
}

fn gen_mini_ops(rng: &mut ChaCha8Rng) -> Vec<MiniOp> {
    let n = rng.gen_range(1..12usize);
    (0..n)
        .map(|_| match rng.gen_range(0..6usize) {
            0 => MiniOp::Read(rng.gen_range(0..3usize) as u8),
            1 => MiniOp::Write(rng.gen_range(0..3usize) as u8, rng.next_u32() as u8),
            2 => MiniOp::FetchAdd(rng.gen_range(0..3usize) as u8),
            3 => MiniOp::Locked(rng.gen_range(0..3usize) as u8),
            4 => MiniOp::Compute(rng.gen_range(1..=19u32) as u8),
            _ => MiniOp::Bb(rng.gen_range(0..16usize) as u8),
        })
        .collect()
}

fn mini_body(
    workers: Vec<Vec<MiniOp>>,
    v0: VarId,
    lock: LockId,
) -> impl FnOnce(&mut Ctx) + Send + 'static {
    move |ctx: &mut Ctx| {
        let handles: Vec<ThreadId> = workers
            .into_iter()
            .enumerate()
            .map(|(i, ops)| {
                ctx.spawn(&format!("w{i}"), move |ctx| {
                    for op in ops {
                        match op {
                            MiniOp::Read(v) => {
                                ctx.read(VarId(v0.0 + u32::from(v)));
                            }
                            MiniOp::Write(v, x) => {
                                ctx.write(VarId(v0.0 + u32::from(v)), u64::from(x));
                            }
                            MiniOp::FetchAdd(v) => {
                                ctx.fetch_add(VarId(v0.0 + u32::from(v)), 1);
                            }
                            MiniOp::Locked(v) => {
                                ctx.with_lock(lock, |ctx| {
                                    let x = ctx.read(VarId(v0.0 + u32::from(v)));
                                    ctx.write(VarId(v0.0 + u32::from(v)), x + 1);
                                });
                            }
                            MiniOp::Compute(n) => ctx.compute(u64::from(n) * 10),
                            MiniOp::Bb(b) => ctx.bb(u32::from(b)),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            ctx.join(h);
        }
    }
}

fn run_mini(workers: Vec<Vec<MiniOp>>, seed: u64) -> pres_suite::tvm::vm::RunOutcome {
    let mut spec = ResourceSpec::new();
    let v0 = spec.var_array("v", 3, 0);
    let lock = spec.lock("m");
    pres_suite::tvm::vm::run(
        VmConfig {
            trace_mode: TraceMode::Full,
            max_steps: 100_000,
            ..VmConfig::default()
        },
        spec,
        &mut RandomScheduler::new(seed),
        &mut NullObserver,
        mini_body(workers, v0, lock),
    )
}

#[test]
fn generated_programs_are_seed_deterministic() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for _ in 0..32 {
        let w1 = gen_mini_ops(&mut rng);
        let w2 = gen_mini_ops(&mut rng);
        let w3 = gen_mini_ops(&mut rng);
        let seed = rng.next_u64();
        let a = run_mini(vec![w1.clone(), w2.clone(), w3.clone()], seed);
        let b = run_mini(vec![w1, w2, w3], seed);
        assert_eq!(a.status, b.status);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
            assert_eq!(x, y);
        }
    }
}

#[test]
fn every_sketch_is_a_filtered_subsequence_of_rw() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for _ in 0..32 {
        let w1 = gen_mini_ops(&mut rng);
        let w2 = gen_mini_ops(&mut rng);
        let seed = rng.next_u64();
        let mech = gen_mechanism(&mut rng);
        let out = run_mini(vec![w1, w2], seed);
        let rw = Sketch::from_events(Mechanism::Rw, out.trace.events());
        let other = Sketch::from_events(mech, out.trace.events());
        // Every non-marker entry of any sketch appears in RW order.
        let mut it = rw.entries.iter();
        for e in other
            .entries
            .iter()
            .filter(|e| !matches!(e.op, SketchOp::Func(_) | SketchOp::Bb(_)))
        {
            assert!(it.any(|r| r == e), "entry {e:?} of {mech} missing from RW");
        }
    }
}

#[test]
fn scripted_replay_reproduces_generated_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..32 {
        let w1 = gen_mini_ops(&mut rng);
        let w2 = gen_mini_ops(&mut rng);
        let seed = rng.next_u64();
        let first = run_mini(vec![w1.clone(), w2.clone()], seed);
        let mut scripted = ScriptedScheduler::new(first.schedule.clone());
        let mut spec = ResourceSpec::new();
        let v0 = spec.var_array("v", 3, 0);
        let lock = spec.lock("m");
        let second = pres_suite::tvm::vm::run(
            VmConfig {
                trace_mode: TraceMode::Full,
                max_steps: 100_000,
                ..VmConfig::default()
            },
            spec,
            &mut scripted,
            &mut NullObserver,
            mini_body(vec![w1, w2], v0, lock),
        );
        assert_eq!(first.schedule, second.schedule);
        for (x, y) in first.trace.events().iter().zip(second.trace.events()) {
            assert_eq!(x, y);
        }
    }
}

#[test]
fn hb_detection_is_deterministic_and_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    for _ in 0..32 {
        let w1 = gen_mini_ops(&mut rng);
        let w2 = gen_mini_ops(&mut rng);
        let seed = rng.next_u64();
        let out = run_mini(vec![w1, w2], seed);
        let a = pres_race::detect_races(&out.trace);
        let b = pres_race::detect_races(&out.trace);
        assert_eq!(&a, &b);
        // Race end points always reference in-trace accesses.
        for r in &a {
            assert!(r.first.gseq < r.second.gseq);
            assert!(out.trace.get(r.second.gseq).is_some());
        }
    }
}
