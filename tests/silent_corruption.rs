//! End-to-end reproduction of a *silent* bug: the program never crashes,
//! never deadlocks, and passes no failing assertion — the only symptom is
//! wrong output. The output oracle closes the loop: production monitoring
//! flags the bad run, PRES records its sketch, the explorer searches until
//! the oracle confirms the corrupted output, and the certificate replays
//! it deterministically.

use pres_core::explore::{reproduce_with_oracle, ExploreConfig};
use pres_core::oracle::{FailureOracle, OutputOracle};
use pres_core::program::{ClosureProgram, Program};
use pres_core::recorder::{record, run_traced};
use pres_core::sketch::Mechanism;
use pres_tvm::prelude::*;

/// A tiny report generator whose two sections must appear in a fixed
/// order, but whose workers race on who appends first. No assertion
/// checks the order — only the output shows it.
fn report_program() -> impl Program {
    let mut spec = ResourceSpec::new();
    let buf = spec.buf("report");
    ClosureProgram::new("reportgen", spec, WorldConfig::default(), move || {
        Box::new(move |ctx: &mut Ctx| {
            let header = ctx.spawn("header", move |ctx| {
                ctx.compute(25);
                ctx.buf_append(buf, b"HEADER;");
            });
            let body = ctx.spawn("body", move |ctx| {
                ctx.compute(25);
                ctx.buf_append(buf, b"BODY;");
            });
            ctx.join(header);
            ctx.join(body);
            let report = ctx.buf_read(buf);
            let line = String::from_utf8_lossy(&report).to_string();
            ctx.println(&line);
        })
    })
}

#[test]
fn silent_output_corruption_reproduces_through_the_oracle() {
    let prog = report_program();
    let config = VmConfig::default();
    let oracle = OutputOracle::new().expect_stdout(b"HEADER;BODY;\n".to_vec());

    // Production monitoring: find a run whose output is corrupted.
    let mut bad_seed = None;
    for seed in 0..200 {
        let out = run_traced(&prog, &config, seed);
        assert_eq!(out.status, RunStatus::Completed, "this bug never crashes");
        if oracle.judge(&out).is_some() {
            bad_seed = Some(seed);
            break;
        }
    }
    let bad_seed = bad_seed.expect("some schedule reverses the sections");

    // The recording that was running when the bad output shipped.
    let recorded = record(&prog, Mechanism::Sync, &config, bad_seed);
    assert!(
        !recorded.failed(),
        "status-wise the production run looked clean"
    );

    // Diagnosis with the output oracle.
    let rep = reproduce_with_oracle(
        &prog,
        &recorded.sketch,
        &oracle,
        &config,
        &ExploreConfig {
            max_attempts: 200,
            ..ExploreConfig::default()
        },
    );
    assert!(rep.reproduced, "{:#?}", rep.history);
    assert!(rep.attempts <= 50, "took {} attempts", rep.attempts);

    // The certificate replays the corrupted output deterministically.
    let cert = rep.certificate.expect("certificate minted");
    assert_eq!(cert.expected_signature, "output-mismatch:stdout");
    for _ in 0..10 {
        let out = cert
            .replay_with(&prog, &oracle)
            .expect("deterministic silent corruption");
        assert_ne!(out.stdout, b"HEADER;BODY;\n".to_vec());
    }
    // The status-based replay API correctly refuses: there is no crash.
    assert!(cert.replay(&prog).is_err());
}
