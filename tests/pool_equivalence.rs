//! Pooled-vs-spawning executor equivalence over the whole bug corpus.
//!
//! The executor pool is a perf restructuring of *where vthread bodies run*
//! (recycled parked workers vs. freshly spawned OS threads); it must never
//! change *what runs*. These tests pin that contract: recording under a
//! pool yields byte-identical sketches for all 13 corpus bugs under every
//! mechanism, and diagnosis-time exploration reaches the same verdict in
//! the same number of attempts with a byte-identical certificate.

use pres_core::api::Pres;
use pres_core::codec::encode_sketch;
use pres_core::explore::ExecutorKind;
use pres_core::recorder::{record, record_pooled};
use pres_core::sketch::Mechanism;
use pres_suite::apps::all_bugs;
use pres_suite::tvm::pool::VthreadPool;
use pres_suite::tvm::vm::VmConfig;

#[test]
fn pooled_recording_is_byte_identical_on_the_corpus_for_every_mechanism() {
    let config = VmConfig::default();
    // One pool across the whole matrix: equivalence must survive arbitrary
    // reuse, not just a fresh pool per run.
    let pool = VthreadPool::new(4);
    for bug in all_bugs() {
        let prog = bug.program();
        for m in Mechanism::all() {
            let spawned = record(prog.as_ref(), m, &config, 7);
            let pooled = record_pooled(prog.as_ref(), m, &config, 7, &pool);
            assert_eq!(
                spawned.sketch, pooled.sketch,
                "{}: sketches diverge under {m}",
                bug.id
            );
            assert_eq!(
                encode_sketch(&spawned.sketch),
                encode_sketch(&pooled.sketch),
                "{}: encoded logs diverge under {m}",
                bug.id
            );
            assert_eq!(spawned.log_bytes, pooled.log_bytes, "{} {m}", bug.id);
            assert_eq!(
                spawned.outcome.status.to_string(),
                pooled.outcome.status.to_string(),
                "{} {m}",
                bug.id
            );
            assert_eq!(
                spawned.outcome.schedule, pooled.outcome.schedule,
                "{} {m}",
                bug.id
            );
            assert_eq!(
                spawned.outcome.stats.spawns, pooled.outcome.stats.spawns,
                "{} {m}",
                bug.id
            );
        }
    }
    assert!(pool.take_escaped_panics().is_empty());
}

#[test]
fn pooled_exploration_mints_identical_certificates_on_the_corpus() {
    for bug in all_bugs() {
        let prog = bug.program();
        let base = Pres::new(Mechanism::Sync).with_max_attempts(300);
        let recorded = base
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id));

        let pooled = base
            .clone()
            .with_executor(ExecutorKind::Pooled)
            .reproduce(prog.as_ref(), &recorded);
        let spawning = base
            .clone()
            .with_executor(ExecutorKind::Spawning)
            .reproduce(prog.as_ref(), &recorded);

        assert_eq!(pooled.reproduced, spawning.reproduced, "{}", bug.id);
        assert_eq!(pooled.attempts, spawning.attempts, "{}", bug.id);
        let plans = |rep: &pres_core::Reproduction| -> Vec<String> {
            rep.history.iter().map(|h| h.plan.clone()).collect()
        };
        assert_eq!(
            plans(&pooled),
            plans(&spawning),
            "{}: attempt-plan sequences diverge",
            bug.id
        );
        let cert_bytes =
            |rep: &pres_core::Reproduction| rep.certificate.as_ref().map(|c| c.encode());
        assert_eq!(
            cert_bytes(&pooled),
            cert_bytes(&spawning),
            "{}: certificates are not byte-identical",
            bug.id
        );
    }
}
