//! Sharded-vs-legacy recorder equivalence over the whole bug corpus.
//!
//! The sharded recorder (per-thread segment buffers, global slots only for
//! order-requiring classes, k-way canonical merge) is a performance
//! restructuring: it must change *what is charged*, never *what is
//! recorded*. These tests pin that contract on all 13 corpus bugs for
//! every mechanism, and check that downstream reproduction mints the
//! identical certificate from either recorder's output.

use pres_core::api::Pres;
use pres_core::codec::encode_sketch;
use pres_core::recorder::{record, record_legacy, record_until_failure};
use pres_core::sketch::Mechanism;
use pres_suite::apps::all_bugs;
use pres_suite::tvm::vm::VmConfig;

#[test]
fn sharded_and_legacy_sketches_are_byte_identical_on_the_corpus() {
    let config = VmConfig::default();
    for bug in all_bugs() {
        let prog = bug.program();
        for m in Mechanism::all() {
            let sharded = record(prog.as_ref(), m, &config, 7);
            let legacy = record_legacy(prog.as_ref(), m, &config, 7);
            assert_eq!(
                sharded.sketch, legacy.sketch,
                "{}: canonical sketches diverge under {m}",
                bug.id
            );
            assert_eq!(
                encode_sketch(&sharded.sketch),
                encode_sketch(&legacy.sketch),
                "{}: encoded logs diverge under {m}",
                bug.id
            );
            assert_eq!(sharded.log_bytes, legacy.log_bytes, "{} {m}", bug.id);
            assert_eq!(
                sharded.implicit_events, legacy.implicit_events,
                "{} {m}",
                bug.id
            );
        }
    }
}

#[test]
fn reproduction_mints_identical_certificates_from_either_recorder() {
    // Reproduction is a deterministic function of (program, sketch), so
    // identical sketches must yield byte-identical certificates. SYNC is
    // the paper's headline mechanism; RW is the deterministic baseline.
    let config = VmConfig::default();
    for m in [Mechanism::Sync, Mechanism::Rw] {
        for bug in all_bugs() {
            let prog = bug.program();
            let Some(sharded) =
                record_until_failure(prog.as_ref(), m, &config, 0..5000)
            else {
                panic!("{}: no failing production run under {m}", bug.id);
            };
            let seed = sharded.sketch.meta.seed;
            let legacy = record_legacy(prog.as_ref(), m, &config, seed);
            assert!(legacy.failed(), "{}: legacy run must fail too", bug.id);
            assert_eq!(sharded.sketch, legacy.sketch, "{} {m}", bug.id);

            let pres = Pres::new(m).with_max_attempts(300);
            let a = pres.reproduce(prog.as_ref(), &sharded);
            let b = pres.reproduce(prog.as_ref(), &legacy);
            assert!(a.reproduced, "{}: not reproduced under {m}", bug.id);
            assert_eq!(a.attempts, b.attempts, "{} {m}", bug.id);
            let ca = a.certificate.expect("certificate minted").encode();
            let cb = b.certificate.expect("certificate minted").encode();
            assert_eq!(ca, cb, "{}: certificates diverge under {m}", bug.id);
        }
    }
}
