//! Race analysis over the application corpus: bug-free builds are clean on
//! their protected state, buggy builds expose exactly the seeded races,
//! and the feedback engine proposes flips on the culprit objects.

use pres_core::feedback::candidates;
use pres_core::recorder::run_traced;
use pres_core::replay::ActionObj;
use pres_race::hb::{dedup_static, detect_races};
use pres_race::lockset::check_lockset;
use pres_suite::apps::all_bugs;
use pres_suite::apps::registry::{all_apps, WorkloadScale};
use pres_tvm::op::MemLoc;
use pres_tvm::vm::VmConfig;

#[test]
fn buggy_builds_expose_races_or_lock_inversions() {
    let config = VmConfig::default();
    for bug in all_bugs() {
        let prog = bug.program();
        // Even a non-failing run of the buggy build shows flip candidates:
        // that is exactly what feedback relies on.
        let mut found = false;
        for seed in 0..30 {
            let out = run_traced(prog.as_ref(), &config, seed);
            if !candidates(&out.trace).is_empty() {
                found = true;
                break;
            }
        }
        assert!(found, "{}: no flip candidates in 30 schedules", bug.id);
    }
}

#[test]
fn atomicity_bugs_are_lockset_visible() {
    let config = VmConfig::default();
    for bug in all_bugs() {
        if !bug.id.contains("atomicity")
            || bug.id.contains("binlog")
            || bug.id.contains("multivar")
        {
            // The binlog bug is fully locked (each variable individually)
            // and the browser bug's updates are individually atomic; both
            // are invisible to lockset by design.
            continue;
        }
        let prog = bug.program();
        let mut flagged = false;
        for seed in 0..30 {
            let out = run_traced(prog.as_ref(), &config, seed);
            if !check_lockset(&out.trace).is_empty() {
                flagged = true;
                break;
            }
        }
        assert!(flagged, "{}: lockset never flagged the racy location", bug.id);
    }
}

#[test]
fn httpd_log_bug_feedback_targets_the_log_buffer() {
    let bugs = all_bugs();
    let bug = bugs
        .iter()
        .find(|b| b.id == "httpd-log-atomicity")
        .expect("bug exists");
    let prog = bug.program();
    let config = VmConfig::default();
    let mut saw_buffer_candidate = false;
    for seed in 0..50 {
        let out = run_traced(prog.as_ref(), &config, seed);
        if candidates(&out.trace).iter().any(|c| {
            matches!(c.constraint.after.obj, ActionObj::Mem(MemLoc::Buf(_)))
        }) {
            saw_buffer_candidate = true;
            break;
        }
    }
    assert!(saw_buffer_candidate, "feedback must target the log buffer");
}

#[test]
fn dynamic_races_dedup_to_few_static_pairs() {
    let config = VmConfig::default();
    for bug in all_bugs() {
        if bug.class == pres_suite::apps::BugClass::Deadlock {
            continue;
        }
        let prog = bug.program();
        let out = run_traced(prog.as_ref(), &config, 1);
        let races = detect_races(&out.trace);
        let unique = dedup_static(&races);
        // Missing-barrier kernels (fft/radix) legitimately race on whole
        // partitions; everything else stays focused.
        let cap = if matches!(bug.app, "fft" | "radix") { 80 } else { 24 };
        assert!(
            unique.len() <= cap,
            "{}: {} static races exceeds cap {cap}",
            bug.id,
            unique.len()
        );
    }
}

#[test]
fn bugfree_scientific_kernels_have_no_memory_races() {
    let config = VmConfig::default();
    for app in all_apps() {
        if !matches!(app.id, "fft" | "lu" | "radix") {
            continue;
        }
        let prog = app.workload(WorkloadScale::Small);
        for seed in 0..10 {
            let out = run_traced(prog.as_ref(), &config, seed);
            let races = detect_races(&out.trace);
            assert!(
                races.is_empty(),
                "{} seed {seed}: bug-free kernel races: {races:?}",
                app.id
            );
        }
    }
}
