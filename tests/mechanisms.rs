//! Cross-crate sketch-mechanism properties checked on real application
//! traces: the information spectrum is cumulative, online recording equals
//! offline filtering, and every sketch round-trips through the codec.

use pres_core::codec::{decode_sketch, encode_sketch};
use pres_core::recorder::{record, run_traced};
use pres_core::sketch::{Mechanism, Sketch, SketchOp};
use pres_suite::apps::registry::{all_apps, WorkloadScale};
use pres_tvm::vm::VmConfig;

fn standard_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Rw,
        Mechanism::Bb,
        Mechanism::BbN(4),
        Mechanism::Func,
        Mechanism::Sys,
        Mechanism::Sync,
    ]
}

/// a within b: every entry of `a` appears in `b` in order.
fn is_subsequence(a: &Sketch, b: &Sketch) -> bool {
    let mut it = b.entries.iter();
    a.entries.iter().all(|ea| it.any(|eb| eb == ea))
}

#[test]
fn online_recording_equals_offline_filtering_for_every_app() {
    let config = VmConfig::default();
    for app in all_apps() {
        let prog = app.workload(WorkloadScale::Small);
        let traced = run_traced(prog.as_ref(), &config, 11);
        for mech in standard_mechanisms() {
            let online = record(prog.as_ref(), mech, &config, 11).sketch;
            let offline = Sketch::from_events(mech, traced.trace.events());
            assert_eq!(
                online.entries, offline.entries,
                "{} under {}",
                app.id, mech
            );
        }
    }
}

#[test]
fn information_spectrum_is_cumulative() {
    let config = VmConfig::default();
    for app in all_apps() {
        let prog = app.workload(WorkloadScale::Small);
        let sketch_of = |m: Mechanism| record(prog.as_ref(), m, &config, 3).sketch;
        let rw = sketch_of(Mechanism::Rw);
        let bb = sketch_of(Mechanism::Bb);
        let bbn = sketch_of(Mechanism::BbN(4));
        let func = sketch_of(Mechanism::Func);
        let sync = sketch_of(Mechanism::Sync);
        let sys = sketch_of(Mechanism::Sys);
        assert!(is_subsequence(&sync, &rw), "{}: SYNC ⊆ RW", app.id);
        assert!(is_subsequence(&sync, &bb), "{}: SYNC ⊆ BB", app.id);
        assert!(is_subsequence(&sync, &func), "{}: SYNC ⊆ FUNC", app.id);
        assert!(is_subsequence(&bbn, &bb), "{}: BB-4 ⊆ BB", app.id);
        assert!(is_subsequence(&sys, &sync), "{}: SYS ⊆ SYNC", app.id);
        // Sampling strictly reduces entries; RW vs BB entry *counts* are
        // incomparable (RW records accesses, BB records block markers) -
        // the informational ordering is the subsequence property above.
        assert!(bb.len() >= bbn.len(), "{}: BB-4 samples BB", app.id);
        assert!(rw.len() >= sync.len(), "{}: RW extends SYNC", app.id);
    }
}

#[test]
fn every_sketch_round_trips_through_the_codec() {
    let config = VmConfig::default();
    for app in all_apps() {
        let prog = app.workload(WorkloadScale::Small);
        for mech in standard_mechanisms() {
            let sketch = record(prog.as_ref(), mech, &config, 5).sketch;
            let decoded = decode_sketch(&encode_sketch(&sketch))
                .unwrap_or_else(|e| panic!("{} under {}: {e}", app.id, mech));
            assert_eq!(sketch, decoded, "{} under {}", app.id, mech);
        }
    }
}

#[test]
fn syscall_results_are_recorded_by_every_mechanism() {
    let config = VmConfig::default();
    let apps = all_apps();
    let app = apps.iter().find(|a| a.id == "httpd").expect("httpd");
    let prog = app.workload(WorkloadScale::Small);
    for mech in standard_mechanisms() {
        let sketch = record(prog.as_ref(), mech, &config, 5).sketch;
        let sys_entries = sketch
            .entries
            .iter()
            .filter(|e| matches!(e.op, SketchOp::Sys { .. }))
            .count();
        assert!(
            sys_entries > 0,
            "{mech}: syscalls must be recorded for input determinism"
        );
    }
}
