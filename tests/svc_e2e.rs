//! End-to-end tests of the replay-as-a-service daemon over real loopback
//! TCP: the full serve → submit → poll → fetch-certificate → replay
//! pipeline, plus the abuse cases the daemon must survive (malformed
//! frames, mid-submit disconnects, job timeouts) and the restart story
//! (journal replay, store dedup).

use pres_suite::apps::registry::all_bugs;
use pres_suite::core::api::Pres;
use pres_suite::core::codec::{decode_sketch, encode_sketch};
use pres_suite::core::sketch::Mechanism;
use pres_suite::core::Certificate;
use pres_suite::svc::proto::{Frame, Request};
use pres_suite::svc::queue::QueueConfig;
use pres_suite::svc::server::{ServeOptions, Server};
use pres_suite::svc::{Client, JobStatus};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const BUG: &str = "pbzip-order";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pres-svc-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(data_dir: &std::path::Path, queue: QueueConfig) -> Server {
    Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.to_path_buf(),
        queue,
        log_interval: None,
        ..ServeOptions::default()
    })
    .expect("daemon starts")
}

fn recorded_sketch_bytes(bug: &str) -> Vec<u8> {
    let case = all_bugs().into_iter().find(|b| b.id == bug).unwrap();
    let program = case.program();
    let pres = Pres::new(Mechanism::Sync);
    let run = pres
        .record_until_failure(program.as_ref(), 0..5000)
        .expect("bug manifests in production");
    encode_sketch(&run.sketch)
}

#[test]
fn loopback_certificate_is_byte_identical_to_in_process_reproduction() {
    let dir = scratch("pipeline");
    let server = start(&dir, QueueConfig::default());
    let sketch_bytes = recorded_sketch_bytes(BUG);

    let mut client = Client::connect(server.addr()).unwrap();
    let receipt = client.submit(BUG, &sketch_bytes).unwrap();
    assert!(receipt.fresh_object);
    assert!(receipt.fresh_job);
    let status = client.wait(receipt.job, Duration::from_secs(120)).unwrap();
    let JobStatus::Succeeded { attempts, .. } = status else {
        panic!("expected success, got {status:?}");
    };
    assert!(attempts >= 1);
    let served_cert = client.fetch_certificate(receipt.job).unwrap();

    // The same sketch reproduced in-process mints the same certificate,
    // byte for byte: the service layer adds zero nondeterminism.
    let case = all_bugs().into_iter().find(|b| b.id == BUG).unwrap();
    let program = case.program();
    let pres = Pres::new(Mechanism::Sync);
    let sketch = decode_sketch(&sketch_bytes).unwrap();
    let mut recorded = pres.record(program.as_ref(), sketch.meta.seed);
    recorded.sketch = sketch;
    let repro = pres.reproduce(program.as_ref(), &recorded);
    assert_eq!(served_cert, repro.certificate.unwrap().encode());

    // And the served bytes replay the failure deterministically.
    let cert = Certificate::decode(&served_cert).unwrap();
    for _ in 0..3 {
        cert.replay(program.as_ref()).unwrap();
    }

    server.shutdown();
    server.join();
}

#[test]
fn duplicate_submission_dedups_object_and_job() {
    let dir = scratch("dedup");
    let server = start(&dir, QueueConfig::default());
    let sketch_bytes = recorded_sketch_bytes(BUG);

    let mut client = Client::connect(server.addr()).unwrap();
    let first = client.submit(BUG, &sketch_bytes).unwrap();
    client.wait(first.job, Duration::from_secs(120)).unwrap();
    let objects_after_first = server.queue().store().len().unwrap();

    // Same bytes, same bug — joins the finished job, writes nothing.
    let second = client.submit(BUG, &sketch_bytes).unwrap();
    assert_eq!(second.job, first.job);
    assert_eq!(second.sketch, first.sketch);
    assert!(!second.fresh_object, "store must dedup identical content");
    assert!(!second.fresh_job, "queue must join the existing job");
    assert_eq!(server.queue().store().len().unwrap(), objects_after_first);
    // The joined job's certificate is immediately fetchable.
    assert!(!client.fetch_certificate(second.job).unwrap().is_empty());

    let stats = client.stats().unwrap();
    assert!(stats.contains("dedup_hits         1"), "stats:\n{stats}");

    server.shutdown();
    server.join();
}

#[test]
fn daemon_survives_malformed_frames_and_mid_submit_disconnects() {
    let dir = scratch("abuse");
    let server = start(&dir, QueueConfig::default());

    // 1. Pure garbage bytes.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    }
    // 2. A valid header announcing an absurd payload length.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut frame = Frame {
            kind: 0x01,
            payload: vec![],
        }
        .encode();
        frame[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        s.write_all(&frame).unwrap();
    }
    // 3. A submit whose connection dies mid-payload.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let full = Request::Submit {
            bug: BUG.into(),
            sketch: vec![0xab; 10_000],
        }
        .to_frame()
        .unwrap()
        .encode();
        s.write_all(&full[..full.len() / 2]).unwrap();
        drop(s); // hang up mid-frame
    }
    // 4. An unknown message kind.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(
            &Frame {
                kind: 0x6e,
                payload: vec![],
            }
            .encode(),
        )
        .unwrap();
    }

    // After all that, the daemon still serves the real pipeline.
    let sketch_bytes = recorded_sketch_bytes(BUG);
    let mut client = Client::connect(server.addr()).unwrap();
    let receipt = client.submit(BUG, &sketch_bytes).unwrap();
    let status = client.wait(receipt.job, Duration::from_secs(120)).unwrap();
    assert!(matches!(status, JobStatus::Succeeded { .. }));

    server.shutdown();
    server.join();
}

#[test]
fn unreproducible_submissions_fail_without_poisoning_the_daemon() {
    let dir = scratch("badjobs");
    // One attempt and no retries: jobs resolve fast.
    let server = start(
        &dir,
        QueueConfig {
            max_attempts: 1,
            max_retries: 0,
            ..QueueConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).unwrap();

    // Unknown bug: rejected at submit time.
    let err = client.submit("no-such-bug", b"x").unwrap_err();
    assert!(err.to_string().contains("unknown bug"), "{err}");

    // Garbage sketch for a real bug: accepted, then fails cleanly.
    let receipt = client.submit(BUG, b"not a sketch container").unwrap();
    let status = client.wait(receipt.job, Duration::from_secs(60)).unwrap();
    assert!(matches!(status, JobStatus::Failed { .. }), "{status:?}");
    let err = client.fetch_certificate(receipt.job).unwrap_err();
    assert!(err.to_string().contains("no certificate"), "{err}");

    // A real sketch with a one-attempt budget exhausts (pbzip-order needs
    // more than one attempt under SYNC).
    let sketch_bytes = recorded_sketch_bytes(BUG);
    let receipt = client.submit(BUG, &sketch_bytes).unwrap();
    let status = client.wait(receipt.job, Duration::from_secs(60)).unwrap();
    assert!(matches!(status, JobStatus::Exhausted { .. }), "{status:?}");

    server.shutdown();
    server.join();
}

#[test]
fn job_timeout_trips_and_daemon_keeps_serving() {
    let dir = scratch("timeout");
    // A zero wall-clock budget trips the stop token before the first
    // attempt; a huge attempt budget proves the timeout (not the attempt
    // cap) is what stopped it.
    let server = start(
        &dir,
        QueueConfig {
            max_attempts: 1_000_000,
            job_timeout: Duration::ZERO,
            max_retries: 0,
            ..QueueConfig::default()
        },
    );
    let sketch_bytes = recorded_sketch_bytes(BUG);
    let mut client = Client::connect(server.addr()).unwrap();
    let receipt = client.submit(BUG, &sketch_bytes).unwrap();
    let status = client.wait(receipt.job, Duration::from_secs(60)).unwrap();
    let JobStatus::TimedOut { attempts } = status else {
        panic!("expected timeout, got {status:?}");
    };
    assert_eq!(attempts, 0, "zero budget spends zero attempts");

    // Still alive for the next query.
    assert!(client.status(receipt.job).unwrap().is_some());
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_and_journal_replays_across_restart() {
    let dir = scratch("restart");
    let sketch_bytes = recorded_sketch_bytes(BUG);

    // First life: finish one job, then drain via the wire protocol.
    let (job, digest) = {
        let server = start(&dir, QueueConfig::default());
        let mut client = Client::connect(server.addr()).unwrap();
        let receipt = client.submit(BUG, &sketch_bytes).unwrap();
        let status = client.wait(receipt.job, Duration::from_secs(120)).unwrap();
        assert!(matches!(status, JobStatus::Succeeded { .. }));
        client.shutdown().unwrap(); // SIGTERM equivalent, over the wire
        server.join();
        (receipt.job, receipt.sketch)
    };

    // Second life: same data dir. The journal replays the finished job,
    // the store still holds sketch + certificate, dedup still routes a
    // resubmission onto the old job, and its certificate replays.
    let server = start(&dir, QueueConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let status = client.status(job).unwrap();
    assert!(
        matches!(status, Some(JobStatus::Succeeded { .. })),
        "journal replay lost the result: {status:?}"
    );
    let receipt = client.submit(BUG, &sketch_bytes).unwrap();
    assert_eq!(receipt.job, job);
    assert_eq!(receipt.sketch, digest);
    assert!(!receipt.fresh_object);
    assert!(!receipt.fresh_job);

    let cert_bytes = client.fetch_certificate(job).unwrap();
    let case = all_bugs().into_iter().find(|b| b.id == BUG).unwrap();
    let program = case.program();
    Certificate::decode(&cert_bytes)
        .unwrap()
        .replay(program.as_ref())
        .unwrap();

    server.shutdown();
    server.join();
}
