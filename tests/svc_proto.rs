//! Property tests over the daemon's wire protocol: every message
//! round-trips exactly, and every way an attacker (or a flaky network) can
//! mangle a frame is rejected without a panic.
//!
//! Driven by the workspace's own deterministic generator so the cases are
//! reproducible by construction and the suite builds offline.

use pres_suite::svc::digest::{sha256, Digest};
use pres_suite::svc::proto::{Frame, PeerJob, ProtoError, Request, Response, DEFAULT_MAX_FRAME, VERSION};
use pres_suite::svc::queue::JobStatus;
use pres_tvm::rng::ChaCha8Rng;

// ---------------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------------

fn gen_bytes(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| rng.next_u32() as u8).collect()
}

fn gen_string(rng: &mut ChaCha8Rng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| char::from(rng.gen_range(32..=126u32) as u8))
        .collect()
}

fn gen_digest(rng: &mut ChaCha8Rng) -> Digest {
    sha256(&gen_bytes(rng, 64))
}

fn gen_status(rng: &mut ChaCha8Rng) -> JobStatus {
    match rng.gen_range(0..6usize) {
        0 => JobStatus::Queued {
            retries: rng.gen_range(0..=9u32),
        },
        1 => JobStatus::Running,
        2 => JobStatus::Succeeded {
            attempts: rng.gen_range(1..=1000u32),
            certificate: gen_digest(rng),
        },
        3 => JobStatus::Exhausted {
            attempts: rng.gen_range(1..=1000u32),
        },
        4 => JobStatus::TimedOut {
            attempts: rng.gen_range(0..=1000u32),
        },
        _ => JobStatus::Failed {
            message: gen_string(rng, 80),
        },
    }
}

fn gen_request(rng: &mut ChaCha8Rng) -> Request {
    match rng.gen_range(0..5usize) {
        0 => Request::Submit {
            bug: gen_string(rng, 40),
            sketch: gen_bytes(rng, 2048),
        },
        1 => Request::Status {
            job: rng.next_u64(),
        },
        2 => Request::Result {
            job: rng.next_u64(),
        },
        3 => Request::Stats,
        _ => Request::Shutdown,
    }
}

fn gen_peer_job(rng: &mut ChaCha8Rng) -> PeerJob {
    PeerJob {
        job: rng.next_u64(),
        bug: gen_string(rng, 40),
        sketch: gen_digest(rng),
        retries: rng.gen_range(0..=9u32),
    }
}

fn gen_response(rng: &mut ChaCha8Rng) -> Response {
    match rng.gen_range(0..13usize) {
        0 => Response::Submitted {
            job: rng.next_u64(),
            sketch: gen_digest(rng),
            fresh_object: rng.next_u32() & 1 == 0,
            fresh_job: rng.next_u32() & 1 == 0,
        },
        1 => Response::Status {
            status: (rng.next_u32() & 1 == 0).then(|| gen_status(rng)),
        },
        2 => Response::Result {
            certificate: gen_bytes(rng, 4096),
        },
        3 => Response::Stats {
            text: gen_string(rng, 400),
        },
        4 => Response::ShuttingDown,
        5 => Response::HelloOk,
        6 => Response::PeerPut {
            digest: gen_digest(rng),
            fresh: rng.next_u32() & 1 == 0,
        },
        7 => Response::PeerObject {
            body: (rng.next_u32() & 1 == 0).then(|| gen_bytes(rng, 4096)),
        },
        8 => Response::PeerStatIs {
            present: rng.next_u32() & 1 == 0,
        },
        9 => Response::PeerDigests {
            digests: (0..rng.gen_range(0..8usize)).map(|_| gen_digest(rng)).collect(),
        },
        10 => Response::PeerJobs {
            jobs: (0..rng.gen_range(0..5usize)).map(|_| gen_peer_job(rng)).collect(),
        },
        11 => Response::PeerDoneOk {
            accepted: rng.next_u32() & 1 == 0,
        },
        _ => Response::Error {
            message: gen_string(rng, 120),
        },
    }
}

// ---------------------------------------------------------------------------
// Round-trip properties.
// ---------------------------------------------------------------------------

#[test]
fn requests_roundtrip_through_frames_and_bytes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_70);
    for case in 0..300 {
        let req = gen_request(&mut rng);
        let bytes = req.to_frame().unwrap().encode();
        let mut cursor = &bytes[..];
        let frame = Frame::read_from(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert!(cursor.is_empty(), "case {case}: frame consumed exactly");
        assert_eq!(Request::from_frame(&frame).unwrap(), req, "case {case}");
    }
}

#[test]
fn responses_roundtrip_through_frames_and_bytes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_71);
    for case in 0..300 {
        let resp = gen_response(&mut rng);
        let bytes = resp.to_frame().unwrap().encode();
        let frame = Frame::read_from(&mut &bytes[..], DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(Response::from_frame(&frame).unwrap(), resp, "case {case}");
    }
}

#[test]
fn back_to_back_frames_parse_from_one_stream() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_72);
    let reqs: Vec<Request> = (0..20).map(|_| gen_request(&mut rng)).collect();
    let stream: Vec<u8> = reqs.iter().flat_map(|r| r.to_frame().unwrap().encode()).collect();
    let mut cursor = &stream[..];
    for req in &reqs {
        let frame = Frame::read_from(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(&Request::from_frame(&frame).unwrap(), req);
    }
    assert!(cursor.is_empty());
}

// ---------------------------------------------------------------------------
// Rejection properties.
// ---------------------------------------------------------------------------

#[test]
fn every_truncation_of_a_valid_frame_is_rejected_cleanly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_73);
    for _ in 0..50 {
        let bytes = gen_request(&mut rng).to_frame().unwrap().encode();
        for cut in 0..bytes.len() {
            // Truncation is a transport error (connection died mid-frame),
            // never a successful parse and never a panic.
            assert!(
                Frame::read_from(&mut &bytes[..cut], DEFAULT_MAX_FRAME).is_err(),
                "cut at {cut}/{}",
                bytes.len()
            );
        }
    }
}

#[test]
fn corrupted_headers_are_rejected_with_the_right_error() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_74);
    for _ in 0..100 {
        let good = gen_request(&mut rng).to_frame().unwrap().encode();

        let mut bad_magic = good.clone();
        bad_magic[rng.gen_range(0..2usize)] ^= 1 << rng.gen_range(0..8usize);
        assert!(matches!(
            Frame::read_from(&mut &bad_magic[..], DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap_err(),
            ProtoError::BadMagic(_)
        ));

        let mut bad_version = good.clone();
        bad_version[2] = VERSION.wrapping_add(rng.gen_range(1..=255u32) as u8);
        assert!(matches!(
            Frame::read_from(&mut &bad_version[..], DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap_err(),
            ProtoError::BadVersion(_)
        ));
    }
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_75);
    for _ in 0..100 {
        let mut bytes = gen_request(&mut rng).to_frame().unwrap().encode();
        let cap = rng.gen_range(0..=1024u32);
        let oversize = cap.saturating_add(rng.gen_range(1..=u32::MAX - 1024));
        bytes[4..8].copy_from_slice(&oversize.to_be_bytes());
        match Frame::read_from(&mut &bytes[..], cap).unwrap().unwrap_err() {
            ProtoError::Oversized { len, max } => {
                assert_eq!(len, oversize);
                assert_eq!(max, cap);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}

#[test]
fn random_payload_mutations_never_panic_the_decoder() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_76);
    let mut survivors = 0u32;
    for _ in 0..500 {
        let req = gen_request(&mut rng);
        let mut frame = req.to_frame().unwrap();
        // Mutate kind, payload bytes, or chop/extend the payload.
        match rng.gen_range(0..3usize) {
            0 => frame.kind = rng.next_u32() as u8,
            1 if !frame.payload.is_empty() => {
                let i = rng.gen_range(0..frame.payload.len());
                frame.payload[i] ^= 1 << rng.gen_range(0..8usize);
            }
            _ => {
                let new_len = rng.gen_range(0..frame.payload.len() + 9);
                frame.payload.resize(new_len, rng.next_u32() as u8);
            }
        }
        // Must not panic; decoding to a *different but valid* message is
        // acceptable (a flipped bit inside a string stays a string).
        if Request::from_frame(&frame).is_ok() {
            survivors += 1;
        }
    }
    // The decoder isn't so loose that everything passes.
    assert!(survivors < 400, "decoder accepted {survivors}/500 mutants");
}

#[test]
fn pure_garbage_streams_never_panic_the_frame_reader() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_77);
    for _ in 0..300 {
        let junk = gen_bytes(&mut rng, 64);
        // Any outcome except a panic is fine; almost all junk fails magic.
        let _ = Frame::read_from(&mut &junk[..], 4096);
    }
}

// ---------------------------------------------------------------------------
// Protocol v2: tagged frames, streaming submits, incremental parsing.
// ---------------------------------------------------------------------------

use pres_suite::svc::proto::{AnyFrame, Frame2, VERSION_V2};

fn gen_request_v2(rng: &mut ChaCha8Rng) -> Request {
    match rng.gen_range(0..15usize) {
        0 => Request::Submit {
            bug: gen_string(rng, 40),
            sketch: gen_bytes(rng, 2048),
        },
        1 => Request::SubmitBegin {
            bug: gen_string(rng, 40),
        },
        2 => Request::SubmitChunk {
            data: gen_bytes(rng, 2048),
        },
        3 => Request::SubmitEnd,
        4 => Request::Status {
            job: rng.next_u64(),
        },
        5 => Request::Result {
            job: rng.next_u64(),
        },
        6 => Request::Stats,
        7 => Request::Hello {
            token: gen_bytes(rng, 64),
        },
        8 => Request::PeerPutBegin {
            digest: gen_digest(rng),
        },
        9 => Request::PeerGet {
            digest: gen_digest(rng),
        },
        10 => Request::PeerStat {
            digest: gen_digest(rng),
        },
        11 => Request::PeerList,
        12 => Request::PeerSteal {
            max: rng.gen_range(0..=64u32),
        },
        13 => Request::PeerDone {
            job: rng.next_u64(),
            status: gen_status(rng),
        },
        _ => Request::Shutdown,
    }
}

/// A version byte that is neither 1 nor 2 (both are live on the wire now).
fn gen_bad_version(rng: &mut ChaCha8Rng) -> u8 {
    loop {
        let v = rng.next_u32() as u8;
        if v != 1 && v != 2 {
            return v;
        }
    }
}

#[test]
fn tagged_requests_roundtrip_and_echo_their_tag() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_78);
    for case in 0..300 {
        let req = gen_request_v2(&mut rng);
        let tag = rng.next_u32();
        let bytes = req.to_frame2(tag).unwrap().encode();
        // Through the blocking reader...
        let mut cursor = &bytes[..];
        let frame = AnyFrame::read_from(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert!(cursor.is_empty(), "case {case}: frame consumed exactly");
        assert_eq!(frame.tag(), tag, "case {case}");
        assert_eq!(Request::from_any(&frame).unwrap(), req, "case {case}");
        // ...and through the incremental parser, byte identical.
        let (parsed, used) = AnyFrame::parse(&bytes, DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(used, bytes.len(), "case {case}");
        assert_eq!(parsed.tag(), tag, "case {case}");
        assert_eq!(Request::from_any(&parsed).unwrap(), req, "case {case}");
    }
}

#[test]
fn responses_carry_tags_without_touching_payload_bytes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_79);
    for case in 0..300 {
        let resp = gen_response(&mut rng);
        let tag = rng.next_u32();
        let v1 = resp.to_frame().unwrap();
        let v2 = resp.to_frame2(tag).unwrap();
        // The payload encoding is version-independent: v2 adds a tag to
        // the header, nothing else.
        assert_eq!(v1.payload, v2.payload, "case {case}");
        let frame = AnyFrame::read_from(&mut &v2.encode()[..], DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(frame.tag(), tag);
        assert_eq!(Response::from_any(&frame).unwrap(), resp, "case {case}");
    }
}

#[test]
fn mixed_version_streams_parse_incrementally_at_every_split() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_7a);
    // A pipelined client may interleave v1 and v2 frames on one
    // connection; the incremental parser must walk the mix regardless of
    // how the transport fragments it.
    let mut stream = Vec::new();
    let mut expect: Vec<(u32, Request)> = Vec::new();
    for _ in 0..12 {
        let req = gen_request_v2(&mut rng);
        // v1 cannot carry the streaming triple, and the server only
        // honours PEER_PUT_BEGIN on a tagged v2 frame (the chunk stream
        // that follows needs the tag to multiplex).
        let forced_v2 = matches!(
            req,
            Request::SubmitBegin { .. }
                | Request::SubmitChunk { .. }
                | Request::SubmitEnd
                | Request::PeerPutBegin { .. }
        );
        if forced_v2 || rng.next_u32() & 1 == 0 {
            let tag = rng.next_u32();
            stream.extend_from_slice(&req.to_frame2(tag).unwrap().encode());
            expect.push((tag, req));
        } else {
            stream.extend_from_slice(&req.to_frame().unwrap().encode());
            expect.push((0, req));
        }
    }
    // Feed the stream in random-sized slices, collecting complete frames
    // exactly as the connection workers do.
    for _ in 0..20 {
        let mut buf: Vec<u8> = Vec::new();
        let mut fed = 0usize;
        let mut got = Vec::new();
        while got.len() < expect.len() {
            match AnyFrame::parse(&buf, DEFAULT_MAX_FRAME).unwrap() {
                Some((frame, used)) => {
                    buf.drain(..used);
                    got.push((frame.tag(), Request::from_any(&frame).unwrap()));
                }
                None => {
                    assert!(fed < stream.len(), "parser starved with input left");
                    let step = (rng.gen_range(1..=64u32) as usize).min(stream.len() - fed);
                    buf.extend_from_slice(&stream[fed..fed + step]);
                    fed += step;
                }
            }
        }
        assert_eq!(got, expect);
        assert!(AnyFrame::parse(&buf, DEFAULT_MAX_FRAME).unwrap().is_none());
    }
}

#[test]
fn truncated_v2_frames_are_incomplete_never_garbage() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_7b);
    for _ in 0..50 {
        let bytes = gen_request_v2(&mut rng)
            .to_frame2(rng.next_u32())
            .unwrap()
            .encode();
        for cut in 0..bytes.len() {
            // Every proper prefix of a valid frame is "read more", never a
            // parse and never a framing error.
            assert!(
                AnyFrame::parse(&bytes[..cut], DEFAULT_MAX_FRAME)
                    .unwrap()
                    .is_none(),
                "cut at {cut}/{}",
                bytes.len()
            );
        }
    }
}

#[test]
fn corrupted_v2_headers_fail_with_framing_severity() {
    use pres_suite::svc::proto::Severity;
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_7c);
    for _ in 0..100 {
        let good = gen_request_v2(&mut rng)
            .to_frame2(rng.next_u32())
            .unwrap()
            .encode();

        let mut bad_magic = good.clone();
        bad_magic[rng.gen_range(0..2usize)] ^= 1 << rng.gen_range(0..8usize);
        let err = AnyFrame::parse(&bad_magic, DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, ProtoError::BadMagic(_)));
        assert_eq!(err.severity(), Severity::Framing);

        let mut bad_version = good.clone();
        bad_version[2] = gen_bad_version(&mut rng);
        let err = AnyFrame::parse(&bad_version, DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, ProtoError::BadVersion(_)));
        assert_eq!(err.severity(), Severity::Framing);

        let mut oversize = good.clone();
        let cap = rng.gen_range(0..=1024u32);
        let len = cap.saturating_add(rng.gen_range(1..=u32::MAX - 1024));
        oversize[4..8].copy_from_slice(&len.to_be_bytes());
        let err = AnyFrame::parse(&oversize, cap).unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { .. }));
        assert_eq!(err.severity(), Severity::Framing);
    }
}

#[test]
fn v2_payload_mutations_fail_with_payload_severity_not_panics() {
    use pres_suite::svc::proto::Severity;
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_7d);
    let mut survivors = 0u32;
    for _ in 0..500 {
        let req = gen_request_v2(&mut rng);
        let mut frame = req.to_frame2(rng.next_u32()).unwrap();
        match rng.gen_range(0..3usize) {
            0 => frame.kind = rng.next_u32() as u8,
            1 if !frame.payload.is_empty() => {
                let i = rng.gen_range(0..frame.payload.len());
                frame.payload[i] ^= 1 << rng.gen_range(0..8usize);
            }
            _ => {
                let new_len = rng.gen_range(0..frame.payload.len() + 9);
                frame.payload.resize(new_len, rng.next_u32() as u8);
            }
        }
        match Request::from_any(&AnyFrame::V2(frame)) {
            Ok(_) => survivors += 1,
            // Whatever the decode error, it costs one request, not the
            // connection: pipelined peers depend on that.
            Err(e) => assert_eq!(e.severity(), Severity::Payload),
        }
    }
    assert!(survivors < 400, "decoder accepted {survivors}/500 mutants");
}

#[test]
fn v2_frames_reach_the_legacy_reader_as_a_version_error() {
    // The legacy front end reads with `Frame::read_from`, which must
    // refuse a v2 frame cleanly (BadVersion) rather than misparse the tag
    // as payload.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5c_7e);
    for _ in 0..50 {
        let bytes = gen_request_v2(&mut rng)
            .to_frame2(rng.next_u32())
            .unwrap()
            .encode();
        assert!(matches!(
            Frame::read_from(&mut &bytes[..], DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap_err(),
            ProtoError::BadVersion(VERSION_V2)
        ));
    }
}

#[test]
fn empty_chunks_and_empty_streams_are_legal_frames() {
    let chunk = Request::SubmitChunk { data: Vec::new() };
    let bytes = chunk.to_frame2(7).unwrap().encode();
    let (frame, used) = AnyFrame::parse(&bytes, DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert_eq!(used, bytes.len());
    assert_eq!(Request::from_any(&frame).unwrap(), chunk);
    // Frame2 with an empty payload is exactly the 12-byte header.
    assert_eq!(
        Frame2 {
            tag: 7,
            kind: 0x08,
            payload: Vec::new()
        }
        .encode()
        .len(),
        12
    );
}
