//! Thin wrappers over `std::sync` with a poison-free API.
//!
//! The VM's coordinator and virtual threads share one hub behind a mutex
//! and condvar. Virtual threads are shut down by unwinding a `Shutdown`
//! panic through their bodies, which would poison a raw `std::sync::Mutex`
//! and turn every later `lock()` into an error case the callers cannot
//! meaningfully handle. These wrappers recover the guard from a poisoned
//! lock (the hub's state transitions are all single-field writes, so a
//! mid-panic view is still consistent) and offer the `&mut guard` condvar
//! wait style the call sites are written against.

use std::ops::{Deref, DerefMut};

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// The guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner()),
        ))
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condvar.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// reacquiring before returning (spurious wakeups possible, as usual).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
    }

    /// As [`Condvar::wait`], but gives up after `timeout`. Returns `true`
    /// if the wait timed out (the lock is reacquired either way). Used by
    /// callers whose wake condition can change without a notification —
    /// e.g. a wall-clock deadline or a cooperative stop flag.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        result.timed_out()
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn wait_timeout_reports_expiry_and_wakeup() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_timeout(&mut g, std::time::Duration::from_millis(5)));
        drop(g);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait_timeout(&mut ready, std::time::Duration::from_secs(5));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
