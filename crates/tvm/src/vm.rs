//! The virtual machine coordinator and the thread-side [`Ctx`] API.
//!
//! Each virtual thread is an OS thread gated by a baton: it *announces* its
//! next operation and parks; the coordinator (running on the caller's
//! thread inside [`run`]) applies operations one at a time according to the
//! scheduler, so exactly one virtual thread executes user code at any
//! moment. Execution is therefore a deterministic function of
//! (program, world, scheduler decisions) — the property every recorder,
//! replayer, and certificate in this workspace is built on.

use crate::clock::{TimeReport, VClock};
use crate::cost::CostModel;
use crate::deadlock::{self, BlockedThread};
use crate::error::{Failure, RunStatus, VmError};
use crate::ids::{
    BarrierId, BbId, BufId, ChanId, CondId, ConnId, FdId, FuncId, LockId, RwLockId, SemId,
    ThreadId, VarId, ROOT_THREAD,
};
use crate::op::{BufOp, Op, OpResult, SyscallOp};
use crate::sched::{Candidate, Decision, SchedView, Scheduler};
use crate::state::{Applied, ResourceSpec, VmState};
use crate::sys::{AcceptStatus, WorldConfig};
use crate::trace::{Event, Observer, Trace, TraceMode};
use crate::sync::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configuration of one VM run.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Simulated processor count (`P` in the paper's scalability study).
    pub processors: u32,
    /// Step budget: livelock/runaway guard.
    pub max_steps: u64,
    /// Whether the VM retains the full event trace.
    pub trace_mode: TraceMode,
    /// The virtual-time cost model.
    pub cost_model: CostModel,
    /// The simulated world.
    pub world: WorldConfig,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            processors: 4,
            max_steps: 3_000_000,
            trace_mode: TraceMode::Off,
            cost_model: CostModel::default(),
            world: WorldConfig::default(),
        }
    }
}

impl VmConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), VmError> {
        if self.processors == 0 {
            return Err(VmError::InvalidConfig("processors must be >= 1".into()));
        }
        if self.max_steps == 0 {
            return Err(VmError::InvalidConfig("max_steps must be >= 1".into()));
        }
        Ok(())
    }
}

/// Per-class operation counts of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total applied operations.
    pub total_ops: u64,
    /// Shared-memory accesses.
    pub mem_accesses: u64,
    /// Synchronization operations.
    pub sync_ops: u64,
    /// System calls.
    pub syscalls: u64,
    /// Function-entry markers.
    pub func_markers: u64,
    /// Basic-block markers.
    pub bb_markers: u64,
    /// Threads spawned (excluding the root).
    pub spawns: u64,
}

impl RunStats {
    fn count(&mut self, op: &Op) {
        self.total_ops += 1;
        if op.is_mem_access() {
            self.mem_accesses += 1;
        } else if op.is_syscall() {
            self.syscalls += 1;
        } else if matches!(op, Op::Spawn) {
            self.spawns += 1;
            self.sync_ops += 1;
        } else if op.is_sync() {
            self.sync_ops += 1;
        } else if matches!(op, Op::Func(_)) {
            self.func_markers += 1;
        } else if matches!(op, Op::BasicBlock(_)) {
            self.bb_markers += 1;
        }
    }
}

/// Everything a completed run reports.
#[derive(Debug)]
pub struct RunOutcome {
    /// How the run ended.
    pub status: RunStatus,
    /// Full event trace (empty under [`TraceMode::Off`]).
    pub trace: Trace,
    /// Virtual-time report.
    pub time: TimeReport,
    /// Operation counts.
    pub stats: RunStats,
    /// The exact pick sequence the scheduler produced; replaying it through
    /// a [`crate::sched::ScriptedScheduler`] reproduces this run exactly.
    pub schedule: Vec<ThreadId>,
    /// Names of every virtual thread, indexed by [`ThreadId`].
    pub thread_names: Vec<String>,
    /// Program standard output.
    pub stdout: Vec<u8>,
    /// Per-connection response bytes.
    pub conn_outputs: Vec<Vec<u8>>,
    /// Final filesystem snapshot.
    pub files: BTreeMap<String, Vec<u8>>,
}

// ---------------------------------------------------------------------------
// Thread-side machinery.
// ---------------------------------------------------------------------------

/// Panic payload used to unwind parked threads at shutdown. Not a crash.
struct Shutdown;

enum Phase {
    /// OS thread created; has not announced yet.
    Starting,
    /// Parked with a pending operation.
    Announced(Op),
    /// Result delivered; about to resume user code.
    Granted,
    /// Executing user code.
    Running,
    /// Done. `None` = clean exit, `Some(msg)` = crash.
    Exited(Option<String>),
}

struct Slot {
    phase: Phase,
    result: Option<OpResult>,
    fault: Option<String>,
    name: String,
    tseq: u32,
    spawn_req: Option<SpawnReq>,
    os_handle: Option<std::thread::JoinHandle<()>>,
}

struct SpawnReq {
    name: String,
    body: Box<dyn FnOnce(&mut Ctx) + Send>,
}

struct Hub {
    slots: Vec<Slot>,
    poisoned: bool,
}

struct Shared {
    hub: Mutex<Hub>,
    cv: Condvar,
}

/// The handle a virtual thread uses for every interaction with shared
/// state. Obtained only inside [`run`]; all methods are yield points.
pub struct Ctx {
    shared: Arc<Shared>,
    tid: ThreadId,
}

impl Ctx {
    /// This thread's id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    fn op(&mut self, op: Op) -> OpResult {
        let me = self.tid.index();
        let mut hub = self.shared.hub.lock();
        if hub.poisoned {
            drop(hub);
            std::panic::panic_any(Shutdown);
        }
        hub.slots[me].phase = Phase::Announced(op);
        self.shared.cv.notify_all();
        loop {
            if hub.poisoned {
                drop(hub);
                std::panic::panic_any(Shutdown);
            }
            if matches!(hub.slots[me].phase, Phase::Granted) {
                break;
            }
            self.shared.cv.wait(&mut hub);
        }
        if let Some(msg) = hub.slots[me].fault.take() {
            hub.slots[me].phase = Phase::Running;
            self.shared.cv.notify_all();
            drop(hub);
            panic!("{msg}");
        }
        let res = hub.slots[me]
            .result
            .take()
            .expect("granted without a result");
        hub.slots[me].phase = Phase::Running;
        self.shared.cv.notify_all();
        res
    }

    // ---- shared memory -------------------------------------------------

    /// Reads a shared scalar.
    pub fn read(&mut self, v: VarId) -> u64 {
        self.op(Op::Read(v)).value()
    }

    /// Writes a shared scalar.
    pub fn write(&mut self, v: VarId, val: u64) {
        self.op(Op::Write(v, val));
    }

    /// Atomically adds `delta` and returns the previous value.
    pub fn fetch_add(&mut self, v: VarId, delta: i64) -> u64 {
        self.op(Op::FetchAdd(v, delta)).value()
    }

    /// Compare-and-swap; returns the previous value.
    pub fn compare_swap(&mut self, v: VarId, expect: u64, new: u64) -> u64 {
        self.op(Op::CompareSwap(v, expect, new)).value()
    }

    /// Appends to a shared buffer.
    pub fn buf_append(&mut self, b: BufId, data: &[u8]) {
        self.op(Op::Buf(b, BufOp::Append(data.to_vec())));
    }

    /// Reads a whole shared buffer.
    pub fn buf_read(&mut self, b: BufId) -> Vec<u8> {
        self.op(Op::Buf(b, BufOp::ReadAll)).bytes()
    }

    /// Length of a shared buffer.
    pub fn buf_len(&mut self, b: BufId) -> usize {
        self.op(Op::Buf(b, BufOp::Len)).value() as usize
    }

    /// Clears a shared buffer.
    pub fn buf_clear(&mut self, b: BufId) {
        self.op(Op::Buf(b, BufOp::Clear));
    }

    /// Overwrites one byte of a shared buffer.
    pub fn buf_set(&mut self, b: BufId, index: usize, byte: u8) {
        self.op(Op::Buf(b, BufOp::Set { index, byte }));
    }

    // ---- synchronization -----------------------------------------------

    /// Acquires a mutex, blocking while it is held.
    pub fn lock(&mut self, l: LockId) {
        self.op(Op::LockAcquire(l));
    }

    /// Releases a mutex this thread holds.
    pub fn unlock(&mut self, l: LockId) {
        self.op(Op::LockRelease(l));
    }

    /// Runs `f` with the mutex held (acquire/release around it).
    pub fn with_lock<R>(&mut self, l: LockId, f: impl FnOnce(&mut Ctx) -> R) -> R {
        self.lock(l);
        let r = f(self);
        self.unlock(l);
        r
    }

    /// Acquires a reader-writer lock for reading.
    pub fn rw_read(&mut self, rw: RwLockId) {
        self.op(Op::RwAcquireRead(rw));
    }

    /// Acquires a reader-writer lock for writing.
    pub fn rw_write(&mut self, rw: RwLockId) {
        self.op(Op::RwAcquireWrite(rw));
    }

    /// Releases a reader-writer lock.
    pub fn rw_unlock(&mut self, rw: RwLockId) {
        self.op(Op::RwRelease(rw));
    }

    /// Atomically releases `l` and waits on `c`; reacquires `l` before
    /// returning. As with POSIX condition variables, spurious ordering is
    /// possible and callers re-check their predicate in a loop.
    pub fn cond_wait(&mut self, c: CondId, l: LockId) {
        self.op(Op::CondWait(c, l));
    }

    /// Wakes one waiter of `c`.
    pub fn notify_one(&mut self, c: CondId) {
        self.op(Op::CondNotifyOne(c));
    }

    /// Wakes all waiters of `c`.
    pub fn notify_all(&mut self, c: CondId) {
        self.op(Op::CondNotifyAll(c));
    }

    /// Waits at a cyclic barrier.
    pub fn barrier_wait(&mut self, b: BarrierId) {
        self.op(Op::BarrierWait(b));
    }

    /// Acquires a semaphore permit (P).
    pub fn sem_acquire(&mut self, s: SemId) {
        self.op(Op::SemAcquire(s));
    }

    /// Releases a semaphore permit (V).
    pub fn sem_release(&mut self, s: SemId) {
        self.op(Op::SemRelease(s));
    }

    /// Sends on a FIFO channel (unbounded; never blocks).
    pub fn send(&mut self, ch: ChanId, v: u64) {
        self.op(Op::ChanSend(ch, v));
    }

    /// Receives from a FIFO channel; `None` once closed and drained.
    pub fn recv(&mut self, ch: ChanId) -> Option<u64> {
        self.op(Op::ChanRecv(ch)).maybe_value()
    }

    /// Closes a channel.
    pub fn chan_close(&mut self, ch: ChanId) {
        self.op(Op::ChanClose(ch));
    }

    /// Spawns a virtual thread running `body`; returns its id.
    pub fn spawn(&mut self, name: &str, body: impl FnOnce(&mut Ctx) + Send + 'static) -> ThreadId {
        {
            let mut hub = self.shared.hub.lock();
            let me = self.tid.index();
            hub.slots[me].spawn_req = Some(SpawnReq {
                name: name.to_string(),
                body: Box::new(body),
            });
        }
        self.op(Op::Spawn).tid()
    }

    /// Blocks until `t` has exited.
    pub fn join(&mut self, t: ThreadId) {
        self.op(Op::Join(t));
    }

    // ---- instrumentation markers ----------------------------------------

    /// Function-entry marker (FUNC sketching).
    pub fn func(&mut self, id: impl Into<FuncId>) {
        self.op(Op::Func(id.into()));
    }

    /// Basic-block marker (BB / BB-N sketching).
    pub fn bb(&mut self, id: impl Into<BbId>) {
        self.op(Op::BasicBlock(id.into()));
    }

    /// Pure thread-local computation of the given virtual cost.
    pub fn compute(&mut self, cost: u64) {
        self.op(Op::Compute(cost));
    }

    /// Voluntary yield.
    pub fn yield_now(&mut self) {
        self.op(Op::Yield);
    }

    /// Application-level assertion: on failure, the run ends with
    /// [`Failure::Assertion`] carrying `msg`. This never returns when the
    /// condition is false.
    pub fn check(&mut self, cond: bool, msg: &str) {
        if !cond {
            self.fail(msg);
        }
    }

    /// Unconditionally manifests a failure.
    pub fn fail(&mut self, msg: &str) -> ! {
        self.op(Op::Fail(msg.to_string()));
        unreachable!("Fail op never grants")
    }

    // ---- simulated system calls -----------------------------------------

    /// Opens (creating if absent) a file.
    pub fn sys_open(&mut self, path: &str) -> FdId {
        self.op(Op::Syscall(SyscallOp::FileOpen {
            path: path.to_string(),
        }))
        .fd()
    }

    /// Reads up to `len` bytes from an open file.
    pub fn sys_read(&mut self, fd: FdId, len: usize) -> Vec<u8> {
        self.op(Op::Syscall(SyscallOp::FileRead { fd, len })).bytes()
    }

    /// Appends bytes to an open file.
    pub fn sys_write(&mut self, fd: FdId, data: &[u8]) {
        self.op(Op::Syscall(SyscallOp::FileWrite {
            fd,
            data: data.to_vec(),
        }));
    }

    /// Closes a file.
    pub fn sys_close(&mut self, fd: FdId) {
        self.op(Op::Syscall(SyscallOp::FileClose { fd }));
    }

    /// Accepts the next inbound connection; blocks until one arrives;
    /// `None` once the workload script is exhausted.
    pub fn sys_accept(&mut self) -> Option<ConnId> {
        self.op(Op::Syscall(SyscallOp::NetAccept)).maybe_conn()
    }

    /// Receives up to `len` bytes; `None` at end of stream.
    pub fn sys_recv(&mut self, conn: ConnId, len: usize) -> Option<Vec<u8>> {
        self.op(Op::Syscall(SyscallOp::NetRecv { conn, len }))
            .maybe_bytes()
    }

    /// Sends response bytes on a connection.
    pub fn sys_send(&mut self, conn: ConnId, data: &[u8]) {
        self.op(Op::Syscall(SyscallOp::NetSend {
            conn,
            data: data.to_vec(),
        }));
    }

    /// Closes a connection.
    pub fn sys_net_close(&mut self, conn: ConnId) {
        self.op(Op::Syscall(SyscallOp::NetClose { conn }));
    }

    /// Reads the virtual clock.
    pub fn now(&mut self) -> u64 {
        self.op(Op::Syscall(SyscallOp::ClockNow)).value()
    }

    /// Draws from the input random stream; uniform in `[0, bound)` (or the
    /// full `u64` range when `bound` is 0).
    pub fn random(&mut self, bound: u64) -> u64 {
        self.op(Op::Syscall(SyscallOp::Random { bound })).value()
    }

    /// Writes a line to the program's standard output.
    pub fn println(&mut self, s: &str) {
        let mut data = s.as_bytes().to_vec();
        data.push(b'\n');
        self.op(Op::Syscall(SyscallOp::StdoutWrite { data }));
    }
}

/// Silences the default panic hook for virtual threads: their panics are
/// part of normal VM operation (shutdown unwinds, simulated crashes) and are
/// reported through [`RunOutcome::status`], not stderr.
fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_vthread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("vt-"));
            if !in_vthread {
                default(info);
            }
        }));
    });
}

fn thread_main(shared: Arc<Shared>, tid: ThreadId, body: Box<dyn FnOnce(&mut Ctx) + Send>) {
    let mut ctx = Ctx {
        shared: shared.clone(),
        tid,
    };
    let result = catch_unwind(AssertUnwindSafe(move || {
        ctx.op(Op::ThreadStart);
        body(&mut ctx);
        ctx.op(Op::ThreadExit);
    }));
    let exit = match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.is::<Shutdown>() {
                None
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("panic with non-string payload".to_string())
            }
        }
    };
    let mut hub = shared.hub.lock();
    hub.slots[tid.index()].phase = Phase::Exited(exit);
    shared.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

/// Runs a program to completion under the given scheduler and observer.
///
/// The root closure runs as thread `t0`; it may spawn further threads via
/// [`Ctx::spawn`]. The call returns when every thread has exited, a failure
/// manifested, the scheduler aborted, or the step budget ran out.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`VmConfig::validate`]) or if the
/// scheduler returns a thread that is not enabled.
pub fn run(
    config: VmConfig,
    resources: ResourceSpec,
    scheduler: &mut dyn Scheduler,
    observer: &mut dyn Observer,
    root: impl FnOnce(&mut Ctx) + Send + 'static,
) -> RunOutcome {
    config.validate().expect("invalid VmConfig");
    install_quiet_hook();
    let shared = Arc::new(Shared {
        hub: Mutex::new(Hub {
            slots: Vec::new(),
            poisoned: false,
        }),
        cv: Condvar::new(),
    });

    let mut state = VmState::new(resources, config.world.clone());
    let mut clock = VClock::new();
    let mut stats = RunStats::default();
    let mut trace = Trace::new();
    let mut schedule: Vec<ThreadId> = Vec::new();
    let mut step: u64 = 0;
    let mut known_exited: Vec<bool> = Vec::new();

    // Spawn the root thread.
    {
        let mut hub = shared.hub.lock();
        hub.slots.push(Slot {
            phase: Phase::Starting,
            result: None,
            fault: None,
            name: "main".to_string(),
            tseq: 0,
            spawn_req: None,
            os_handle: None,
        });
        known_exited.push(false);
        let sh = shared.clone();
        let handle = std::thread::Builder::new()
            .name("vt-main".to_string())
            .spawn(move || thread_main(sh, ROOT_THREAD, Box::new(root)))
            .expect("failed to spawn root vthread");
        hub.slots[0].os_handle = Some(handle);
    }

    // Announced ops ready to schedule, plus any crash observed this quiescence.
    type Quiescence = (Vec<(ThreadId, Op)>, Option<(ThreadId, String)>);

    let status = 'run: loop {
        // Wait for quiescence: every slot Announced or Exited.
        let (candidates, crashed): Quiescence = {
            let mut hub = shared.hub.lock();
            loop {
                let busy = hub.slots.iter().any(|s| {
                    matches!(s.phase, Phase::Starting | Phase::Granted | Phase::Running)
                });
                if !busy {
                    break;
                }
                shared.cv.wait(&mut hub);
            }
            // Detect crashes (newly exited with a message).
            let mut crash = None;
            for (i, slot) in hub.slots.iter().enumerate() {
                if let Phase::Exited(exit) = &slot.phase {
                    if !known_exited[i] {
                        known_exited[i] = true;
                        if let Some(msg) = exit {
                            crash = Some((ThreadId(i as u32), msg.clone()));
                        }
                    }
                }
            }
            let cands = hub
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match &s.phase {
                    Phase::Announced(op) => Some((ThreadId(i as u32), op.clone())),
                    _ => None,
                })
                .collect();
            (cands, crash)
        };

        if let Some((tid, message)) = crashed {
            break RunStatus::Failed(Failure::Crash { thread: tid, message });
        }

        if candidates.is_empty() {
            break RunStatus::Completed;
        }

        if step >= config.max_steps {
            break RunStatus::StepLimit;
        }

        // Partition into enabled / blocked.
        let is_exited = |t: ThreadId| -> bool {
            let hub = shared.hub.lock();
            matches!(hub.slots[t.index()].phase, Phase::Exited(_))
        };
        let mut enabled: Vec<Candidate> = Vec::new();
        let mut blocked: Vec<Candidate> = Vec::new();
        for (tid, op) in &candidates {
            let ok = match op {
                Op::Join(target) => is_exited(*target),
                other => state.enabled(*tid, other, step),
            };
            let cand = Candidate {
                tid: *tid,
                op: op.clone(),
            };
            if ok {
                enabled.push(cand);
            } else {
                blocked.push(cand);
            }
        }

        if enabled.is_empty() {
            // Fast-forward to the next scripted arrival if someone is
            // blocked on accept; otherwise the run is stuck.
            let next_arrival = blocked.iter().find_map(|c| {
                if matches!(c.op, Op::Syscall(SyscallOp::NetAccept)) {
                    match state.world().accept_status(step) {
                        AcceptStatus::WaitUntil(s) => Some(s),
                        _ => None,
                    }
                } else {
                    None
                }
            });
            if let Some(arrival) = next_arrival {
                step = arrival;
                continue 'run;
            }
            let blocked_threads: Vec<BlockedThread> = blocked
                .iter()
                .map(|c| BlockedThread {
                    tid: c.tid,
                    reason: match &c.op {
                        Op::Join(t) => crate::state::BlockReason::Other {
                            what: if is_exited(*t) { "join" } else { "join-wait" },
                        },
                        op => state
                            .block_reason(c.tid, op, step)
                            .unwrap_or(crate::state::BlockReason::Other { what: "unknown" }),
                    },
                })
                .collect();
            let report = deadlock::analyze(&blocked_threads);
            break RunStatus::Failed(Failure::Deadlock {
                threads: report.threads,
                locks: report.locks,
                description: report.description,
            });
        }

        // Ask the scheduler.
        let decision = {
            let view = SchedView {
                enabled: &enabled,
                blocked: &blocked,
                step,
                processors: config.processors,
            };
            scheduler.pick(&view)
        };
        let tid = match decision {
            Decision::Run(t) => t,
            Decision::Abort(reason) => break RunStatus::Aborted(reason),
        };
        let op = enabled
            .iter()
            .find(|c| c.tid == tid)
            .unwrap_or_else(|| panic!("scheduler picked non-enabled thread {tid}"))
            .op
            .clone();
        schedule.push(tid);
        step += 1;

        // Charge the base cost.
        clock.charge(tid, config.cost_model.op_cost(&op));
        stats.count(&op);

        // Apply.
        let mut fail: Option<Failure> = None;
        let (granted, event_result) = match &op {
            Op::Spawn => {
                let (new_tid, parent_grant) = {
                    let mut hub = shared.hub.lock();
                    let req = hub.slots[tid.index()]
                        .spawn_req
                        .take()
                        .expect("Spawn announced without a spawn request");
                    let new_tid = ThreadId(hub.slots.len() as u32);
                    hub.slots.push(Slot {
                        phase: Phase::Starting,
                        result: None,
                        fault: None,
                        name: req.name.clone(),
                        tseq: 0,
                        spawn_req: None,
                        os_handle: None,
                    });
                    known_exited.push(false);
                    let sh = shared.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("vt-{}", req.name))
                        .spawn(move || thread_main(sh, new_tid, req.body))
                        .expect("failed to spawn vthread");
                    hub.slots[new_tid.index()].os_handle = Some(handle);
                    (new_tid, OpResult::Tid(new_tid))
                };
                let _ = new_tid;
                (Some(parent_grant.clone()), parent_grant)
            }
            Op::Join(_) => (Some(OpResult::Unit), OpResult::Unit),
            Op::Fail(msg) => {
                fail = Some(Failure::Assertion {
                    thread: tid,
                    message: msg.clone(),
                });
                (None, OpResult::Unit)
            }
            other => match state.apply(tid, other, clock.now(), step) {
                Applied::Done(res) => (Some(res.clone()), res),
                Applied::BlockedRewrite(new_op) => {
                    let mut hub = shared.hub.lock();
                    hub.slots[tid.index()].phase = Phase::Announced(new_op);
                    (None, OpResult::Unit)
                }
                Applied::Fault(msg) => {
                    // Grant with a fault: the thread resumes and panics,
                    // which the crash path picks up.
                    let mut hub = shared.hub.lock();
                    hub.slots[tid.index()].fault = Some(msg);
                    hub.slots[tid.index()].result = Some(OpResult::Unit);
                    hub.slots[tid.index()].phase = Phase::Granted;
                    shared.cv.notify_all();
                    (None, OpResult::Unit)
                }
            },
        };

        // Emit the event.
        let tseq = {
            let mut hub = shared.hub.lock();
            let t = hub.slots[tid.index()].tseq;
            hub.slots[tid.index()].tseq += 1;
            t
        };
        let event = Event {
            gseq: schedule.len() as u64 - 1,
            tid,
            tseq,
            op: op.clone(),
            result: event_result,
        };
        let charge = observer.on_event(&event);
        if charge.thread_cost > 0 {
            clock.charge(tid, charge.thread_cost);
        }
        if charge.serial_cost > 0 {
            clock.charge_serial(tid, charge.serial_cost);
        }
        if config.trace_mode == TraceMode::Full {
            trace.push(event);
        }
        scheduler.on_applied(tid, &op);

        if let Some(f) = fail {
            break RunStatus::Failed(f);
        }

        // Grant the thread its result (unless it stays blocked/faulted).
        if let Some(res) = granted {
            let mut hub = shared.hub.lock();
            hub.slots[tid.index()].result = Some(res);
            hub.slots[tid.index()].phase = Phase::Granted;
            shared.cv.notify_all();
        }
    };

    // Shut down: poison parked threads and join every OS thread.
    let (handles, thread_names): (Vec<std::thread::JoinHandle<()>>, Vec<String>) = {
        let mut hub = shared.hub.lock();
        hub.poisoned = true;
        shared.cv.notify_all();
        let names = hub.slots.iter().map(|s| s.name.clone()).collect();
        let handles = hub
            .slots
            .iter_mut()
            .filter_map(|s| s.os_handle.take())
            .collect();
        (handles, names)
    };
    for h in handles {
        let _ = h.join();
    }

    let time = TimeReport::from_clock(&clock, config.processors);
    let (stdout, conn_outputs, files) = {
        let world = state.world();
        (
            world.stdout().to_vec(),
            world.conn_outputs(),
            world.files().clone(),
        )
    };
    RunOutcome {
        status,
        trace,
        time,
        stats,
        schedule,
        thread_names,
        stdout,
        conn_outputs,
        files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{RandomScheduler, RoundRobinScheduler, ScriptedScheduler};
    use crate::sys::Session;
    use crate::trace::NullObserver;

    fn quick_config() -> VmConfig {
        VmConfig {
            trace_mode: TraceMode::Full,
            ..VmConfig::default()
        }
    }

    #[test]
    fn single_thread_program_completes() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| {
                ctx.write(x, 41);
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            },
        );
        assert_eq!(out.status, RunStatus::Completed);
        assert!(out.stats.mem_accesses == 3);
        // start, 3 accesses, exit
        assert_eq!(out.stats.total_ops, 5);
    }

    #[test]
    fn spawn_join_and_shared_counter() {
        let mut spec = ResourceSpec::new();
        let counter = spec.var("counter", 0);
        let out = run(
            quick_config(),
            spec,
            &mut RandomScheduler::new(1),
            &mut NullObserver,
            move |ctx| {
                let kids: Vec<ThreadId> = (0..4)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for _ in 0..10 {
                                ctx.fetch_add(counter, 1);
                            }
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
                let total = ctx.read(counter);
                ctx.check(total == 40, "lost updates");
            },
        );
        assert_eq!(out.status, RunStatus::Completed);
        assert_eq!(out.stats.spawns, 4);
    }

    #[test]
    fn racy_read_write_counter_loses_updates_under_some_seed() {
        // The classic non-atomic increment: read, compute, write. Some seed
        // must interleave two threads inside the window.
        let lost_updates = |seed: u64| -> bool {
            let mut spec = ResourceSpec::new();
            let counter = spec.var("counter", 0);
            let out = run(
                VmConfig::default(),
                spec,
                &mut RandomScheduler::with_mean_slice(seed, 2),
                &mut NullObserver,
                move |ctx| {
                    let kids: Vec<ThreadId> = (0..2)
                        .map(|i| {
                            ctx.spawn(&format!("w{i}"), move |ctx| {
                                for _ in 0..20 {
                                    let v = ctx.read(counter);
                                    ctx.write(counter, v + 1);
                                }
                            })
                        })
                        .collect();
                    for k in kids {
                        ctx.join(k);
                    }
                    let total = ctx.read(counter);
                    ctx.check(total == 40, "lost update");
                },
            );
            out.status.is_failed()
        };
        let failures = (0..20).filter(|s| lost_updates(*s)).count();
        assert!(failures > 0, "no seed lost an update");
    }

    #[test]
    fn deadlock_is_detected_with_cycle() {
        let mut spec = ResourceSpec::new();
        let a = spec.lock("a");
        let b = spec.lock("b");
        // Force the ABBA interleaving with a scripted acquire order via
        // channel handshake.
        let ch = spec.chan("ready");
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| {
                let t1 = ctx.spawn("t1", move |ctx| {
                    ctx.lock(a);
                    ctx.send(ch, 1);
                    ctx.lock(b); // will deadlock
                    ctx.unlock(b);
                    ctx.unlock(a);
                });
                let t2 = ctx.spawn("t2", move |ctx| {
                    ctx.lock(b);
                    ctx.recv(ch);
                    ctx.lock(a); // will deadlock
                    ctx.unlock(a);
                    ctx.unlock(b);
                });
                ctx.join(t1);
                ctx.join(t2);
            },
        );
        match out.status {
            RunStatus::Failed(Failure::Deadlock { locks, .. }) => {
                assert!(locks.contains(&a) && locks.contains(&b));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn assertion_failure_surfaces_with_message() {
        let spec = ResourceSpec::new();
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            |ctx| {
                ctx.check(1 + 1 == 3, "math is broken");
            },
        );
        match out.status {
            RunStatus::Failed(Failure::Assertion { message, .. }) => {
                assert_eq!(message, "math is broken");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn panic_in_thread_is_a_crash() {
        let spec = ResourceSpec::new();
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            |ctx| {
                ctx.compute(1);
                panic!("segfault simulated");
            },
        );
        match out.status {
            RunStatus::Failed(Failure::Crash { message, .. }) => {
                assert!(message.contains("segfault"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn lock_misuse_is_a_crash_not_a_hang() {
        let mut spec = ResourceSpec::new();
        let l = spec.lock("m");
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| {
                ctx.unlock(l);
            },
        );
        match out.status {
            RunStatus::Failed(Failure::Crash { message, .. }) => {
                assert!(message.contains("does not hold"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn producer_consumer_with_condvar() {
        let mut spec = ResourceSpec::new();
        let l = spec.lock("m");
        let cv = spec.cond("cv");
        let q = spec.var("queued", 0);
        let consumed = spec.var("consumed", 0);
        let out = run(
            quick_config(),
            spec,
            &mut RandomScheduler::new(5),
            &mut NullObserver,
            move |ctx| {
                let cons = ctx.spawn("consumer", move |ctx| {
                    for _ in 0..5 {
                        ctx.lock(l);
                        while ctx.read(q) == 0 {
                            ctx.cond_wait(cv, l);
                        }
                        let n = ctx.read(q);
                        ctx.write(q, n - 1);
                        ctx.fetch_add(consumed, 1);
                        ctx.unlock(l);
                    }
                });
                for _ in 0..5 {
                    ctx.lock(l);
                    let n = ctx.read(q);
                    ctx.write(q, n + 1);
                    ctx.notify_one(cv);
                    ctx.unlock(l);
                }
                ctx.join(cons);
                let total = ctx.read(consumed);
                ctx.check(total == 5, "consumer missed items");
            },
        );
        assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let mut spec = ResourceSpec::new();
        let bar = spec.barrier("b", 3);
        let phase_sum = spec.var("sum", 0);
        let out = run(
            quick_config(),
            spec,
            &mut RandomScheduler::new(9),
            &mut NullObserver,
            move |ctx| {
                let kids: Vec<ThreadId> = (0..3)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            ctx.fetch_add(phase_sum, 1);
                            ctx.barrier_wait(bar);
                            // After the barrier every thread must see all 3
                            // phase-1 increments.
                            let s = ctx.read(phase_sum);
                            ctx.check(s >= 3, "barrier let a thread through early");
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
            },
        );
        assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
    }

    #[test]
    fn server_accepts_scripted_sessions_and_responds() {
        let mut spec = ResourceSpec::new();
        let served = spec.var("served", 0);
        let mut config = quick_config();
        config.world = WorldConfig::default()
            .with_session(Session::new(0, b"GET /a".to_vec()))
            .with_session(Session::new(10, b"GET /b".to_vec()));
        let out = run(
            config,
            spec,
            &mut RandomScheduler::new(2),
            &mut NullObserver,
            move |ctx| {
                while let Some(conn) = ctx.sys_accept() {
                    let req = ctx.sys_recv(conn, 64).unwrap_or_default();
                    ctx.sys_send(conn, b"200 ");
                    ctx.sys_send(conn, &req);
                    ctx.sys_net_close(conn);
                    ctx.fetch_add(served, 1);
                }
                let n = ctx.read(served);
                ctx.check(n == 2, "not all sessions served");
            },
        );
        assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
        assert_eq!(out.conn_outputs[0], b"200 GET /a".to_vec());
        assert_eq!(out.conn_outputs[1], b"200 GET /b".to_vec());
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run_once = |seed: u64| -> (Vec<ThreadId>, u64) {
            let mut spec = ResourceSpec::new();
            let x = spec.var("x", 0);
            let out = run(
                quick_config(),
                spec,
                &mut RandomScheduler::new(seed),
                &mut NullObserver,
                move |ctx| {
                    let kids: Vec<ThreadId> = (0..3)
                        .map(|i| {
                            ctx.spawn(&format!("w{i}"), move |ctx| {
                                for _ in 0..15 {
                                    let v = ctx.read(x);
                                    ctx.write(x, v + 1);
                                }
                            })
                        })
                        .collect();
                    for k in kids {
                        ctx.join(k);
                    }
                },
            );
            let final_x = out
                .trace
                .events()
                .iter()
                .rev()
                .find_map(|e| match e.op {
                    Op::Write(_, v) => Some(v),
                    _ => None,
                })
                .unwrap_or_default();
            (out.schedule, final_x)
        };
        let (s1, x1) = run_once(77);
        let (s2, x2) = run_once(77);
        assert_eq!(s1, s2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn scripted_replay_of_a_recorded_schedule_is_identical() {
        let program = |ctx: &mut Ctx, x: VarId| {
            let kids: Vec<ThreadId> = (0..3)
                .map(|i| {
                    ctx.spawn(&format!("w{i}"), move |ctx| {
                        for _ in 0..10 {
                            let v = ctx.read(x);
                            ctx.compute(3);
                            ctx.write(x, v + 1);
                        }
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        };
        let mut spec1 = ResourceSpec::new();
        let x1 = spec1.var("x", 0);
        let first = run(
            quick_config(),
            spec1,
            &mut RandomScheduler::new(123),
            &mut NullObserver,
            move |ctx| program(ctx, x1),
        );
        let mut spec2 = ResourceSpec::new();
        let x2 = spec2.var("x", 0);
        let mut scripted = ScriptedScheduler::new(first.schedule.clone());
        let second = run(
            quick_config(),
            spec2,
            &mut scripted,
            &mut NullObserver,
            move |ctx| program(ctx, x2),
        );
        assert_eq!(second.status, RunStatus::Completed);
        assert_eq!(first.schedule, second.schedule);
        assert_eq!(first.trace.len(), second.trace.len());
        for (a, b) in first.trace.events().iter().zip(second.trace.events()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn step_limit_stops_runaway_programs() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let mut config = quick_config();
        config.max_steps = 500;
        let out = run(
            config,
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| loop {
                ctx.fetch_add(x, 1);
            },
        );
        assert_eq!(out.status, RunStatus::StepLimit);
        assert!(out.stats.total_ops <= 501);
    }

    #[test]
    fn stdout_and_files_are_captured() {
        let spec = ResourceSpec::new();
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            |ctx| {
                ctx.println("hello");
                let fd = ctx.sys_open("data.log");
                ctx.sys_write(fd, b"abc");
                ctx.sys_close(fd);
            },
        );
        assert_eq!(out.stdout, b"hello\n");
        assert_eq!(out.files.get("data.log").unwrap(), &b"abc".to_vec());
    }

    #[test]
    fn virtual_time_reflects_compute_costs() {
        let spec = ResourceSpec::new();
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            |ctx| {
                ctx.compute(10_000);
            },
        );
        assert!(out.time.work >= 10_000);
        assert!(out.time.span >= 10_000);
    }
}
