//! The virtual machine coordinator and the thread-side [`Ctx`] API.
//!
//! Each virtual thread is an OS thread gated by a baton: it *announces* its
//! next operation and the coordinator step applies operations one at a time
//! according to the scheduler, so exactly one virtual thread executes user
//! code at any moment. The coordinator is not a thread but a function
//! ([`coordinate`]) run by whichever virtual thread completed quiescence —
//! so consecutive picks of the same thread cost no context switch, and a
//! handoff to another thread costs exactly one. Execution is a
//! deterministic function of (program, world, scheduler decisions) — the
//! property every recorder, replayer, and certificate in this workspace is
//! built on.

use crate::clock::{TimeReport, VClock};
use crate::cost::CostModel;
use crate::deadlock::{self, BlockedThread};
use crate::error::{Failure, RunStatus, VmError};
use crate::ids::{
    BarrierId, BbId, BufId, ChanId, CondId, ConnId, FdId, FuncId, LockId, RwLockId, SemId,
    ThreadId, VarId, ROOT_THREAD,
};
use crate::op::{BufOp, Op, OpResult, SyscallOp};
use crate::sched::{Candidate, Decision, SchedView, Scheduler};
use crate::state::{Applied, ResourceSpec, VmState};
use crate::sys::{AcceptStatus, WorldConfig};
use crate::trace::{Event, Observer, Trace, TraceMode};
use crate::sync::{Condvar, Mutex, MutexGuard};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configuration of one VM run.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Simulated processor count (`P` in the paper's scalability study).
    pub processors: u32,
    /// Step budget: livelock/runaway guard.
    pub max_steps: u64,
    /// Whether the VM retains the full event trace.
    pub trace_mode: TraceMode,
    /// The virtual-time cost model.
    pub cost_model: CostModel,
    /// The simulated world.
    pub world: WorldConfig,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            processors: 4,
            max_steps: 3_000_000,
            trace_mode: TraceMode::Off,
            cost_model: CostModel::default(),
            world: WorldConfig::default(),
        }
    }
}

impl VmConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), VmError> {
        if self.processors == 0 {
            return Err(VmError::InvalidConfig("processors must be >= 1".into()));
        }
        if self.max_steps == 0 {
            return Err(VmError::InvalidConfig("max_steps must be >= 1".into()));
        }
        Ok(())
    }
}

/// Per-class operation counts of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total applied operations.
    pub total_ops: u64,
    /// Shared-memory accesses.
    pub mem_accesses: u64,
    /// Synchronization operations.
    pub sync_ops: u64,
    /// System calls.
    pub syscalls: u64,
    /// Function-entry markers.
    pub func_markers: u64,
    /// Basic-block markers.
    pub bb_markers: u64,
    /// Threads spawned (excluding the root). These are *virtual* spawns:
    /// every `Ctx::spawn` counts here regardless of executor.
    pub spawns: u64,
    /// OS threads actually created to host this run's virtual threads
    /// (root included). Equals `spawns + 1` under the spawning executor;
    /// **zero** for a warm pooled run ([`run_with_pool`]) — the steady-state
    /// invariant the executor pool exists to deliver.
    pub os_spawns: u64,
}

impl RunStats {
    fn count(&mut self, op: &Op) {
        self.total_ops += 1;
        if op.is_mem_access() {
            self.mem_accesses += 1;
        } else if op.is_syscall() {
            self.syscalls += 1;
        } else if matches!(op, Op::Spawn) {
            self.spawns += 1;
            self.sync_ops += 1;
        } else if op.is_sync() {
            self.sync_ops += 1;
        } else if matches!(op, Op::Func(_)) {
            self.func_markers += 1;
        } else if matches!(op, Op::BasicBlock(_)) {
            self.bb_markers += 1;
        }
    }
}

/// Everything a completed run reports.
#[derive(Debug)]
pub struct RunOutcome {
    /// How the run ended.
    pub status: RunStatus,
    /// Full event trace (empty under [`TraceMode::Off`]).
    pub trace: Trace,
    /// Virtual-time report.
    pub time: TimeReport,
    /// Operation counts.
    pub stats: RunStats,
    /// The exact pick sequence the scheduler produced; replaying it through
    /// a [`crate::sched::ScriptedScheduler`] reproduces this run exactly.
    pub schedule: Vec<ThreadId>,
    /// Names of every virtual thread, indexed by [`ThreadId`].
    pub thread_names: Vec<String>,
    /// Program standard output.
    pub stdout: Vec<u8>,
    /// Per-connection response bytes.
    pub conn_outputs: Vec<Vec<u8>>,
    /// Final filesystem snapshot.
    pub files: BTreeMap<String, Vec<u8>>,
}

// ---------------------------------------------------------------------------
// Thread-side machinery.
// ---------------------------------------------------------------------------

/// Panic payload used to unwind parked threads at shutdown. Not a crash.
struct Shutdown;

enum Phase {
    /// OS thread created; has not announced yet.
    Starting,
    /// Parked with a pending operation.
    Announced(Op),
    /// Result delivered; about to resume user code.
    Granted,
    /// Executing user code.
    Running,
    /// Done. `None` = clean exit, `Some(msg)` = crash.
    Exited(Option<String>),
}

struct Slot {
    phase: Phase,
    result: Option<OpResult>,
    fault: Option<String>,
    /// Interned: shared with the spawn request instead of re-copied.
    name: Arc<str>,
    tseq: u32,
    spawn_req: Option<SpawnReq>,
    os_handle: Option<std::thread::JoinHandle<()>>,
    /// This thread's private wakeup: a grant (or shutdown poison) wakes
    /// exactly this thread, never the whole herd.
    cv: Arc<Condvar>,
}

struct SpawnReq {
    name: Arc<str>,
    body: Box<dyn FnOnce(&mut Ctx) + Send>,
}

struct Hub {
    slots: Vec<Slot>,
    poisoned: bool,
    coord: Coord,
}

/// Coordinator state: the scheduler, the observer, and everything the step
/// loop mutates. It lives *inside* the hub mutex so that the virtual
/// threads themselves can run scheduling steps ([`coordinate`]): whichever
/// thread completes quiescence (by announcing or exiting) picks, applies,
/// and grants while already holding the lock. When the scheduler picks the
/// announcing thread again, the grant is observed on the way out of the
/// same critical section — no context switch at all. A dedicated
/// coordinator thread would instead pay two switches per event (to the
/// coordinator and back), which dominated replay attempt wall-clock.
///
/// `scheduler` and `observer` are lifetime-erased pointers to the borrows
/// passed to [`run`]. Safety: they are dereferenced only while holding the
/// hub mutex, and `run` joins every virtual OS thread before returning, so
/// every dereference happens strictly within the lifetime of the erased
/// borrows. Both trait objects are `Send` by supertrait bound.
struct Coord {
    scheduler: *mut dyn Scheduler,
    observer: *mut dyn Observer,
    state: VmState,
    clock: VClock,
    stats: RunStats,
    trace: Trace,
    schedule: Vec<ThreadId>,
    step: u64,
    /// Mirrors `Phase::Exited` per slot so `Join` enabledness is answered
    /// without re-scanning phases.
    known_exited: Vec<bool>,
    /// Candidate buffers, reused across scheduling rounds: cleared and
    /// refilled each quiescence instead of reallocated.
    enabled: Vec<Candidate>,
    blocked: Vec<Candidate>,
    /// Set exactly once, when the run's outcome is decided.
    status: Option<RunStatus>,
    processors: u32,
    max_steps: u64,
    trace_mode: TraceMode,
    cost_model: CostModel,
}

// SAFETY: the raw pointers target `Send` trait objects (`Scheduler: Send`,
// `Observer: Send`), are dereferenced only under the hub mutex (one thread
// at a time), and never escape the `run` frame that erased them.
unsafe impl Send for Coord {}

/// How vthread bodies are hosted on OS threads.
enum Exec {
    /// One fresh OS thread per vthread, joined at run end — the original
    /// engine, kept as the fallback (and the equivalence baseline).
    Spawn,
    /// Checked out of a [`crate::pool::VthreadPool`]; workers return to the
    /// pool at vthread exit instead of being joined.
    Pool(crate::pool::PoolHandle),
}

struct Shared {
    hub: Mutex<Hub>,
    /// Wakes the `run` caller once the run's status is decided.
    done: Condvar,
    /// The executor hosting this run's vthreads.
    exec: Exec,
    /// Outstanding pooled vthread jobs: incremented at submission,
    /// decremented when the job returns its worker to the pool. The run
    /// frame waits for zero before returning — the pooled replacement for
    /// joining OS handles, and what keeps the erased scheduler/observer
    /// borrows in [`Coord`] sound.
    jobs: Mutex<usize>,
    /// Wakes the run frame when `jobs` reaches zero.
    jobs_done: Condvar,
}

/// Starts `body` as vthread `tid`: on the pooled executor the job is handed
/// to a parked worker (an OS thread is created only when none is idle); on
/// the spawning executor a fresh OS thread is always created. Returns the
/// join handle (spawning mode only) and whether an OS thread was created.
fn launch(
    shared: &Arc<Shared>,
    tid: ThreadId,
    name: &Arc<str>,
    body: Box<dyn FnOnce(&mut Ctx) + Send>,
) -> (Option<std::thread::JoinHandle<()>>, bool) {
    match &shared.exec {
        Exec::Spawn => {
            let sh = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("vt-{name}"))
                .spawn(move || thread_main(&sh, tid, body))
                .expect("failed to spawn vthread");
            (Some(handle), true)
        }
        Exec::Pool(pool) => {
            *shared.jobs.lock() += 1;
            let sh = shared.clone();
            let done_sh = shared.clone();
            let spawned = pool.execute(
                tid,
                Box::new(move || thread_main(&sh, tid, body)),
                // The pool fires this unconditionally (return or panic),
                // after the worker re-parked — so once `jobs` hits zero the
                // erased scheduler/observer borrows are dead everywhere AND
                // every worker is already checkable-out again.
                Box::new(move || {
                    let mut jobs = done_sh.jobs.lock();
                    *jobs -= 1;
                    if *jobs == 0 {
                        done_sh.jobs_done.notify_all();
                    }
                }),
            );
            (None, spawned)
        }
    }
}

/// The handle a virtual thread uses for every interaction with shared
/// state. Obtained only inside [`run`]; all methods are yield points.
pub struct Ctx {
    shared: Arc<Shared>,
    tid: ThreadId,
}

impl Ctx {
    /// This thread's id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    fn op(&mut self, op: Op) -> OpResult {
        let me = self.tid.index();
        let mut hub = self.shared.hub.lock();
        if hub.poisoned {
            drop(hub);
            std::panic::panic_any(Shutdown);
        }
        hub.slots[me].phase = Phase::Announced(op);
        // The announcing thread carries the baton: if this announce
        // completed quiescence, run scheduling steps right here. A
        // self-grant is then observed immediately below without parking.
        coordinate(&mut hub, &self.shared, Some(self.tid));
        let cv = hub.slots[me].cv.clone();
        loop {
            if hub.poisoned {
                drop(hub);
                std::panic::panic_any(Shutdown);
            }
            if matches!(hub.slots[me].phase, Phase::Granted) {
                break;
            }
            cv.wait(&mut hub);
        }
        // Granted -> Running needs no notification: nothing waits on that
        // transition; the next scheduling step runs at this thread's next
        // announce (or exit).
        if let Some(msg) = hub.slots[me].fault.take() {
            hub.slots[me].phase = Phase::Running;
            drop(hub);
            panic!("{msg}");
        }
        let res = hub.slots[me]
            .result
            .take()
            .expect("granted without a result");
        hub.slots[me].phase = Phase::Running;
        res
    }

    // ---- shared memory -------------------------------------------------

    /// Reads a shared scalar.
    pub fn read(&mut self, v: VarId) -> u64 {
        self.op(Op::Read(v)).value()
    }

    /// Writes a shared scalar.
    pub fn write(&mut self, v: VarId, val: u64) {
        self.op(Op::Write(v, val));
    }

    /// Atomically adds `delta` and returns the previous value.
    pub fn fetch_add(&mut self, v: VarId, delta: i64) -> u64 {
        self.op(Op::FetchAdd(v, delta)).value()
    }

    /// Compare-and-swap; returns the previous value.
    pub fn compare_swap(&mut self, v: VarId, expect: u64, new: u64) -> u64 {
        self.op(Op::CompareSwap(v, expect, new)).value()
    }

    /// Appends to a shared buffer.
    pub fn buf_append(&mut self, b: BufId, data: &[u8]) {
        self.op(Op::Buf(b, BufOp::Append(data.to_vec())));
    }

    /// Reads a whole shared buffer.
    pub fn buf_read(&mut self, b: BufId) -> Vec<u8> {
        self.op(Op::Buf(b, BufOp::ReadAll)).bytes()
    }

    /// Length of a shared buffer.
    pub fn buf_len(&mut self, b: BufId) -> usize {
        self.op(Op::Buf(b, BufOp::Len)).value() as usize
    }

    /// Clears a shared buffer.
    pub fn buf_clear(&mut self, b: BufId) {
        self.op(Op::Buf(b, BufOp::Clear));
    }

    /// Overwrites one byte of a shared buffer.
    pub fn buf_set(&mut self, b: BufId, index: usize, byte: u8) {
        self.op(Op::Buf(b, BufOp::Set { index, byte }));
    }

    // ---- synchronization -----------------------------------------------

    /// Acquires a mutex, blocking while it is held.
    pub fn lock(&mut self, l: LockId) {
        self.op(Op::LockAcquire(l));
    }

    /// Releases a mutex this thread holds.
    pub fn unlock(&mut self, l: LockId) {
        self.op(Op::LockRelease(l));
    }

    /// Runs `f` with the mutex held (acquire/release around it).
    pub fn with_lock<R>(&mut self, l: LockId, f: impl FnOnce(&mut Ctx) -> R) -> R {
        self.lock(l);
        let r = f(self);
        self.unlock(l);
        r
    }

    /// Acquires a reader-writer lock for reading.
    pub fn rw_read(&mut self, rw: RwLockId) {
        self.op(Op::RwAcquireRead(rw));
    }

    /// Acquires a reader-writer lock for writing.
    pub fn rw_write(&mut self, rw: RwLockId) {
        self.op(Op::RwAcquireWrite(rw));
    }

    /// Releases a reader-writer lock.
    pub fn rw_unlock(&mut self, rw: RwLockId) {
        self.op(Op::RwRelease(rw));
    }

    /// Atomically releases `l` and waits on `c`; reacquires `l` before
    /// returning. As with POSIX condition variables, spurious ordering is
    /// possible and callers re-check their predicate in a loop.
    pub fn cond_wait(&mut self, c: CondId, l: LockId) {
        self.op(Op::CondWait(c, l));
    }

    /// Wakes one waiter of `c`.
    pub fn notify_one(&mut self, c: CondId) {
        self.op(Op::CondNotifyOne(c));
    }

    /// Wakes all waiters of `c`.
    pub fn notify_all(&mut self, c: CondId) {
        self.op(Op::CondNotifyAll(c));
    }

    /// Waits at a cyclic barrier.
    pub fn barrier_wait(&mut self, b: BarrierId) {
        self.op(Op::BarrierWait(b));
    }

    /// Acquires a semaphore permit (P).
    pub fn sem_acquire(&mut self, s: SemId) {
        self.op(Op::SemAcquire(s));
    }

    /// Releases a semaphore permit (V).
    pub fn sem_release(&mut self, s: SemId) {
        self.op(Op::SemRelease(s));
    }

    /// Sends on a FIFO channel (unbounded; never blocks).
    pub fn send(&mut self, ch: ChanId, v: u64) {
        self.op(Op::ChanSend(ch, v));
    }

    /// Receives from a FIFO channel; `None` once closed and drained.
    pub fn recv(&mut self, ch: ChanId) -> Option<u64> {
        self.op(Op::ChanRecv(ch)).maybe_value()
    }

    /// Closes a channel.
    pub fn chan_close(&mut self, ch: ChanId) {
        self.op(Op::ChanClose(ch));
    }

    /// Spawns a virtual thread running `body`; returns its id.
    pub fn spawn(&mut self, name: &str, body: impl FnOnce(&mut Ctx) + Send + 'static) -> ThreadId {
        {
            let mut hub = self.shared.hub.lock();
            let me = self.tid.index();
            hub.slots[me].spawn_req = Some(SpawnReq {
                name: Arc::from(name),
                body: Box::new(body),
            });
        }
        self.op(Op::Spawn).tid()
    }

    /// Blocks until `t` has exited.
    pub fn join(&mut self, t: ThreadId) {
        self.op(Op::Join(t));
    }

    // ---- instrumentation markers ----------------------------------------

    /// Function-entry marker (FUNC sketching).
    pub fn func(&mut self, id: impl Into<FuncId>) {
        self.op(Op::Func(id.into()));
    }

    /// Basic-block marker (BB / BB-N sketching).
    pub fn bb(&mut self, id: impl Into<BbId>) {
        self.op(Op::BasicBlock(id.into()));
    }

    /// Pure thread-local computation of the given virtual cost.
    pub fn compute(&mut self, cost: u64) {
        self.op(Op::Compute(cost));
    }

    /// Voluntary yield.
    pub fn yield_now(&mut self) {
        self.op(Op::Yield);
    }

    /// Application-level assertion: on failure, the run ends with
    /// [`Failure::Assertion`] carrying `msg`. This never returns when the
    /// condition is false.
    pub fn check(&mut self, cond: bool, msg: &str) {
        if !cond {
            self.fail(msg);
        }
    }

    /// Unconditionally manifests a failure.
    pub fn fail(&mut self, msg: &str) -> ! {
        self.op(Op::Fail(msg.to_string()));
        unreachable!("Fail op never grants")
    }

    // ---- simulated system calls -----------------------------------------

    /// Opens (creating if absent) a file.
    pub fn sys_open(&mut self, path: &str) -> FdId {
        self.op(Op::Syscall(SyscallOp::FileOpen {
            path: path.to_string(),
        }))
        .fd()
    }

    /// Reads up to `len` bytes from an open file.
    pub fn sys_read(&mut self, fd: FdId, len: usize) -> Vec<u8> {
        self.op(Op::Syscall(SyscallOp::FileRead { fd, len })).bytes()
    }

    /// Appends bytes to an open file.
    pub fn sys_write(&mut self, fd: FdId, data: &[u8]) {
        self.op(Op::Syscall(SyscallOp::FileWrite {
            fd,
            data: data.to_vec(),
        }));
    }

    /// Closes a file.
    pub fn sys_close(&mut self, fd: FdId) {
        self.op(Op::Syscall(SyscallOp::FileClose { fd }));
    }

    /// Accepts the next inbound connection; blocks until one arrives;
    /// `None` once the workload script is exhausted.
    pub fn sys_accept(&mut self) -> Option<ConnId> {
        self.op(Op::Syscall(SyscallOp::NetAccept)).maybe_conn()
    }

    /// Receives up to `len` bytes; `None` at end of stream.
    pub fn sys_recv(&mut self, conn: ConnId, len: usize) -> Option<Vec<u8>> {
        self.op(Op::Syscall(SyscallOp::NetRecv { conn, len }))
            .maybe_bytes()
    }

    /// Sends response bytes on a connection.
    pub fn sys_send(&mut self, conn: ConnId, data: &[u8]) {
        self.op(Op::Syscall(SyscallOp::NetSend {
            conn,
            data: data.to_vec(),
        }));
    }

    /// Closes a connection.
    pub fn sys_net_close(&mut self, conn: ConnId) {
        self.op(Op::Syscall(SyscallOp::NetClose { conn }));
    }

    /// Reads the virtual clock.
    pub fn now(&mut self) -> u64 {
        self.op(Op::Syscall(SyscallOp::ClockNow)).value()
    }

    /// Draws from the input random stream; uniform in `[0, bound)` (or the
    /// full `u64` range when `bound` is 0).
    pub fn random(&mut self, bound: u64) -> u64 {
        self.op(Op::Syscall(SyscallOp::Random { bound })).value()
    }

    /// Writes a line to the program's standard output.
    pub fn println(&mut self, s: &str) {
        let mut data = s.as_bytes().to_vec();
        data.push(b'\n');
        self.op(Op::Syscall(SyscallOp::StdoutWrite { data }));
    }
}

/// Silences the default panic hook for virtual threads: their panics are
/// part of normal VM operation (shutdown unwinds, simulated crashes) and are
/// reported through [`RunOutcome::status`], not stderr.
pub(crate) fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_vthread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("vt-"));
            if !in_vthread {
                default(info);
            }
        }));
    });
}

fn thread_main(shared: &Arc<Shared>, tid: ThreadId, body: Box<dyn FnOnce(&mut Ctx) + Send>) {
    let mut ctx = Ctx {
        shared: shared.clone(),
        tid,
    };
    let result = catch_unwind(AssertUnwindSafe(move || {
        ctx.op(Op::ThreadStart);
        body(&mut ctx);
        ctx.op(Op::ThreadExit);
    }));
    let exit = match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.is::<Shutdown>() {
                None
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("panic with non-string payload".to_string())
            }
        }
    };
    let mut hub = shared.hub.lock();
    hub.slots[tid.index()].phase = Phase::Exited(exit);
    // An exit can complete quiescence too; the exiting thread runs the
    // next scheduling steps before its OS thread terminates (or, under a
    // pooled executor, returns to the pool).
    coordinate(&mut hub, shared, None);
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

/// Runs a program to completion under the given scheduler and observer.
///
/// The root closure runs as thread `t0`; it may spawn further threads via
/// [`Ctx::spawn`]. The call returns when every thread has exited, a failure
/// manifested, the scheduler aborted, or the step budget ran out.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`VmConfig::validate`]) or if the
/// scheduler returns a thread that is not enabled.
pub fn run(
    config: VmConfig,
    resources: ResourceSpec,
    scheduler: &mut dyn Scheduler,
    observer: &mut dyn Observer,
    root: impl FnOnce(&mut Ctx) + Send + 'static,
) -> RunOutcome {
    run_exec(config, resources, scheduler, observer, Exec::Spawn, root)
}

/// As [`run`], but hosting every virtual thread on a worker checked out of
/// `pool` instead of a freshly spawned OS thread. A warm pool makes the
/// attempt loop spawn-free: [`RunStats::os_spawns`] counts the OS threads
/// the run actually created (zero once the pool has grown to the program's
/// peak concurrent vthread count). Execution is byte-identical to [`run`] —
/// a run is a pure function of (program, world, scheduler decisions),
/// independent of which OS thread hosts a vthread.
///
/// The pool is borrowed for the duration of the call; all submitted
/// vthreads have returned their workers before this function returns.
pub fn run_with_pool(
    config: VmConfig,
    resources: ResourceSpec,
    scheduler: &mut dyn Scheduler,
    observer: &mut dyn Observer,
    pool: &crate::pool::VthreadPool,
    root: impl FnOnce(&mut Ctx) + Send + 'static,
) -> RunOutcome {
    run_exec(
        config,
        resources,
        scheduler,
        observer,
        Exec::Pool(pool.handle()),
        root,
    )
}

fn run_exec(
    config: VmConfig,
    resources: ResourceSpec,
    scheduler: &mut dyn Scheduler,
    observer: &mut dyn Observer,
    exec: Exec,
    root: impl FnOnce(&mut Ctx) + Send + 'static,
) -> RunOutcome {
    config.validate().expect("invalid VmConfig");
    install_quiet_hook();
    // Erase the borrow lifetimes so the coordinator state can live inside
    // the hub; see `Coord` for the safety argument (hub-mutex-only access,
    // every virtual thread joined before this frame returns).
    let scheduler: *mut dyn Scheduler =
        unsafe { std::mem::transmute::<&mut dyn Scheduler, *mut dyn Scheduler>(scheduler) };
    let observer: *mut dyn Observer =
        unsafe { std::mem::transmute::<&mut dyn Observer, *mut dyn Observer>(observer) };
    let shared = Arc::new(Shared {
        hub: Mutex::new(Hub {
            slots: Vec::new(),
            poisoned: false,
            coord: Coord {
                scheduler,
                observer,
                state: VmState::new(resources, config.world.clone()),
                clock: VClock::new(),
                stats: RunStats::default(),
                trace: Trace::new(),
                schedule: Vec::new(),
                step: 0,
                known_exited: Vec::new(),
                enabled: Vec::new(),
                blocked: Vec::new(),
                status: None,
                processors: config.processors,
                max_steps: config.max_steps,
                trace_mode: config.trace_mode,
                cost_model: config.cost_model.clone(),
            },
        }),
        done: Condvar::new(),
        exec,
        jobs: Mutex::new(0),
        jobs_done: Condvar::new(),
    });

    // Launch the root thread (checked out of the pool, or spawned).
    {
        let mut hub = shared.hub.lock();
        let root_name: Arc<str> = Arc::from("main");
        hub.slots.push(Slot {
            phase: Phase::Starting,
            result: None,
            fault: None,
            name: root_name.clone(),
            tseq: 0,
            spawn_req: None,
            os_handle: None,
            cv: Arc::new(Condvar::new()),
        });
        hub.coord.known_exited.push(false);
        let (handle, os_spawned) = launch(&shared, ROOT_THREAD, &root_name, Box::new(root));
        hub.slots[0].os_handle = handle;
        if os_spawned {
            hub.coord.stats.os_spawns += 1;
        }
    }

    // Wait for the outcome; the virtual threads coordinate themselves.
    let status = {
        let mut hub = shared.hub.lock();
        while hub.coord.status.is_none() {
            shared.done.wait(&mut hub);
        }
        hub.coord.status.take().expect("status observed above")
    };

    // Shut down: poison parked threads, then wait for every vthread to be
    // gone — by joining OS handles (spawning executor) and by waiting for
    // the outstanding-jobs count to reach zero (pooled executor).
    let handles: Vec<std::thread::JoinHandle<()>> = {
        let mut hub = shared.hub.lock();
        hub.poisoned = true;
        // Every parked thread waits on its own condvar; poison them all.
        for s in hub.slots.iter() {
            s.cv.notify_one();
        }
        hub.slots.iter_mut().filter_map(|s| s.os_handle.take()).collect()
    };
    for h in handles {
        let _ = h.join();
    }
    {
        let mut jobs = shared.jobs.lock();
        while *jobs != 0 {
            shared.jobs_done.wait(&mut jobs);
        }
    }

    // Every virtual thread has exited: the erased scheduler/observer
    // borrows are dead everywhere, and the hub is exclusively ours.
    let mut hub = shared.hub.lock();
    let thread_names: Vec<String> = hub.slots.iter().map(|s| s.name.to_string()).collect();
    let coord = &mut hub.coord;
    let time = TimeReport::from_clock(&coord.clock, coord.processors);
    let (stdout, conn_outputs, files) = {
        let world = coord.state.world();
        (
            world.stdout().to_vec(),
            world.conn_outputs(),
            world.files().clone(),
        )
    };
    RunOutcome {
        status,
        trace: std::mem::replace(&mut coord.trace, Trace::new()),
        time,
        stats: coord.stats,
        schedule: std::mem::take(&mut coord.schedule),
        thread_names,
        stdout,
        conn_outputs,
        files,
    }
}

/// Marks the run's outcome and wakes the [`run`] caller.
fn finish(coord: &mut Coord, shared: &Shared, status: RunStatus) {
    coord.status = Some(status);
    shared.done.notify_one();
}

/// Captures a [`VmSnapshot`] at the current pick boundary. Called with the
/// hub mutex held, immediately after an event was applied: the boundary is
/// `coord.schedule.len()` and every coordinator-owned structure reflects
/// exactly those picks.
fn capture_snapshot(coord: &Coord, slots: &[Slot]) -> crate::snapshot::VmSnapshot {
    use crate::snapshot::{self, Enc, VmSnapshot};
    let mut e = Enc::new();
    e.section(snapshot::SEC_STATS, |e| {
        // `os_spawns` is deliberately excluded: it depends on executor
        // choice and pool warmness (both schedule-invisible), and the
        // snapshot must be byte-identical across them.
        let s = &coord.stats;
        for v in [
            s.total_ops,
            s.mem_accesses,
            s.sync_ops,
            s.syscalls,
            s.func_markers,
            s.bb_markers,
            s.spawns,
        ] {
            e.u64(v);
        }
    });
    e.section(snapshot::SEC_CLOCK, |e| coord.clock.snapshot_into(e));
    e.section(snapshot::SEC_THREADS, |e| {
        e.u64(slots.len() as u64);
        for (i, s) in slots.iter().enumerate() {
            e.str(&s.name);
            e.u64(u64::from(s.tseq));
            e.bool(coord.known_exited.get(i).copied().unwrap_or(false));
        }
    });
    e.section(snapshot::SEC_STATE, |e| coord.state.snapshot_into(e));
    VmSnapshot::from_parts(
        coord.schedule.len() as u64,
        coord.step,
        slots.len() as u32,
        e.finish(),
    )
}

/// Runs scheduling steps while the hub is quiescent (every slot Announced
/// or Exited). Called — with the hub lock already held — by whichever
/// virtual thread completed quiescence, right after its announce or exit.
/// Returns once a grant is outstanding or the run's status is decided.
/// `me` is the calling thread when it announced (a self-grant then skips
/// the wakeup: the caller observes `Granted` on its way out).
fn coordinate(guard: &mut MutexGuard<'_, Hub>, shared: &Arc<Shared>, me: Option<ThreadId>) {
    let hub: &mut Hub = guard;
    let Hub {
        slots,
        poisoned,
        coord,
    } = hub;
    if *poisoned {
        return;
    }
    'steps: loop {
        if coord.status.is_some() {
            return;
        }
        let busy = slots.iter().any(|s| {
            matches!(s.phase, Phase::Starting | Phase::Granted | Phase::Running)
        });
        if busy {
            // Someone else still carries the baton; they will coordinate.
            return;
        }

        // Detect crashes (newly exited with a message). `known_exited`
        // then mirrors `Phase::Exited` for every slot, so enabledness of
        // `Join` is answered without further phase scans.
        let mut crash = None;
        for (i, slot) in slots.iter().enumerate() {
            if let Phase::Exited(exit) = &slot.phase {
                if !coord.known_exited[i] {
                    coord.known_exited[i] = true;
                    if let Some(msg) = exit {
                        crash = Some((ThreadId(i as u32), msg.clone()));
                    }
                }
            }
        }
        if let Some((tid, message)) = crash {
            finish(coord, shared, RunStatus::Failed(Failure::Crash { thread: tid, message }));
            return;
        }

        // Partition the announced ops into enabled / blocked (one op clone
        // per candidate).
        coord.enabled.clear();
        coord.blocked.clear();
        for (i, s) in slots.iter().enumerate() {
            let Phase::Announced(op) = &s.phase else {
                continue;
            };
            let tid = ThreadId(i as u32);
            let ok = match op {
                Op::Join(target) => {
                    coord.known_exited.get(target.index()).copied().unwrap_or(false)
                }
                other => coord.state.enabled(tid, other, coord.step),
            };
            let cand = Candidate {
                tid,
                op: op.clone(),
            };
            if ok {
                coord.enabled.push(cand);
            } else {
                coord.blocked.push(cand);
            }
        }

        if coord.enabled.is_empty() && coord.blocked.is_empty() {
            finish(coord, shared, RunStatus::Completed);
            return;
        }

        if coord.step >= coord.max_steps {
            finish(coord, shared, RunStatus::StepLimit);
            return;
        }

        if coord.enabled.is_empty() {
            // Fast-forward to the next scripted arrival if someone is
            // blocked on accept; otherwise the run is stuck.
            let next_arrival = coord.blocked.iter().find_map(|c| {
                if matches!(c.op, Op::Syscall(SyscallOp::NetAccept)) {
                    match coord.state.world().accept_status(coord.step) {
                        AcceptStatus::WaitUntil(s) => Some(s),
                        _ => None,
                    }
                } else {
                    None
                }
            });
            if let Some(arrival) = next_arrival {
                coord.step = arrival;
                continue 'steps;
            }
            let blocked_threads: Vec<BlockedThread> = coord
                .blocked
                .iter()
                .map(|c| BlockedThread {
                    tid: c.tid,
                    reason: match &c.op {
                        Op::Join(t) => crate::state::BlockReason::Other {
                            what: if coord.known_exited.get(t.index()).copied().unwrap_or(false)
                            {
                                "join"
                            } else {
                                "join-wait"
                            },
                        },
                        op => coord
                            .state
                            .block_reason(c.tid, op, coord.step)
                            .unwrap_or(crate::state::BlockReason::Other { what: "unknown" }),
                    },
                })
                .collect();
            let report = deadlock::analyze(&blocked_threads);
            finish(
                coord,
                shared,
                RunStatus::Failed(Failure::Deadlock {
                    threads: report.threads,
                    locks: report.locks,
                    description: report.description,
                }),
            );
            return;
        }

        // Ask the scheduler.
        let decision = {
            let view = SchedView {
                enabled: &coord.enabled,
                blocked: &coord.blocked,
                step: coord.step,
                processors: coord.processors,
            };
            // SAFETY: see `Coord` — hub mutex held, borrow outlives us.
            unsafe { &mut *coord.scheduler }.pick(&view)
        };
        let tid = match decision {
            Decision::Run(t) => t,
            Decision::Abort(reason) => {
                finish(coord, shared, RunStatus::Aborted(reason));
                return;
            }
        };
        let picked = coord
            .enabled
            .iter()
            .position(|c| c.tid == tid)
            .unwrap_or_else(|| panic!("scheduler picked non-enabled thread {tid}"));
        // Move the op out of the (per-round) candidate buffer: the pick is
        // final, so no second clone is needed.
        let op = coord.enabled.swap_remove(picked).op;
        coord.schedule.push(tid);
        coord.step += 1;

        // Charge the base cost.
        coord.clock.charge(tid, coord.cost_model.op_cost(&op));
        coord.stats.count(&op);

        // Apply. `grant` marks whether the thread receives the event's
        // result and resumes; the result itself is carried by the event and
        // moved (not cloned) into the grant unless the trace retains it.
        let mut fail: Option<Failure> = None;
        let (grant, event_result) = match &op {
            Op::Spawn => {
                let req = slots[tid.index()]
                    .spawn_req
                    .take()
                    .expect("Spawn announced without a spawn request");
                let new_tid = ThreadId(slots.len() as u32);
                slots.push(Slot {
                    phase: Phase::Starting,
                    result: None,
                    fault: None,
                    name: req.name.clone(),
                    tseq: 0,
                    spawn_req: None,
                    os_handle: None,
                    cv: Arc::new(Condvar::new()),
                });
                coord.known_exited.push(false);
                let (handle, os_spawned) = launch(shared, new_tid, &req.name, req.body);
                slots[new_tid.index()].os_handle = handle;
                if os_spawned {
                    coord.stats.os_spawns += 1;
                }
                (true, OpResult::Tid(new_tid))
            }
            Op::Join(_) => (true, OpResult::Unit),
            Op::Fail(msg) => {
                fail = Some(Failure::Assertion {
                    thread: tid,
                    message: msg.clone(),
                });
                (false, OpResult::Unit)
            }
            other => match coord.state.apply(tid, other, coord.clock.now(), coord.step) {
                Applied::Done(res) => (true, res),
                Applied::BlockedRewrite(new_op) => {
                    slots[tid.index()].phase = Phase::Announced(new_op);
                    (false, OpResult::Unit)
                }
                Applied::Fault(msg) => {
                    // Grant with a fault: the thread resumes and panics,
                    // which the crash path picks up.
                    let slot = &mut slots[tid.index()];
                    slot.fault = Some(msg);
                    slot.result = Some(OpResult::Unit);
                    slot.phase = Phase::Granted;
                    if me != Some(tid) {
                        slot.cv.notify_one();
                    }
                    (false, OpResult::Unit)
                }
            },
        };

        // Emit the event. The applied op is moved into it, not cloned; the
        // scheduler and trace borrow it from there.
        let tseq = {
            let slot = &mut slots[tid.index()];
            let t = slot.tseq;
            slot.tseq += 1;
            t
        };
        let event = Event {
            gseq: coord.schedule.len() as u64 - 1,
            tid,
            tseq,
            op,
            result: event_result,
        };
        // SAFETY: see `Coord` — hub mutex held, borrow outlives us.
        let charge = unsafe { &mut *coord.observer }.on_event(&event);
        if charge.thread_cost > 0 {
            coord.clock.charge(tid, charge.thread_cost);
        }
        if charge.serial_cost > 0 {
            coord.clock.charge_serial(tid, charge.serial_cost);
        }
        // SAFETY: see `Coord` — hub mutex held, borrow outlives us.
        unsafe { &mut *coord.scheduler }.on_applied(tid, &event.op);
        // Epoch-boundary checkpoint: asked after every applied event,
        // captured while the hub is still exclusively ours — state, clock,
        // and schedule reflect exactly the picks made so far, so the
        // snapshot's boundary is simply the pick count.
        // SAFETY: see `Coord` — hub mutex held, borrow outlives us.
        if unsafe { &mut *coord.observer }.checkpoint_due() {
            let snap = capture_snapshot(coord, slots);
            // SAFETY: see `Coord` — hub mutex held, borrow outlives us.
            unsafe { &mut *coord.observer }.on_checkpoint(&snap);
        }
        // Only a retained trace forces the grant result to be cloned; in
        // Off/Feedback modes it is moved out of the event.
        let granted = if coord.trace_mode == TraceMode::Full {
            let res = grant.then(|| event.result.clone());
            coord.trace.push(event);
            res
        } else {
            grant.then_some(event.result)
        };

        if let Some(f) = fail {
            finish(coord, shared, RunStatus::Failed(f));
            return;
        }

        // Grant the thread its result (unless it stays blocked/faulted).
        // A grant to the calling thread needs no wakeup at all — it reads
        // `Granted` immediately after this function returns.
        if let Some(res) = granted {
            let slot = &mut slots[tid.index()];
            slot.result = Some(res);
            slot.phase = Phase::Granted;
            if me != Some(tid) {
                slot.cv.notify_one();
            }
            return;
        }
        // Blocked rewrite or fault: the hub may still be quiescent, so the
        // baton stays with us — loop for the next step.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{RandomScheduler, RoundRobinScheduler, ScriptedScheduler};
    use crate::sys::Session;
    use crate::trace::NullObserver;

    fn quick_config() -> VmConfig {
        VmConfig {
            trace_mode: TraceMode::Full,
            ..VmConfig::default()
        }
    }

    #[test]
    fn single_thread_program_completes() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| {
                ctx.write(x, 41);
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            },
        );
        assert_eq!(out.status, RunStatus::Completed);
        assert!(out.stats.mem_accesses == 3);
        // start, 3 accesses, exit
        assert_eq!(out.stats.total_ops, 5);
    }

    #[test]
    fn spawn_join_and_shared_counter() {
        let mut spec = ResourceSpec::new();
        let counter = spec.var("counter", 0);
        let out = run(
            quick_config(),
            spec,
            &mut RandomScheduler::new(1),
            &mut NullObserver,
            move |ctx| {
                let kids: Vec<ThreadId> = (0..4)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for _ in 0..10 {
                                ctx.fetch_add(counter, 1);
                            }
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
                let total = ctx.read(counter);
                ctx.check(total == 40, "lost updates");
            },
        );
        assert_eq!(out.status, RunStatus::Completed);
        assert_eq!(out.stats.spawns, 4);
        assert_eq!(out.stats.os_spawns, 5, "root + 4 children, all spawned");
    }

    /// One parameterized program used by the pooled-executor tests: spawns
    /// workers, races a counter, joins, prints — exercising every launch
    /// path a program can take.
    fn pooled_probe(seed: u64) -> (ResourceSpec, impl FnOnce(&mut Ctx) + Send + 'static) {
        let mut spec = ResourceSpec::new();
        let counter = spec.var("counter", 0);
        let _ = seed;
        let body = move |ctx: &mut Ctx| {
            let kids: Vec<ThreadId> = (0..3)
                .map(|i| {
                    ctx.spawn(&format!("w{i}"), move |ctx| {
                        let v = ctx.read(counter);
                        ctx.write(counter, v + 1);
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
            let total = ctx.read(counter);
            ctx.println(&format!("total={total}"));
        };
        (spec, body)
    }

    #[test]
    fn pooled_runs_match_spawning_runs_and_reuse_workers() {
        let pool = crate::pool::VthreadPool::new(4);
        for seed in 0..8 {
            let (spec_p, body_p) = pooled_probe(seed);
            let pooled = run_with_pool(
                quick_config(),
                spec_p,
                &mut RandomScheduler::new(seed),
                &mut NullObserver,
                &pool,
                body_p,
            );
            let (spec_s, body_s) = pooled_probe(seed);
            let fresh = run(
                quick_config(),
                spec_s,
                &mut RandomScheduler::new(seed),
                &mut NullObserver,
                body_s,
            );
            assert_eq!(pooled.status, fresh.status, "seed {seed}");
            assert_eq!(pooled.schedule, fresh.schedule, "seed {seed}");
            assert_eq!(pooled.stdout, fresh.stdout, "seed {seed}");
            assert_eq!(pooled.stats.spawns, fresh.stats.spawns, "seed {seed}");
            // The one intended difference: OS-thread creation.
            assert_eq!(fresh.stats.os_spawns, fresh.stats.spawns + 1);
            if seed > 0 {
                assert_eq!(pooled.stats.os_spawns, 0, "warm attempt spawned (seed {seed})");
            }
        }
        // The pool warmed to the peak concurrent vthread count and stayed.
        assert!(pool.spawned_workers() <= 4, "pool overgrew");
        assert!(pool.take_escaped_panics().is_empty());
    }

    #[test]
    fn pooled_worker_survives_a_panicking_vthread_body() {
        let pool = crate::pool::VthreadPool::new(1);
        for attempt in 0..10 {
            let out = run_with_pool(
                quick_config(),
                ResourceSpec::new(),
                &mut RoundRobinScheduler::new(),
                &mut NullObserver,
                &pool,
                |_ctx| panic!("deliberate bug body"),
            );
            match out.status {
                RunStatus::Failed(Failure::Crash { message, .. }) => {
                    assert_eq!(message, "deliberate bug body", "attempt {attempt}");
                }
                other => panic!("attempt {attempt}: expected crash, got {other}"),
            }
        }
        // The VM contained every panic (Failure::Crash), so nothing escaped
        // to the worker boundary — and one worker served all ten attempts.
        assert_eq!(pool.spawned_workers(), 1);
        assert!(pool.take_escaped_panics().is_empty());
    }

    #[test]
    fn racy_read_write_counter_loses_updates_under_some_seed() {
        // The classic non-atomic increment: read, compute, write. Some seed
        // must interleave two threads inside the window.
        let lost_updates = |seed: u64| -> bool {
            let mut spec = ResourceSpec::new();
            let counter = spec.var("counter", 0);
            let out = run(
                VmConfig::default(),
                spec,
                &mut RandomScheduler::with_mean_slice(seed, 2),
                &mut NullObserver,
                move |ctx| {
                    let kids: Vec<ThreadId> = (0..2)
                        .map(|i| {
                            ctx.spawn(&format!("w{i}"), move |ctx| {
                                for _ in 0..20 {
                                    let v = ctx.read(counter);
                                    ctx.write(counter, v + 1);
                                }
                            })
                        })
                        .collect();
                    for k in kids {
                        ctx.join(k);
                    }
                    let total = ctx.read(counter);
                    ctx.check(total == 40, "lost update");
                },
            );
            out.status.is_failed()
        };
        let failures = (0..20).filter(|s| lost_updates(*s)).count();
        assert!(failures > 0, "no seed lost an update");
    }

    #[test]
    fn deadlock_is_detected_with_cycle() {
        let mut spec = ResourceSpec::new();
        let a = spec.lock("a");
        let b = spec.lock("b");
        // Force the ABBA interleaving with a scripted acquire order via
        // channel handshake.
        let ch = spec.chan("ready");
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| {
                let t1 = ctx.spawn("t1", move |ctx| {
                    ctx.lock(a);
                    ctx.send(ch, 1);
                    ctx.lock(b); // will deadlock
                    ctx.unlock(b);
                    ctx.unlock(a);
                });
                let t2 = ctx.spawn("t2", move |ctx| {
                    ctx.lock(b);
                    ctx.recv(ch);
                    ctx.lock(a); // will deadlock
                    ctx.unlock(a);
                    ctx.unlock(b);
                });
                ctx.join(t1);
                ctx.join(t2);
            },
        );
        match out.status {
            RunStatus::Failed(Failure::Deadlock { locks, .. }) => {
                assert!(locks.contains(&a) && locks.contains(&b));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn assertion_failure_surfaces_with_message() {
        let spec = ResourceSpec::new();
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            |ctx| {
                ctx.check(1 + 1 == 3, "math is broken");
            },
        );
        match out.status {
            RunStatus::Failed(Failure::Assertion { message, .. }) => {
                assert_eq!(message, "math is broken");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn panic_in_thread_is_a_crash() {
        let spec = ResourceSpec::new();
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            |ctx| {
                ctx.compute(1);
                panic!("segfault simulated");
            },
        );
        match out.status {
            RunStatus::Failed(Failure::Crash { message, .. }) => {
                assert!(message.contains("segfault"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn lock_misuse_is_a_crash_not_a_hang() {
        let mut spec = ResourceSpec::new();
        let l = spec.lock("m");
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| {
                ctx.unlock(l);
            },
        );
        match out.status {
            RunStatus::Failed(Failure::Crash { message, .. }) => {
                assert!(message.contains("does not hold"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn producer_consumer_with_condvar() {
        let mut spec = ResourceSpec::new();
        let l = spec.lock("m");
        let cv = spec.cond("cv");
        let q = spec.var("queued", 0);
        let consumed = spec.var("consumed", 0);
        let out = run(
            quick_config(),
            spec,
            &mut RandomScheduler::new(5),
            &mut NullObserver,
            move |ctx| {
                let cons = ctx.spawn("consumer", move |ctx| {
                    for _ in 0..5 {
                        ctx.lock(l);
                        while ctx.read(q) == 0 {
                            ctx.cond_wait(cv, l);
                        }
                        let n = ctx.read(q);
                        ctx.write(q, n - 1);
                        ctx.fetch_add(consumed, 1);
                        ctx.unlock(l);
                    }
                });
                for _ in 0..5 {
                    ctx.lock(l);
                    let n = ctx.read(q);
                    ctx.write(q, n + 1);
                    ctx.notify_one(cv);
                    ctx.unlock(l);
                }
                ctx.join(cons);
                let total = ctx.read(consumed);
                ctx.check(total == 5, "consumer missed items");
            },
        );
        assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let mut spec = ResourceSpec::new();
        let bar = spec.barrier("b", 3);
        let phase_sum = spec.var("sum", 0);
        let out = run(
            quick_config(),
            spec,
            &mut RandomScheduler::new(9),
            &mut NullObserver,
            move |ctx| {
                let kids: Vec<ThreadId> = (0..3)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            ctx.fetch_add(phase_sum, 1);
                            ctx.barrier_wait(bar);
                            // After the barrier every thread must see all 3
                            // phase-1 increments.
                            let s = ctx.read(phase_sum);
                            ctx.check(s >= 3, "barrier let a thread through early");
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
            },
        );
        assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
    }

    #[test]
    fn server_accepts_scripted_sessions_and_responds() {
        let mut spec = ResourceSpec::new();
        let served = spec.var("served", 0);
        let mut config = quick_config();
        config.world = WorldConfig::default()
            .with_session(Session::new(0, b"GET /a".to_vec()))
            .with_session(Session::new(10, b"GET /b".to_vec()));
        let out = run(
            config,
            spec,
            &mut RandomScheduler::new(2),
            &mut NullObserver,
            move |ctx| {
                while let Some(conn) = ctx.sys_accept() {
                    let req = ctx.sys_recv(conn, 64).unwrap_or_default();
                    ctx.sys_send(conn, b"200 ");
                    ctx.sys_send(conn, &req);
                    ctx.sys_net_close(conn);
                    ctx.fetch_add(served, 1);
                }
                let n = ctx.read(served);
                ctx.check(n == 2, "not all sessions served");
            },
        );
        assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
        assert_eq!(out.conn_outputs[0], b"200 GET /a".to_vec());
        assert_eq!(out.conn_outputs[1], b"200 GET /b".to_vec());
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run_once = |seed: u64| -> (Vec<ThreadId>, u64) {
            let mut spec = ResourceSpec::new();
            let x = spec.var("x", 0);
            let out = run(
                quick_config(),
                spec,
                &mut RandomScheduler::new(seed),
                &mut NullObserver,
                move |ctx| {
                    let kids: Vec<ThreadId> = (0..3)
                        .map(|i| {
                            ctx.spawn(&format!("w{i}"), move |ctx| {
                                for _ in 0..15 {
                                    let v = ctx.read(x);
                                    ctx.write(x, v + 1);
                                }
                            })
                        })
                        .collect();
                    for k in kids {
                        ctx.join(k);
                    }
                },
            );
            let final_x = out
                .trace
                .events()
                .iter()
                .rev()
                .find_map(|e| match e.op {
                    Op::Write(_, v) => Some(v),
                    _ => None,
                })
                .unwrap_or_default();
            (out.schedule, final_x)
        };
        let (s1, x1) = run_once(77);
        let (s2, x2) = run_once(77);
        assert_eq!(s1, s2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn scripted_replay_of_a_recorded_schedule_is_identical() {
        let program = |ctx: &mut Ctx, x: VarId| {
            let kids: Vec<ThreadId> = (0..3)
                .map(|i| {
                    ctx.spawn(&format!("w{i}"), move |ctx| {
                        for _ in 0..10 {
                            let v = ctx.read(x);
                            ctx.compute(3);
                            ctx.write(x, v + 1);
                        }
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        };
        let mut spec1 = ResourceSpec::new();
        let x1 = spec1.var("x", 0);
        let first = run(
            quick_config(),
            spec1,
            &mut RandomScheduler::new(123),
            &mut NullObserver,
            move |ctx| program(ctx, x1),
        );
        let mut spec2 = ResourceSpec::new();
        let x2 = spec2.var("x", 0);
        let mut scripted = ScriptedScheduler::new(first.schedule.clone());
        let second = run(
            quick_config(),
            spec2,
            &mut scripted,
            &mut NullObserver,
            move |ctx| program(ctx, x2),
        );
        assert_eq!(second.status, RunStatus::Completed);
        assert_eq!(first.schedule, second.schedule);
        assert_eq!(first.trace.len(), second.trace.len());
        for (a, b) in first.trace.events().iter().zip(second.trace.events()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn step_limit_stops_runaway_programs() {
        let mut spec = ResourceSpec::new();
        let x = spec.var("x", 0);
        let mut config = quick_config();
        config.max_steps = 500;
        let out = run(
            config,
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            move |ctx| loop {
                ctx.fetch_add(x, 1);
            },
        );
        assert_eq!(out.status, RunStatus::StepLimit);
        assert!(out.stats.total_ops <= 501);
    }

    #[test]
    fn stdout_and_files_are_captured() {
        let spec = ResourceSpec::new();
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            |ctx| {
                ctx.println("hello");
                let fd = ctx.sys_open("data.log");
                ctx.sys_write(fd, b"abc");
                ctx.sys_close(fd);
            },
        );
        assert_eq!(out.stdout, b"hello\n");
        assert_eq!(out.files.get("data.log").unwrap(), &b"abc".to_vec());
    }

    #[test]
    fn virtual_time_reflects_compute_costs() {
        let spec = ResourceSpec::new();
        let out = run(
            quick_config(),
            spec,
            &mut RoundRobinScheduler::new(),
            &mut NullObserver,
            |ctx| {
                ctx.compute(10_000);
            },
        );
        assert!(out.time.work >= 10_000);
        assert!(out.time.span >= 10_000);
    }
}
