//! # pres-tvm — a deterministic multithreaded virtual machine
//!
//! The execution substrate for the PRES reproduction (SOSP 2009,
//! "PRES: probabilistic replay with execution sketching on
//! multiprocessors"). The original system instruments native binaries with
//! Pin; this crate provides the equivalent capability as a library: programs
//! are written against an instrumented API ([`vm::Ctx`]) in which **every**
//! interaction with shared state — memory accesses, synchronization, system
//! calls, and the pure markers used by sketching — is an explicit,
//! schedulable, recordable event.
//!
//! Key properties:
//!
//! * **Determinism.** A run is a pure function of (program, world
//!   configuration, scheduler decisions). Identical seeds produce identical
//!   traces; a recorded pick sequence replays exactly.
//! * **All nondeterminism is capturable.** Interleaving nondeterminism is
//!   the scheduler's pick sequence; input nondeterminism flows through
//!   simulated system calls whose results are part of every sketch.
//! * **Virtual time.** A cost model ([`cost::CostModel`]) and clock
//!   ([`clock::VClock`]) estimate the makespan on a `P`-processor machine,
//!   including the serialization penalty of total-order recording — the
//!   quantity behind the paper's overhead and scalability results.
//!
//! ## Quick example
//!
//! ```
//! use pres_tvm::prelude::*;
//!
//! let mut spec = ResourceSpec::new();
//! let counter = spec.var("counter", 0);
//! let out = pres_tvm::vm::run(
//!     VmConfig::default(),
//!     spec,
//!     &mut RandomScheduler::new(42),
//!     &mut NullObserver,
//!     move |ctx| {
//!         let worker = ctx.spawn("worker", move |ctx| {
//!             ctx.fetch_add(counter, 1);
//!         });
//!         ctx.fetch_add(counter, 1);
//!         ctx.join(worker);
//!         let total = ctx.read(counter);
//!         ctx.check(total == 2, "atomic increments cannot be lost");
//!     },
//! );
//! assert_eq!(out.status, RunStatus::Completed);
//! ```

pub mod clock;
pub mod cost;
pub mod deadlock;
pub mod error;
pub mod ids;
pub mod op;
pub mod pool;
pub mod rng;
pub mod sched;
pub mod snapshot;
pub mod state;
pub mod sync;
pub mod sys;
pub mod trace;
pub mod vm;

/// Convenient glob import for application and test code.
pub mod prelude {
    pub use crate::clock::TimeReport;
    pub use crate::cost::CostModel;
    pub use crate::error::{Failure, RunStatus};
    pub use crate::ids::{
        BarrierId, BbId, BufId, ChanId, CondId, ConnId, FdId, FuncId, LockId, RwLockId, SemId,
        ThreadId, VarId, ROOT_THREAD,
    };
    pub use crate::op::{BufOp, MemLoc, Op, OpResult, SyscallOp};
    pub use crate::pool::VthreadPool;
    pub use crate::sched::{
        Candidate, Decision, RandomScheduler, RoundRobinScheduler, SchedView, Scheduler,
        ScriptedScheduler,
    };
    pub use crate::snapshot::VmSnapshot;
    pub use crate::state::ResourceSpec;
    pub use crate::sys::{Session, WorldConfig};
    pub use crate::trace::{Event, NullObserver, Observer, ObserverCharge, Trace, TraceMode};
    pub use crate::vm::{run, run_with_pool, Ctx, RunOutcome, RunStats, VmConfig};
}
