//! Run outcomes, failures, and VM configuration errors.

use crate::ids::{LockId, ThreadId};
use std::fmt;

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Every thread exited normally.
    Completed,
    /// The run failed — a concurrency bug (or injected fault) manifested.
    Failed(Failure),
    /// A replay scheduler aborted the run (sketch divergence, constraint
    /// conflict, or an explicit stop). Carries the scheduler's reason.
    Aborted(String),
    /// The configured step budget was exhausted (livelock guard).
    StepLimit,
}

impl RunStatus {
    /// Whether the run ended in an application failure.
    pub fn is_failed(&self) -> bool {
        matches!(self, RunStatus::Failed(_))
    }

    /// The failure, if any.
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            RunStatus::Failed(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Completed => f.write_str("completed"),
            RunStatus::Failed(fail) => write!(f, "failed: {fail}"),
            RunStatus::Aborted(why) => write!(f, "aborted: {why}"),
            RunStatus::StepLimit => f.write_str("step limit exhausted"),
        }
    }
}

/// An observable manifestation of a bug — the three classes the paper's
/// bug suite covers (crashes/assertion failures from atomicity and order
/// violations, and deadlocks) plus wrong-output detection, which the
/// diagnosis-time oracle checks after completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// An application assertion fired (`ctx.check(..)` / `ctx.fail(..)`).
    Assertion {
        /// Thread that detected the violation.
        thread: ThreadId,
        /// Application-supplied message identifying the failure site.
        message: String,
    },
    /// A virtual thread panicked (the analogue of a production crash).
    Crash {
        /// Thread that crashed.
        thread: ThreadId,
        /// Panic payload rendered to a string.
        message: String,
    },
    /// No runnable thread remains and at least one thread is blocked.
    Deadlock {
        /// The threads involved in the wait cycle (or the full blocked set
        /// when no simple cycle exists, e.g. a lost notify).
        threads: Vec<ThreadId>,
        /// The locks appearing in the cycle, for reports.
        locks: Vec<LockId>,
        /// Human-readable description of the wait-for structure.
        description: String,
    },
}

impl Failure {
    /// A short stable signature for failure matching during replay: two
    /// manifestations are "the same bug" if their signatures agree.
    ///
    /// Deadlock signatures deliberately ignore the thread *set*: different
    /// interleavings of the same lock-order bug can trap different worker
    /// threads, and the paper counts any deadlock on the same locks as a
    /// successful reproduction.
    pub fn signature(&self) -> String {
        match self {
            Failure::Assertion { message, .. } => format!("assert:{message}"),
            Failure::Crash { message, .. } => format!("crash:{message}"),
            Failure::Deadlock { locks, .. } => {
                let mut ids: Vec<u32> = locks.iter().map(|l| l.0).collect();
                ids.sort_unstable();
                ids.dedup();
                format!(
                    "deadlock:{}",
                    ids.iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            }
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Assertion { thread, message } => {
                write!(f, "assertion on {thread}: {message}")
            }
            Failure::Crash { thread, message } => write!(f, "crash on {thread}: {message}"),
            Failure::Deadlock { description, .. } => write!(f, "deadlock: {description}"),
        }
    }
}

/// Errors raised when constructing or configuring a VM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A configuration field was out of range.
    InvalidConfig(String),
    /// A panic escaped a vthread body past the VM's own containment and was
    /// caught at the executor-pool worker boundary. The worker survives and
    /// returns to the pool; the panic is reported through
    /// [`crate::pool::VthreadPool::take_escaped_panics`].
    ThreadPanic {
        /// The vthread whose body panicked.
        tid: ThreadId,
        /// Panic payload rendered to a string.
        msg: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::InvalidConfig(msg) => write!(f, "invalid VM configuration: {msg}"),
            VmError::ThreadPanic { tid, msg } => {
                write!(f, "panic escaped vthread {tid}: {msg}")
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assertion_signatures_depend_on_message_only() {
        let a = Failure::Assertion {
            thread: ThreadId(1),
            message: "log corrupted".into(),
        };
        let b = Failure::Assertion {
            thread: ThreadId(5),
            message: "log corrupted".into(),
        };
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn deadlock_signatures_ignore_thread_identity_and_lock_order() {
        let a = Failure::Deadlock {
            threads: vec![ThreadId(1), ThreadId(2)],
            locks: vec![LockId(3), LockId(1)],
            description: "t1->m1->t2->m3->t1".into(),
        };
        let b = Failure::Deadlock {
            threads: vec![ThreadId(4), ThreadId(9)],
            locks: vec![LockId(1), LockId(3), LockId(3)],
            description: "t4->m3->t9->m1->t4".into(),
        };
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature(), "deadlock:1,3");
    }

    #[test]
    fn different_failures_have_different_signatures() {
        let a = Failure::Assertion {
            thread: ThreadId(0),
            message: "x".into(),
        };
        let c = Failure::Crash {
            thread: ThreadId(0),
            message: "x".into(),
        };
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn status_helpers() {
        let s = RunStatus::Failed(Failure::Crash {
            thread: ThreadId(0),
            message: "boom".into(),
        });
        assert!(s.is_failed());
        assert!(s.failure().is_some());
        assert!(!RunStatus::Completed.is_failed());
        assert!(RunStatus::Completed.failure().is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(RunStatus::Completed.to_string(), "completed");
        let s = RunStatus::Aborted("divergence at gseq 42".into());
        assert_eq!(s.to_string(), "aborted: divergence at gseq 42");
    }
}
