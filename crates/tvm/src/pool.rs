//! A reusable executor pool for virtual threads.
//!
//! Every [`crate::vm::run`] hosts each virtual thread on its own OS thread,
//! created with `thread::Builder::spawn` and destroyed by `join` when the
//! run ends. That is the right default for one-shot runs, but the
//! reproduction loop executes the *same program* hundreds of times per
//! `reproduce()` call, paying OS thread creation and teardown for every
//! vthread of every attempt. [`VthreadPool`] removes that churn: a set of
//! parked OS workers is checked out per VM run (via
//! [`crate::vm::run_with_pool`]), each worker executes one vthread body
//! handed to it through a per-worker handoff slot, and **returns to the
//! pool at vthread exit** instead of being joined and destroyed. Steady
//! state — attempt after attempt over the same program — performs zero
//! thread spawns ([`crate::vm::RunStats::os_spawns`] stays at 0).
//!
//! ## Checkout / reset / return protocol
//!
//! * **Checkout.** `execute(tid, job)` pops the most recently parked idle
//!   worker (LIFO, cache-warm) and deposits the job in its handoff slot.
//!   Only when no worker is idle does the pool grow by spawning one — so a
//!   pool warms up to the peak concurrent vthread count of the programs it
//!   hosts and then stops growing.
//! * **Reset.** Workers carry *no* per-run state: every piece of vthread
//!   state (slot phase, scheduler clocks, result channels, poisoning) lives
//!   in the VM's per-run `Shared` structure, which the job closure captures
//!   and which dies with the run. A run is a pure function of (program,
//!   world, scheduler decisions) — never of which OS thread hosts a vthread
//!   — so reuse cannot perturb schedules or sketches; `tests/pool_reuse.rs`
//!   pins this byte-for-byte.
//! * **Return.** The worker re-registers itself idle after the job body
//!   finishes, whether it returned or panicked.
//!
//! ## Panic containment
//!
//! The VM converts vthread-body panics to [`crate::error::Failure::Crash`]
//! inside the run; a panic that *escapes* that containment (or the run
//! accounting around it) is caught here at the worker boundary, converted
//! to [`VmError::ThreadPanic`], and parked in the pool for retrieval via
//! [`VthreadPool::take_escaped_panics`] — the worker itself survives and
//! serves the next attempt. Workers are named `vt-pool-N`, so the VM's
//! quiet panic hook keeps expected shutdown unwinds silent on them.

use crate::error::VmError;
use crate::ids::ThreadId;
use crate::sync::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of work: one virtual thread's entire lifetime.
struct Job {
    /// The vthread id, for panic attribution.
    tid: ThreadId,
    /// The body; captures the run's `Shared` state.
    run: Box<dyn FnOnce() + Send>,
    /// Completion hook, called unconditionally (body return *or* panic)
    /// **after** the worker has re-parked. Ordering matters: the submitter
    /// learns of completion only once the worker is already checkable-out
    /// again, so a warm steady state never races a re-park into a spurious
    /// spawn.
    done: Box<dyn FnOnce() + Send>,
}

/// What a parked worker finds in its handoff slot when woken.
enum Handoff {
    /// Execute this vthread, then return to the pool.
    Run(Job),
    /// The pool is shutting down; exit the worker thread.
    Exit,
}

/// The per-worker handoff slot: a one-deep mailbox the worker parks on.
struct WorkerSlot {
    mailbox: Mutex<Option<Handoff>>,
    wake: Condvar,
}

impl WorkerSlot {
    fn deliver(&self, handoff: Handoff) {
        {
            let mut mailbox = self.mailbox.lock();
            debug_assert!(mailbox.is_none(), "worker slot already occupied");
            *mailbox = Some(handoff);
        }
        // Signal after releasing the lock so the woken worker does not
        // immediately block on the mailbox mutex we still hold.
        self.wake.notify_one();
    }

    fn receive(&self) -> Handoff {
        let mut mailbox = self.mailbox.lock();
        loop {
            if let Some(handoff) = mailbox.take() {
                return handoff;
            }
            self.wake.wait(&mut mailbox);
        }
    }
}

struct PoolState {
    /// Parked workers, most recently parked last (LIFO checkout).
    idle: Vec<Arc<WorkerSlot>>,
    /// Join handles of every worker ever spawned, for the drop-time join.
    handles: Vec<JoinHandle<()>>,
    /// Total OS workers created over the pool's lifetime.
    spawned: u64,
    /// Panics that escaped a vthread body past the VM's containment.
    escaped: Vec<VmError>,
    /// Set by `Drop`: workers finishing a job exit instead of re-parking.
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    width: usize,
}

/// A reusable set of parked OS workers hosting virtual threads.
///
/// Create one per exploration worker (or one per recording session), pass
/// it to [`crate::vm::run_with_pool`] run after run, and drop it when the
/// exploration ends — dropping parks-out and joins every worker. The pool
/// is lazy: `new` spawns nothing, workers are created on first demand and
/// retained for reuse.
pub struct VthreadPool {
    inner: Arc<PoolInner>,
}

/// The cloneable submission handle the VM stores for the duration of a
/// pooled run. Crate-internal: external code holds [`VthreadPool`] and the
/// borrow in `run_with_pool(&pool, ..)` guarantees the pool outlives every
/// run submitted through it.
#[derive(Clone)]
pub(crate) struct PoolHandle {
    inner: Arc<PoolInner>,
}

impl VthreadPool {
    /// A new, empty pool. `width` is the *sizing hint* used by capacity
    /// validation (e.g. `ExploreConfig::validate` clamps
    /// `workers × pool_width` against the host); the pool itself grows on
    /// demand past the hint if a program runs more concurrent vthreads,
    /// and retains every worker for reuse.
    pub fn new(width: usize) -> Self {
        VthreadPool {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    idle: Vec::new(),
                    handles: Vec::new(),
                    spawned: 0,
                    escaped: Vec::new(),
                    shutdown: false,
                }),
                width: width.max(1),
            }),
        }
    }

    /// The sizing hint this pool was created with.
    pub fn width(&self) -> usize {
        self.inner.width
    }

    /// Total OS workers created over the pool's lifetime. Constant once the
    /// pool has warmed up to the peak concurrent vthread count.
    pub fn spawned_workers(&self) -> u64 {
        self.inner.state.lock().spawned
    }

    /// Workers currently parked awaiting a handoff.
    pub fn idle_workers(&self) -> usize {
        self.inner.state.lock().idle.len()
    }

    /// Drains the panics that escaped vthread bodies past the VM's own
    /// containment and were caught at the worker boundary. Empty in every
    /// healthy run — the VM converts body panics to `Failure::Crash` before
    /// they reach the worker.
    pub fn take_escaped_panics(&self) -> Vec<VmError> {
        std::mem::take(&mut self.inner.state.lock().escaped)
    }

    pub(crate) fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: self.inner.clone(),
        }
    }
}

impl PoolHandle {
    /// Hands `run` to an idle worker, spawning a new one only when none is
    /// parked. `done` fires after the body finished (or panicked) *and* the
    /// worker re-parked. Returns `true` iff an OS thread was created.
    pub(crate) fn execute(
        &self,
        tid: ThreadId,
        run: Box<dyn FnOnce() + Send>,
        done: Box<dyn FnOnce() + Send>,
    ) -> bool {
        let job = Job { tid, run, done };
        let idle = self.inner.state.lock().idle.pop();
        match idle {
            Some(slot) => {
                slot.deliver(Handoff::Run(job));
                false
            }
            None => {
                spawn_worker(&self.inner, job);
                true
            }
        }
    }
}

fn spawn_worker(inner: &Arc<PoolInner>, job: Job) {
    let slot = Arc::new(WorkerSlot {
        mailbox: Mutex::new(Some(Handoff::Run(job))),
        wake: Condvar::new(),
    });
    let mut state = inner.state.lock();
    state.spawned += 1;
    let worker_inner = inner.clone();
    let worker_slot = slot.clone();
    let handle = std::thread::Builder::new()
        .name(format!("vt-pool-{}", state.spawned))
        .spawn(move || worker_main(&worker_inner, &worker_slot))
        .expect("failed to spawn pool worker");
    state.handles.push(handle);
}

fn worker_main(inner: &Arc<PoolInner>, slot: &Arc<WorkerSlot>) {
    loop {
        match slot.receive() {
            Handoff::Exit => return,
            Handoff::Run(job) => {
                let Job { tid, run, done } = job;
                let result = catch_unwind(AssertUnwindSafe(run));
                let exiting = {
                    let mut state = inner.state.lock();
                    if let Err(payload) = result {
                        state.escaped.push(VmError::ThreadPanic {
                            tid,
                            msg: panic_message(payload.as_ref()),
                        });
                    }
                    if state.shutdown {
                        true
                    } else {
                        // Return to the pool for the next checkout. The
                        // worker keeps no other state: everything per-run
                        // lived in the job.
                        state.idle.push(slot.clone());
                        false
                    }
                };
                // Signal completion only now, with the worker already
                // re-parked: whoever learns the vthread is gone can check
                // this worker out immediately.
                done();
                if exiting {
                    return;
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

impl Drop for VthreadPool {
    /// Parks-out the pool: every idle worker receives `Exit` and is joined.
    /// `run_with_pool` borrows the pool for the run's duration and its
    /// completion hook fires only after the worker re-parked, so by drop
    /// time every worker of a completed run is idle; the `shutdown` flag
    /// covers any worker still finishing a job (it exits instead of
    /// re-parking, and its join below completes).
    fn drop(&mut self) {
        let (idle, handles) = {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
            (
                std::mem::take(&mut state.idle),
                std::mem::take(&mut state.handles),
            )
        };
        for slot in idle {
            slot.deliver(Handoff::Exit);
        }
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    /// Submits a job and waits for its completion hook — which, by the
    /// pool's ordering guarantee, fires only after the worker re-parked.
    fn run_blocking(pool: &VthreadPool, tid: ThreadId, f: impl FnOnce() + Send + 'static) -> bool {
        let (tx, rx) = mpsc::channel();
        let spawned = pool
            .handle()
            .execute(tid, Box::new(f), Box::new(move || tx.send(()).unwrap()));
        rx.recv().unwrap();
        spawned
    }

    #[test]
    fn workers_are_reused_across_jobs() {
        let pool = VthreadPool::new(1);
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let hits = hits.clone();
            let spawned = run_blocking(&pool, ThreadId(0), move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(spawned, i == 0, "only the first job may spawn");
            assert_eq!(pool.idle_workers(), 1, "worker parked before done fired");
        }
        assert_eq!(hits.load(Ordering::SeqCst), 20);
        assert_eq!(pool.spawned_workers(), 1);
    }

    #[test]
    fn pool_grows_to_peak_concurrency_then_stops() {
        let pool = VthreadPool::new(2);
        for round in 0..3 {
            // Two jobs that must be concurrent: each waits for the other.
            let (tx_a, rx_a) = mpsc::channel::<()>();
            let (tx_b, rx_b) = mpsc::channel::<()>();
            let (done_tx, done_rx) = mpsc::channel::<()>();
            let done_tx2 = done_tx.clone();
            pool.handle().execute(
                ThreadId(0),
                Box::new(move || {
                    tx_a.send(()).unwrap();
                    rx_b.recv().unwrap();
                }),
                Box::new(move || done_tx.send(()).unwrap()),
            );
            pool.handle().execute(
                ThreadId(1),
                Box::new(move || {
                    rx_a.recv().unwrap();
                    tx_b.send(()).unwrap();
                }),
                Box::new(move || done_tx2.send(()).unwrap()),
            );
            done_rx.recv().unwrap();
            done_rx.recv().unwrap();
            assert_eq!(pool.spawned_workers(), 2, "round {round} grew the pool");
            assert_eq!(pool.idle_workers(), 2, "round {round} left workers out");
        }
    }

    #[test]
    fn escaped_panics_are_contained_and_the_worker_survives() {
        // Workers are `vt-`-named, so the VM's quiet hook keeps the
        // deliberate panics below off stderr.
        crate::vm::install_quiet_hook();
        let pool = VthreadPool::new(1);
        for _ in 0..3 {
            let (tx, rx) = mpsc::channel::<()>();
            pool.handle().execute(
                ThreadId(7),
                Box::new(move || panic!("boom outside the vm")),
                Box::new(move || tx.send(()).unwrap()),
            );
            // The done hook fires despite the panic, after re-park.
            rx.recv().unwrap();
        }
        // The panicking worker kept serving; the panics were recorded.
        assert_eq!(pool.spawned_workers(), 1);
        assert_eq!(pool.idle_workers(), 1);
        let escaped = pool.take_escaped_panics();
        assert_eq!(escaped.len(), 3);
        for err in &escaped {
            assert_eq!(
                err,
                &VmError::ThreadPanic {
                    tid: ThreadId(7),
                    msg: "boom outside the vm".to_string(),
                }
            );
        }
        assert!(pool.take_escaped_panics().is_empty(), "drained");
    }

    #[test]
    fn width_is_a_hint_not_a_cap() {
        let pool = VthreadPool::new(1);
        assert_eq!(pool.width(), 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let done_tx2 = done_tx.clone();
        pool.handle().execute(
            ThreadId(0),
            Box::new(move || block_rx.recv().unwrap()),
            Box::new(move || done_tx.send(()).unwrap()),
        );
        // Second concurrent job: the width-1 pool must grow, not deadlock.
        pool.handle().execute(
            ThreadId(1),
            Box::new(|| {}),
            Box::new(move || done_tx2.send(()).unwrap()),
        );
        done_rx.recv().unwrap();
        block_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        assert_eq!(pool.spawned_workers(), 2);
    }
}
