//! Scheduling policies: where interleaving nondeterminism lives.
//!
//! The coordinator asks the active [`Scheduler`] which enabled thread runs
//! next at every step. Three stock policies are provided:
//!
//! * [`RandomScheduler`] — models a `P`-processor production machine: up to
//!   `P` threads are "on core" at once with exponential-ish timeslices;
//!   among on-core threads the next operation is chosen uniformly (true
//!   parallel interleaving), and preempted/blocked threads are replaced at
//!   random. Seeded, and therefore reproducible.
//! * [`RoundRobinScheduler`] — deterministic cycling, handy in tests.
//! * [`ScriptedScheduler`] — replays an exact pick sequence; the mechanism
//!   behind total-order reproduction certificates.
//!
//! `pres-core` implements its own sketch-constrained exploration scheduler
//! against the same trait.

use crate::ids::ThreadId;
use crate::op::Op;
use crate::rng::ChaCha8Rng;

/// One announced thread visible to the scheduler.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The thread.
    pub tid: ThreadId,
    /// Its announced (pending) operation.
    pub op: Op,
}

/// What the scheduler sees at each step.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Threads that can run now, ordered by thread id.
    pub enabled: &'a [Candidate],
    /// Threads announced but blocked, ordered by thread id.
    pub blocked: &'a [Candidate],
    /// Number of operations applied so far.
    pub step: u64,
    /// Simulated processor count.
    pub processors: u32,
}

impl SchedView<'_> {
    /// Whether `tid` is currently enabled.
    pub fn is_enabled(&self, tid: ThreadId) -> bool {
        self.enabled.iter().any(|c| c.tid == tid)
    }
}

/// The scheduler's verdict for one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Run this thread's announced operation (must be enabled).
    Run(ThreadId),
    /// Abort the whole run with a reason (replay divergence etc.).
    Abort(String),
}

/// A scheduling policy.
pub trait Scheduler: Send {
    /// Chooses the next thread among `view.enabled` (guaranteed non-empty).
    fn pick(&mut self, view: &SchedView<'_>) -> Decision;

    /// Called once per applied event so stateful policies can track
    /// progress. Default: ignore.
    fn on_applied(&mut self, _tid: ThreadId, _op: &Op) {}
}

/// Seeded random scheduler modeling a `P`-processor machine.
///
/// Threads are taken on and off virtual cores with random timeslices; the
/// interleaving *between* on-core threads is uniformly random per step,
/// which is the behaviour that makes multiprocessor concurrency bugs both
/// possible and rare — exactly the production environment the paper records.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: ChaCha8Rng,
    seed: u64,
    mean_slice: u32,
    active: Vec<(ThreadId, u32)>,
}

impl RandomScheduler {
    /// Default mean timeslice, in operations.
    pub const DEFAULT_MEAN_SLICE: u32 = 48;

    /// A scheduler with the given seed and default timeslice.
    pub fn new(seed: u64) -> Self {
        Self::with_mean_slice(seed, Self::DEFAULT_MEAN_SLICE)
    }

    /// A scheduler with an explicit mean timeslice (operations per stint on
    /// core). Shorter slices yield finer interleaving.
    pub fn with_mean_slice(seed: u64, mean_slice: u32) -> Self {
        RandomScheduler {
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
            mean_slice: mean_slice.max(1),
            active: Vec::new(),
        }
    }

    /// The seed this scheduler was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn draw_slice(&mut self) -> u32 {
        // Geometric-ish: uniform in [1, 2*mean] has the right mean and is
        // cheap and deterministic.
        self.rng.gen_range(1..=self.mean_slice * 2)
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> Decision {
        // Drop finished slices and threads that are no longer enabled
        // (blocked or exited): they lose their core.
        self.active
            .retain(|(tid, left)| *left > 0 && view.is_enabled(*tid));

        // Fill free cores from the enabled-but-not-active pool, at random.
        let capacity = view.processors.max(1) as usize;
        while self.active.len() < capacity {
            let pool: Vec<ThreadId> = view
                .enabled
                .iter()
                .map(|c| c.tid)
                .filter(|t| !self.active.iter().any(|(a, _)| a == t))
                .collect();
            if pool.is_empty() {
                break;
            }
            let tid = pool[self.rng.gen_range(0..pool.len())];
            let slice = self.draw_slice();
            self.active.push((tid, slice));
        }

        debug_assert!(!self.active.is_empty(), "pick called with no enabled threads");
        // Uniform interleaving among on-core threads.
        let idx = self.rng.gen_range(0..self.active.len());
        let (tid, ref mut left) = self.active[idx];
        *left -= 1;
        Decision::Run(tid)
    }
}

/// Deterministic round-robin over enabled threads.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    last: Option<ThreadId>,
}

impl RoundRobinScheduler {
    /// A fresh round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> Decision {
        let next = match self.last {
            None => view.enabled[0].tid,
            Some(last) => view
                .enabled
                .iter()
                .map(|c| c.tid)
                .find(|t| *t > last)
                .unwrap_or(view.enabled[0].tid),
        };
        self.last = Some(next);
        Decision::Run(next)
    }
}

/// Replays an exact sequence of picks.
///
/// If the scripted thread is not enabled at its step — which cannot happen
/// when the script was produced by a run of the same program — the run is
/// aborted rather than silently diverging.
#[derive(Debug)]
pub struct ScriptedScheduler {
    script: Vec<ThreadId>,
    cursor: usize,
}

impl ScriptedScheduler {
    /// A scheduler replaying `script`.
    pub fn new(script: Vec<ThreadId>) -> Self {
        ScriptedScheduler { script, cursor: 0 }
    }

    /// How many picks have been consumed.
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

impl Scheduler for ScriptedScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> Decision {
        let Some(&tid) = self.script.get(self.cursor) else {
            return Decision::Abort(format!(
                "schedule script exhausted after {} picks",
                self.cursor
            ));
        };
        if !view.is_enabled(tid) {
            return Decision::Abort(format!(
                "schedule script divergence at pick {}: {tid} not enabled",
                self.cursor
            ));
        }
        self.cursor += 1;
        Decision::Run(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;

    fn candidates(tids: &[u32]) -> Vec<Candidate> {
        tids.iter()
            .map(|t| Candidate {
                tid: ThreadId(*t),
                op: Op::Read(VarId(0)),
            })
            .collect()
    }

    fn view<'a>(enabled: &'a [Candidate], processors: u32) -> SchedView<'a> {
        SchedView {
            enabled,
            blocked: &[],
            step: 0,
            processors,
        }
    }

    fn run_picks(sched: &mut dyn Scheduler, enabled: &[Candidate], p: u32, n: usize) -> Vec<u32> {
        (0..n)
            .map(|_| match sched.pick(&view(enabled, p)) {
                Decision::Run(t) => t.0,
                Decision::Abort(why) => panic!("unexpected abort: {why}"),
            })
            .collect()
    }

    #[test]
    fn random_scheduler_is_seed_deterministic() {
        let en = candidates(&[0, 1, 2, 3]);
        let a = run_picks(&mut RandomScheduler::new(7), &en, 4, 200);
        let b = run_picks(&mut RandomScheduler::new(7), &en, 4, 200);
        let c = run_picks(&mut RandomScheduler::new(8), &en, 4, 200);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_scheduler_single_core_runs_coarse_stints() {
        let en = candidates(&[0, 1]);
        let picks = run_picks(&mut RandomScheduler::new(3), &en, 1, 400);
        // Count context switches; with one core and mean slice 48 they must
        // be far rarer than with two cores.
        let switches = |v: &[u32]| v.windows(2).filter(|w| w[0] != w[1]).count();
        let picks2 = run_picks(&mut RandomScheduler::new(3), &en, 2, 400);
        assert!(
            switches(&picks) * 4 < switches(&picks2),
            "P=1 switches {} should be far below P=2 switches {}",
            switches(&picks),
            switches(&picks2)
        );
    }

    #[test]
    fn random_scheduler_eventually_runs_everyone() {
        let en = candidates(&[0, 1, 2, 3, 4, 5]);
        let picks = run_picks(&mut RandomScheduler::new(11), &en, 2, 3000);
        for t in 0..6 {
            assert!(picks.contains(&t), "thread {t} starved");
        }
    }

    #[test]
    fn round_robin_cycles_in_tid_order() {
        let en = candidates(&[1, 3, 5]);
        let mut rr = RoundRobinScheduler::new();
        let picks = run_picks(&mut rr, &en, 1, 7);
        assert_eq!(picks, vec![1, 3, 5, 1, 3, 5, 1]);
    }

    #[test]
    fn round_robin_skips_missing_threads() {
        let mut rr = RoundRobinScheduler::new();
        let en1 = candidates(&[1, 2]);
        assert_eq!(run_picks(&mut rr, &en1, 1, 1), vec![1]);
        // Thread 2 became blocked; only 5 remains above 1.
        let en2 = candidates(&[5]);
        assert_eq!(run_picks(&mut rr, &en2, 1, 1), vec![5]);
        // Wrap around.
        let en3 = candidates(&[1, 5]);
        assert_eq!(run_picks(&mut rr, &en3, 1, 1), vec![1]);
    }

    #[test]
    fn scripted_scheduler_replays_and_detects_divergence() {
        let en = candidates(&[0, 1]);
        let mut s = ScriptedScheduler::new(vec![ThreadId(1), ThreadId(0), ThreadId(9)]);
        assert_eq!(s.pick(&view(&en, 1)), Decision::Run(ThreadId(1)));
        assert_eq!(s.pick(&view(&en, 1)), Decision::Run(ThreadId(0)));
        match s.pick(&view(&en, 1)) {
            Decision::Abort(msg) => assert!(msg.contains("divergence")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scripted_scheduler_aborts_when_exhausted() {
        let en = candidates(&[0]);
        let mut s = ScriptedScheduler::new(vec![]);
        match s.pick(&view(&en, 1)) {
            Decision::Abort(msg) => assert!(msg.contains("exhausted")),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.consumed(), 0);
    }
}
