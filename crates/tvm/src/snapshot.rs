//! Mid-execution VM snapshots: the checkpoint surface of always-on
//! recording.
//!
//! A [`VmSnapshot`] captures everything the coordinator owns at a pick
//! boundary — run statistics, the virtual clock, per-vthread control state
//! (names, per-thread sequence numbers, exit flags), and the full
//! [`crate::state::VmState`] including the simulated world and its input
//! RNG — in a versioned binary encoding. The capture point is defined by
//! *pick count*: a snapshot at boundary `B` reflects the state after
//! exactly the first `B` scheduler picks have been applied.
//!
//! Restoration is by **deterministic fast-forward**: vthread bodies are
//! native Rust closures, so the way to reconstruct the VM at boundary `B`
//! is to re-run the program under the recorded production scheduler for
//! exactly `B` picks. The serialized snapshot is the integrity witness for
//! that fast-forward — the replayer re-captures at `B` and byte-compares
//! the encodings, so any drift between the production run and the replay
//! environment is detected instead of silently corrupting exploration
//! (see `pres-core`'s checkpoint verification).
//!
//! Encoding discipline mirrors the sketch codec: decoding is strictly
//! structural, never panics, never accepts trailing bytes, and bounds
//! every collection count against the remaining input so corrupt or
//! truncated snapshots fail fast with an offset-carrying error.

use std::fmt;

/// Current snapshot encoding version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Section tags of the snapshot payload, in required order.
pub const SEC_STATS: u8 = 1;
/// Virtual-clock section.
pub const SEC_CLOCK: u8 = 2;
/// Per-vthread control-state section.
pub const SEC_THREADS: u8 = 3;
/// Shared state + simulated world section.
pub const SEC_STATE: u8 = 4;

/// A decode failure: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Byte offset at which decoding failed (relative to the region being
    /// parsed).
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only snapshot encoder (LEB128 varints, length-prefixed blobs).
///
/// Owning modules ([`crate::state`], [`crate::sys`], [`crate::clock`],
/// [`crate::rng`]) serialize themselves through this writer so their fields
/// stay private; the coordinator assembles the sections.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an LEB128 varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a length-prefixed byte blob.
    pub fn bytes(&mut self, data: &[u8]) {
        self.u64(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Appends a tagged, length-prefixed section whose body is produced by
    /// `f` into a fresh encoder.
    pub fn section(&mut self, tag: u8, f: impl FnOnce(&mut Enc)) {
        let mut body = Enc::new();
        f(&mut body);
        self.u8(tag);
        self.bytes(&body.buf);
    }

    /// Consumes the encoder and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked snapshot reader.
struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, SnapshotError> {
        Err(SnapshotError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        match self.data.get(self.pos) {
            Some(b) => {
                self.pos += 1;
                Ok(*b)
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => self.err(format!("invalid bool byte {other}")),
        }
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return self.err("varint overflows u64");
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        if self.data.len() - self.pos < len {
            return self.err(format!(
                "need {len} bytes, {} remain",
                self.data.len() - self.pos
            ));
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64()?;
        if len > (self.data.len() - self.pos) as u64 {
            return self.err(format!("blob length {len} exceeds remaining input"));
        }
        self.take(len as usize)
    }

    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let raw = self.bytes()?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s),
            Err(_) => self.err("invalid utf-8 in string"),
        }
    }

    /// A collection count, rejected when it exceeds the remaining bytes
    /// (every element consumes at least one byte, so a larger count can
    /// only come from corruption).
    fn count(&mut self) -> Result<u64, SnapshotError> {
        let n = self.u64()?;
        if n > (self.data.len() - self.pos) as u64 {
            return self.err(format!("count {n} exceeds remaining input"));
        }
        Ok(n)
    }

    fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// A serialized checkpoint of a VM at a pick boundary.
///
/// Opaque to everything except the tvm coordinator (which captures it) and
/// the verification path (which byte-compares re-captures against it); the
/// payload layout is internal and versioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmSnapshot {
    picks: u64,
    step: u64,
    threads: u32,
    payload: Vec<u8>,
}

impl VmSnapshot {
    /// Assembles a snapshot from coordinator-captured parts.
    pub(crate) fn from_parts(picks: u64, step: u64, threads: u32, payload: Vec<u8>) -> Self {
        VmSnapshot {
            picks,
            step,
            threads,
            payload,
        }
    }

    /// The pick boundary: the number of scheduler picks applied before
    /// this snapshot was taken.
    pub fn picks(&self) -> u64 {
        self.picks
    }

    /// The VM step counter at capture (>= `picks`: blocked-arrival
    /// fast-forwards advance steps without picks).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Number of vthreads (spawned so far, exited included) at capture.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The serialized state payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Serializes the snapshot (version, boundary, step, threads, payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(SNAPSHOT_VERSION);
        e.u64(self.picks);
        e.u64(self.step);
        e.u64(u64::from(self.threads));
        e.bytes(&self.payload);
        e.finish()
    }

    /// Decodes and structurally validates a snapshot. Never panics; errors
    /// on truncation, corruption, version mismatch, or trailing bytes.
    pub fn decode(data: &[u8]) -> Result<VmSnapshot, SnapshotError> {
        let mut d = Dec::new(data);
        let version = d.u8()?;
        if version != SNAPSHOT_VERSION {
            return d.err(format!("unsupported snapshot version {version}"));
        }
        let picks = d.u64()?;
        let step = d.u64()?;
        let threads = d.u64()?;
        if threads > u64::from(u32::MAX) {
            return d.err(format!("thread count {threads} out of range"));
        }
        let payload = d.bytes()?.to_vec();
        if !d.at_end() {
            return d.err("trailing bytes after snapshot");
        }
        let declared = validate_payload(&payload)?;
        if u64::from(declared) != threads {
            return Err(SnapshotError {
                offset: 0,
                message: format!(
                    "header thread count {threads} disagrees with payload ({declared})"
                ),
            });
        }
        Ok(VmSnapshot {
            picks,
            step,
            threads: threads as u32,
            payload,
        })
    }
}

/// Structurally validates a snapshot payload, returning the thread count
/// declared by its thread section.
fn validate_payload(payload: &[u8]) -> Result<u32, SnapshotError> {
    let mut d = Dec::new(payload);
    let mut threads: u32 = 0;
    for expected in [SEC_STATS, SEC_CLOCK, SEC_THREADS, SEC_STATE] {
        let tag = d.u8()?;
        if tag != expected {
            return d.err(format!("expected section {expected}, found {tag}"));
        }
        let body = d.bytes()?;
        let mut s = Dec::new(body);
        match tag {
            SEC_STATS => validate_stats(&mut s)?,
            SEC_CLOCK => validate_clock(&mut s)?,
            SEC_THREADS => threads = validate_threads(&mut s)?,
            SEC_STATE => validate_state(&mut s)?,
            _ => unreachable!(),
        }
        if !s.at_end() {
            return s.err(format!("trailing bytes in section {tag}"));
        }
    }
    if !d.at_end() {
        return d.err("trailing bytes after final section");
    }
    Ok(threads)
}

/// 7 operation counters: `os_spawns` is executor-dependent and excluded.
fn validate_stats(d: &mut Dec<'_>) -> Result<(), SnapshotError> {
    for _ in 0..7 {
        d.u64()?;
    }
    Ok(())
}

fn validate_clock(d: &mut Dec<'_>) -> Result<(), SnapshotError> {
    let n = d.count()?;
    for _ in 0..n {
        d.u64()?;
    }
    d.u64()?; // work
    d.u64()?; // serial
    Ok(())
}

fn validate_threads(d: &mut Dec<'_>) -> Result<u32, SnapshotError> {
    let n = d.count()?;
    if n > u64::from(u32::MAX) {
        return d.err(format!("thread count {n} out of range"));
    }
    for _ in 0..n {
        d.str()?; // name
        d.u64()?; // tseq
        d.bool()?; // exited
    }
    Ok(n as u32)
}

/// `Option<ThreadId>` encoding: 0 = None, otherwise tid + 1.
fn validate_opt_tid(d: &mut Dec<'_>) -> Result<(), SnapshotError> {
    d.u64()?;
    Ok(())
}

fn validate_tid_list(d: &mut Dec<'_>) -> Result<(), SnapshotError> {
    let n = d.count()?;
    for _ in 0..n {
        d.u64()?;
    }
    Ok(())
}

fn validate_state(d: &mut Dec<'_>) -> Result<(), SnapshotError> {
    // vars
    let n = d.count()?;
    for _ in 0..n {
        d.u64()?;
    }
    // bufs
    let n = d.count()?;
    for _ in 0..n {
        d.bytes()?;
    }
    // locks
    let n = d.count()?;
    for _ in 0..n {
        validate_opt_tid(d)?;
    }
    // rwlocks
    let n = d.count()?;
    for _ in 0..n {
        validate_opt_tid(d)?;
        validate_tid_list(d)?;
    }
    // condvars
    let n = d.count()?;
    for _ in 0..n {
        validate_tid_list(d)?; // waiting
        validate_tid_list(d)?; // notified
    }
    // barriers
    let n = d.count()?;
    for _ in 0..n {
        d.u64()?; // parties
        validate_tid_list(d)?; // arrived
        validate_tid_list(d)?; // released
        d.u64()?; // generation
    }
    // semaphores
    let n = d.count()?;
    for _ in 0..n {
        d.u64()?;
    }
    // channels
    let n = d.count()?;
    for _ in 0..n {
        let q = d.count()?;
        for _ in 0..q {
            d.u64()?;
        }
        d.bool()?; // closed
    }
    validate_world(d)
}

fn validate_world(d: &mut Dec<'_>) -> Result<(), SnapshotError> {
    // files
    let n = d.count()?;
    for _ in 0..n {
        d.str()?;
        d.bytes()?;
    }
    // fds
    let n = d.count()?;
    for _ in 0..n {
        d.str()?; // path
        d.u64()?; // cursor
        d.bool()?; // closed
    }
    d.u64()?; // next_session
    // connections
    let n = d.count()?;
    for _ in 0..n {
        d.bytes()?; // inbox
        d.u64()?; // read_cursor
        d.bytes()?; // outbox
        d.bool()?; // closed
    }
    // rng: 16 state words + 16 block words + cursor
    for _ in 0..33 {
        d.u64()?;
    }
    d.bytes()?; // stdout
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A structurally valid payload for an empty VM: zero-count sections
    /// and a zeroed RNG.
    fn empty_payload() -> Vec<u8> {
        let mut e = Enc::new();
        e.section(SEC_STATS, |e| {
            for _ in 0..7 {
                e.u64(0);
            }
        });
        e.section(SEC_CLOCK, |e| {
            e.u64(0); // per-thread count
            e.u64(0); // work
            e.u64(0); // serial
        });
        e.section(SEC_THREADS, |e| {
            e.u64(1);
            e.str("main");
            e.u64(0);
            e.bool(false);
        });
        e.section(SEC_STATE, |e| {
            for _ in 0..8 {
                e.u64(0); // vars..chans counts
            }
            e.u64(0); // files
            e.u64(0); // fds
            e.u64(0); // next_session
            e.u64(0); // conns
            for _ in 0..33 {
                e.u64(0); // rng
            }
            e.bytes(&[]); // stdout
        });
        e.finish()
    }

    fn sample() -> VmSnapshot {
        VmSnapshot::from_parts(42, 45, 1, empty_payload())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let snap = sample();
        let bytes = snap.encode();
        let back = VmSnapshot::decode(&bytes).expect("decodes");
        assert_eq!(back, snap);
        assert_eq!(back.picks(), 42);
        assert_eq!(back.step(), 45);
        assert_eq!(back.threads(), 1);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn every_truncation_errors_without_panicking() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                VmSnapshot::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(VmSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = SNAPSHOT_VERSION + 1;
        let err = VmSnapshot::decode(&bytes).unwrap_err();
        assert!(err.message.contains("version"));
    }

    #[test]
    fn header_payload_thread_disagreement_is_rejected() {
        // Re-encode with a lying header thread count.
        let snap = sample();
        let mut e = Enc::new();
        e.u8(SNAPSHOT_VERSION);
        e.u64(snap.picks());
        e.u64(snap.step());
        e.u64(7); // payload says 1
        e.bytes(snap.payload());
        let err = VmSnapshot::decode(&e.finish()).unwrap_err();
        assert!(err.message.contains("disagrees"), "{err}");
    }

    #[test]
    fn bit_flips_never_panic() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                // Must return (Ok for benign flips in e.g. stats values,
                // Err for structural damage) — never panic.
                let _ = VmSnapshot::decode(&corrupt);
            }
        }
    }

    #[test]
    fn varint_overflow_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u8(SNAPSHOT_VERSION);
        // 11-byte varint: overflows u64.
        for _ in 0..10 {
            e.u8(0xff);
        }
        e.u8(0x7f);
        assert!(VmSnapshot::decode(&e.finish()).is_err());
    }
}
