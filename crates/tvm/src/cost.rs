//! The virtual-instruction cost model.
//!
//! The original PRES prototype measured wall-clock recording overhead of
//! Pin-instrumented binaries on an 8-core machine. This reproduction
//! substitutes a *virtual-time* model (see DESIGN.md §2): every operation a
//! thread performs carries a cost in abstract instruction units, and the
//! recorder charges additional units for each event it logs. Overhead ratios
//! — the quantity the paper reports — are then determined by event
//! *frequencies* and per-event recording costs, which is exactly what drives
//! the real numbers.

use crate::op::{Op, SyscallOp};

/// Per-operation base costs, in virtual instruction units.
///
/// The defaults are loosely calibrated to instruction counts on commodity
/// hardware circa the paper (a cache-hitting load/store ≈ a few instructions,
/// an uncontended lock ≈ tens, a syscall ≈ hundreds) but only the *relative*
/// magnitudes matter for the reproduced shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a shared scalar read or write.
    pub mem_access: u64,
    /// Cost of a shared buffer operation, plus this per byte moved.
    pub buf_base: u64,
    /// Additional buffer cost per byte.
    pub buf_per_byte: u64,
    /// Cost of a synchronization operation (lock, unlock, signal, ...).
    pub sync_op: u64,
    /// Cost of a simulated system call.
    pub syscall: u64,
    /// Additional syscall cost per byte moved.
    pub syscall_per_byte: u64,
    /// Cost of a function-entry marker.
    pub func_marker: u64,
    /// Cost of a basic-block marker.
    pub bb_marker: u64,
    /// Cost of spawning a thread.
    pub spawn: u64,
    /// Cost charged to the *recording* thread for appending one event to an
    /// in-memory log (buffer write + bookkeeping).
    pub record_event: u64,
    /// Additional recording cost per payload byte (syscall results etc.).
    pub record_per_byte: u64,
    /// The portion of `record_event` that must execute inside the global
    /// total-order section (atomic global sequence increment + slot claim).
    /// Only mechanisms that need a global order over *high-frequency* events
    /// pay this serially; it is what makes RW recording scale badly with
    /// processor count (paper: "PRES scaled well with the number of
    /// processors" — and the RW baseline did not).
    pub record_serial: u64,
    /// One memory access per this many instruction units inside a
    /// [`crate::op::Op::Compute`] block. `Compute` models thread-local
    /// computation, but a conservative binary instrumentor (the paper's
    /// Pin-based RW recorder) cannot prove thread-locality and must log
    /// every load/store in it — the dominant component of RW overhead.
    pub units_per_implicit_access: u64,
    /// One basic-block boundary per this many instruction units inside a
    /// `Compute` block (BB sketching logs these).
    pub units_per_implicit_bb: u64,
    /// One function entry per this many instruction units inside a
    /// `Compute` block (FUNC sketching logs these).
    pub units_per_implicit_func: u64,
    /// Cost per *implicit* logged event — cheaper than `record_event`
    /// because the instrumentation loop is tight and amortized.
    pub implicit_record: u64,
    /// Serialized (global-order) portion of an implicit event's cost.
    pub implicit_serial: u64,
    /// Log bytes per implicit event (delta-encoded ids).
    pub implicit_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mem_access: 2,
            buf_base: 4,
            buf_per_byte: 1,
            sync_op: 30,
            syscall: 400,
            syscall_per_byte: 1,
            func_marker: 2,
            bb_marker: 1,
            spawn: 2_000,
            record_event: 120,
            record_per_byte: 2,
            record_serial: 40,
            units_per_implicit_access: 3,
            units_per_implicit_bb: 16,
            units_per_implicit_func: 240,
            implicit_record: 34,
            implicit_serial: 7,
            implicit_bytes: 2,
        }
    }
}

impl CostModel {
    /// The base execution cost of an op (excluding any recording charge).
    pub fn op_cost(&self, op: &Op) -> u64 {
        match op {
            Op::ThreadStart | Op::ThreadExit | Op::Yield => 1,
            Op::Read(_) | Op::Write(..) => self.mem_access,
            Op::FetchAdd(..) | Op::CompareSwap(..) => self.mem_access + self.sync_op / 4,
            Op::Buf(_, b) => {
                let bytes = match b {
                    crate::op::BufOp::Append(d) => d.len() as u64,
                    _ => 0,
                };
                self.buf_base + self.buf_per_byte * bytes
            }
            Op::LockAcquire(_)
            | Op::LockRelease(_)
            | Op::RwAcquireRead(_)
            | Op::RwAcquireWrite(_)
            | Op::RwRelease(_)
            | Op::CondWait(..)
            | Op::CondReacquire(..)
            | Op::CondNotifyOne(_)
            | Op::CondNotifyAll(_)
            | Op::BarrierWait(_)
            | Op::BarrierResume(_)
            | Op::SemAcquire(_)
            | Op::SemRelease(_)
            | Op::ChanSend(..)
            | Op::ChanRecv(_)
            | Op::ChanClose(_) => self.sync_op,
            Op::Spawn => self.spawn,
            Op::Join(_) => self.sync_op,
            Op::Syscall(s) => {
                let bytes = match s {
                    SyscallOp::FileWrite { data, .. }
                    | SyscallOp::NetSend { data, .. }
                    | SyscallOp::StdoutWrite { data } => data.len() as u64,
                    SyscallOp::FileRead { len, .. } | SyscallOp::NetRecv { len, .. } => {
                        *len as u64
                    }
                    _ => 0,
                };
                self.syscall + self.syscall_per_byte * bytes
            }
            Op::Func(_) => self.func_marker,
            Op::BasicBlock(_) => self.bb_marker,
            Op::Compute(n) => *n,
            Op::Fail(_) => 1,
        }
    }

    /// The cost charged for recording one event with `payload_bytes` of
    /// logged payload, split into (thread-local cost, serialized cost).
    ///
    /// `needs_global_order` is per *event class*, not per mechanism: an
    /// entry pays [`CostModel::record_serial`] only when it claims a slot
    /// in the single global order (memory/sync/syscall/lifecycle classes).
    /// Thread-local marker entries (function/basic-block) append to their
    /// thread's own shard and pay thread-local cost only.
    pub fn record_cost(&self, payload_bytes: u64, needs_global_order: bool) -> (u64, u64) {
        let local = self.record_event + self.record_per_byte * payload_bytes;
        let serial = if needs_global_order {
            self.record_serial
        } else {
            0
        };
        (local, serial)
    }

    /// The observer charge for `n` implicit instruction-stream events, as a
    /// ready-made [`crate::trace::ObserverCharge`].
    ///
    /// Mirrors [`CostModel::record_cost`]'s split for the implicit stream:
    /// every implicit event costs [`CostModel::implicit_record`] on the
    /// issuing thread, and only streams whose cross-thread order must be
    /// pinned (the RW baseline's untracked loads/stores) additionally pay
    /// [`CostModel::implicit_serial`] per event in the serialized section.
    pub fn implicit_cost(&self, n: u64, needs_global_order: bool) -> crate::trace::ObserverCharge {
        let thread_cost = n * self.implicit_record;
        if needs_global_order {
            crate::trace::ObserverCharge::serialized(thread_cost, n * self.implicit_serial)
        } else {
            crate::trace::ObserverCharge::local(thread_cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BbId, BufId, FuncId, LockId, VarId};
    use crate::op::BufOp;

    #[test]
    fn markers_are_cheaper_than_accesses_than_syncs_than_syscalls() {
        let m = CostModel::default();
        let bb = m.op_cost(&Op::BasicBlock(BbId(0)));
        let rd = m.op_cost(&Op::Read(VarId(0)));
        let lk = m.op_cost(&Op::LockAcquire(LockId(0)));
        let sc = m.op_cost(&Op::Syscall(SyscallOp::ClockNow));
        assert!(bb <= rd && rd < lk && lk < sc);
    }

    #[test]
    fn compute_cost_is_exact() {
        let m = CostModel::default();
        assert_eq!(m.op_cost(&Op::Compute(1234)), 1234);
    }

    #[test]
    fn buffer_cost_scales_with_payload() {
        let m = CostModel::default();
        let small = m.op_cost(&Op::Buf(BufId(0), BufOp::Append(vec![0; 4])));
        let big = m.op_cost(&Op::Buf(BufId(0), BufOp::Append(vec![0; 400])));
        assert!(big > small);
        assert_eq!(big - small, 396 * m.buf_per_byte);
    }

    #[test]
    fn syscall_cost_scales_with_bytes() {
        let m = CostModel::default();
        let a = m.op_cost(&Op::Syscall(SyscallOp::NetSend {
            conn: crate::ids::ConnId(0),
            data: vec![0; 100],
        }));
        let b = m.op_cost(&Op::Syscall(SyscallOp::NetSend {
            conn: crate::ids::ConnId(0),
            data: vec![],
        }));
        assert_eq!(a - b, 100 * m.syscall_per_byte);
    }

    #[test]
    fn record_cost_splits_serial_component() {
        let m = CostModel::default();
        let (l1, s1) = m.record_cost(8, true);
        let (l2, s2) = m.record_cost(8, false);
        assert_eq!(l1, l2);
        assert_eq!(s1, m.record_serial);
        assert_eq!(s2, 0);
        assert_eq!(l1, m.record_event + 8 * m.record_per_byte);
    }

    #[test]
    fn func_marker_cost_is_small() {
        let m = CostModel::default();
        assert!(m.op_cost(&Op::Func(FuncId(0))) <= m.sync_op);
    }
}
