//! Deterministic in-repo random number generation.
//!
//! The VM's determinism contract forbids ambient entropy: every random
//! choice (scheduler picks, simulated input streams) must be a pure
//! function of a seed. This module provides a self-contained ChaCha8
//! stream generator — the same cipher family the `rand_chacha` crate
//! exposes — so the workspace needs no external dependencies and builds
//! fully offline.
//!
//! ChaCha8 is overkill for scheduling jitter, but it has two properties
//! worth paying 8 rounds for:
//!
//! * statistically clean streams regardless of how structured the seeds
//!   are (exploration uses `base_seed + round`, `base_seed + k·φ`, …);
//! * a well-known specification, so the generator is auditable and will
//!   never silently change between toolchain versions.

use std::ops::{Range, RangeInclusive};

/// A seeded, deterministic ChaCha8 random stream.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The block input: constants, key, counter, nonce.
    state: [u32; 16],
    /// The current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means "exhausted".
    word: usize,
}

/// SplitMix64: the standard way to expand a 64-bit seed into key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Builds a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // "expand 32-byte k" — the ChaCha sigma constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Words 12..13: 64-bit block counter. Words 14..15: nonce (zero).
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }

    /// Generates the next keystream block and resets the read cursor.
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // A double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for ((b, &xi), &st) in self.block.iter_mut().zip(&x).zip(&self.state) {
            *b = xi.wrapping_add(st);
        }
        // Advance the 64-bit counter.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word = 0;
    }

    /// The next 32 bits of the stream.
    pub fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    /// The next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }

    /// A uniform draw from a range, e.g. `0..len` or `1..=max`.
    ///
    /// Uses the multiply-shift reduction; for the small ranges schedulers
    /// draw from, the bias is far below anything observable.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Serializes the full generator state into a snapshot section
    /// (see [`crate::snapshot`]): block input, current keystream block,
    /// and the read cursor.
    pub fn snapshot_into(&self, e: &mut crate::snapshot::Enc) {
        for w in &self.state {
            e.u64(u64::from(*w));
        }
        for w in &self.block {
            e.u64(u64::from(*w));
        }
        e.u64(self.word as u64);
    }
}

/// Ranges [`ChaCha8Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform value.
    fn sample(self, rng: &mut ChaCha8Rng) -> Self::Output;
}

fn sample_span(rng: &mut ChaCha8Rng, span: u64) -> u64 {
    debug_assert!(span > 0, "cannot sample an empty range");
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut ChaCha8Rng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + sample_span(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<u32> {
    type Output = u32;
    fn sample(self, rng: &mut ChaCha8Rng) -> u32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + sample_span(rng, u64::from(hi - lo) + 1) as u32
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut ChaCha8Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + sample_span(rng, self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9u32);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn stream_is_not_degenerate() {
        // Sanity: successive words differ and bits look balanced-ish.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        assert!(words.windows(2).all(|w| w[0] != w[1]));
        let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        let total = 64 * 64;
        assert!(ones > total / 3 && ones < 2 * total / 3, "{ones}/{total}");
    }
}
