//! Shared program state: resources, enabledness, and operation semantics.
//!
//! [`VmState`] owns every shared object a program can touch. The coordinator
//! is its only user, so no internal locking is needed; determinism follows
//! from the coordinator applying exactly one operation at a time.
//!
//! Resources are declared up front through a [`ResourceSpec`] — dense id
//! allocation at declaration time keeps ids stable across runs regardless of
//! scheduling, which every recorder and replayer in the stack relies on.

use crate::ids::{
    BarrierId, BufId, ChanId, CondId, LockId, RwLockId, SemId, ThreadId, VarId,
};
use crate::op::{BufOp, Op, OpResult, SyscallOp};
use crate::sys::{AcceptStatus, World, WorldConfig};
use std::collections::VecDeque;

/// Up-front declaration of every shared resource a program uses.
///
/// Declaration returns the id immediately, so application setup code reads
/// naturally:
///
/// ```
/// use pres_tvm::state::ResourceSpec;
///
/// let mut spec = ResourceSpec::new();
/// let counter = spec.var("requests_served", 0);
/// let queue_lock = spec.lock("queue_lock");
/// let not_empty = spec.cond("queue_not_empty");
/// assert_eq!(spec.var_name(counter), "requests_served");
/// # let _ = (queue_lock, not_empty);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceSpec {
    vars: Vec<(String, u64)>,
    bufs: Vec<String>,
    locks: Vec<String>,
    rwlocks: Vec<String>,
    conds: Vec<String>,
    barriers: Vec<(String, u32)>,
    sems: Vec<(String, u64)>,
    chans: Vec<String>,
}

impl ResourceSpec {
    /// An empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a shared scalar with an initial value.
    pub fn var(&mut self, name: &str, init: u64) -> VarId {
        self.vars.push((name.to_string(), init));
        VarId(self.vars.len() as u32 - 1)
    }

    /// Declares a block of `n` shared scalars (`name[0]`, `name[1]`, …),
    /// returning the id of element 0; elements are contiguous.
    pub fn var_array(&mut self, name: &str, n: u32, init: u64) -> VarId {
        let first = VarId(self.vars.len() as u32);
        for i in 0..n {
            self.vars.push((format!("{name}[{i}]"), init));
        }
        first
    }

    /// Declares a shared byte buffer.
    pub fn buf(&mut self, name: &str) -> BufId {
        self.bufs.push(name.to_string());
        BufId(self.bufs.len() as u32 - 1)
    }

    /// Declares a mutex.
    pub fn lock(&mut self, name: &str) -> LockId {
        self.locks.push(name.to_string());
        LockId(self.locks.len() as u32 - 1)
    }

    /// Declares a block of `n` mutexes, returning the id of element 0.
    pub fn lock_array(&mut self, name: &str, n: u32) -> LockId {
        let first = LockId(self.locks.len() as u32);
        for i in 0..n {
            self.locks.push(format!("{name}[{i}]"));
        }
        first
    }

    /// Declares a reader-writer lock.
    pub fn rwlock(&mut self, name: &str) -> RwLockId {
        self.rwlocks.push(name.to_string());
        RwLockId(self.rwlocks.len() as u32 - 1)
    }

    /// Declares a condition variable.
    pub fn cond(&mut self, name: &str) -> CondId {
        self.conds.push(name.to_string());
        CondId(self.conds.len() as u32 - 1)
    }

    /// Declares a cyclic barrier for `parties` threads.
    pub fn barrier(&mut self, name: &str, parties: u32) -> BarrierId {
        self.barriers.push((name.to_string(), parties));
        BarrierId(self.barriers.len() as u32 - 1)
    }

    /// Declares a counting semaphore with an initial count.
    pub fn sem(&mut self, name: &str, init: u64) -> SemId {
        self.sems.push((name.to_string(), init));
        SemId(self.sems.len() as u32 - 1)
    }

    /// Declares a FIFO channel.
    pub fn chan(&mut self, name: &str) -> ChanId {
        self.chans.push(name.to_string());
        ChanId(self.chans.len() as u32 - 1)
    }

    /// The declared name of a variable.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id.index()].0
    }

    /// The declared name of a lock.
    pub fn lock_name(&self, id: LockId) -> &str {
        &self.locks[id.index()]
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }
}

#[derive(Debug, Clone, Default)]
struct LockState {
    holder: Option<ThreadId>,
}

#[derive(Debug, Clone, Default)]
struct RwState {
    writer: Option<ThreadId>,
    readers: Vec<ThreadId>,
}

#[derive(Debug, Clone, Default)]
struct CondState {
    /// Waiters not yet notified, in wait order.
    waiting: VecDeque<ThreadId>,
    /// Waiters that have been notified and must reacquire their lock.
    notified: Vec<ThreadId>,
}

#[derive(Debug, Clone)]
struct BarrierState {
    parties: u32,
    arrived: Vec<ThreadId>,
    /// Threads released by a completed generation that have not yet resumed.
    released: Vec<ThreadId>,
    generation: u64,
}

#[derive(Debug, Clone)]
struct SemState {
    count: u64,
}

#[derive(Debug, Clone, Default)]
struct ChanState {
    queue: VecDeque<u64>,
    closed: bool,
}

/// The result of applying an operation.
#[derive(Debug)]
pub enum Applied {
    /// The operation completed; the thread resumes with this result.
    Done(OpResult),
    /// The operation transitioned state but the thread stays blocked, its
    /// pending operation rewritten (condition waits, barrier waits).
    BlockedRewrite(Op),
    /// The operation was a misuse of the API; the thread crashes.
    Fault(String),
}

/// All shared state of a running program.
#[derive(Debug)]
pub struct VmState {
    spec: ResourceSpec,
    vars: Vec<u64>,
    bufs: Vec<Vec<u8>>,
    locks: Vec<LockState>,
    rwlocks: Vec<RwState>,
    conds: Vec<CondState>,
    barriers: Vec<BarrierState>,
    sems: Vec<SemState>,
    chans: Vec<ChanState>,
    world: World,
}

impl VmState {
    /// Instantiates state from a resource specification and world config.
    pub fn new(spec: ResourceSpec, world: WorldConfig) -> Self {
        VmState {
            vars: spec.vars.iter().map(|(_, init)| *init).collect(),
            bufs: vec![Vec::new(); spec.bufs.len()],
            locks: vec![LockState::default(); spec.locks.len()],
            rwlocks: vec![RwState::default(); spec.rwlocks.len()],
            conds: vec![CondState::default(); spec.conds.len()],
            barriers: spec
                .barriers
                .iter()
                .map(|(_, parties)| BarrierState {
                    parties: *parties,
                    arrived: Vec::new(),
                    released: Vec::new(),
                    generation: 0,
                })
                .collect(),
            sems: spec
                .sems
                .iter()
                .map(|(_, init)| SemState { count: *init })
                .collect(),
            chans: vec![ChanState::default(); spec.chans.len()],
            world: World::new(world),
            spec,
        }
    }

    /// The resource specification this state was built from.
    pub fn spec(&self) -> &ResourceSpec {
        &self.spec
    }

    /// The simulated world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Whether `tid` could apply `op` right now without blocking.
    ///
    /// `Join` enabledness depends on thread liveness, which the coordinator
    /// owns; it is handled there and must not be passed here.
    pub fn enabled(&self, tid: ThreadId, op: &Op, step: u64) -> bool {
        match op {
            Op::LockAcquire(l) => self.locks[l.index()].holder.is_none(),
            Op::RwAcquireRead(rw) => self.rwlocks[rw.index()].writer.is_none(),
            Op::RwAcquireWrite(rw) => {
                let s = &self.rwlocks[rw.index()];
                s.writer.is_none() && s.readers.is_empty()
            }
            Op::CondReacquire(c, l) => {
                self.conds[c.index()].notified.contains(&tid)
                    && self.locks[l.index()].holder.is_none()
            }
            Op::BarrierResume(b) => self.barriers[b.index()].released.contains(&tid),
            Op::SemAcquire(s) => self.sems[s.index()].count > 0,
            Op::ChanRecv(ch) => {
                let c = &self.chans[ch.index()];
                !c.queue.is_empty() || c.closed
            }
            Op::Syscall(SyscallOp::NetAccept) => {
                !matches!(self.world.accept_status(step), AcceptStatus::WaitUntil(_))
            }
            Op::Join(_) => {
                unreachable!("Join enabledness is decided by the coordinator")
            }
            _ => true,
        }
    }

    /// If `tid`'s announced `op` is blocked, what is it waiting on?
    /// Used by deadlock analysis.
    pub fn block_reason(&self, tid: ThreadId, op: &Op, step: u64) -> Option<BlockReason> {
        if matches!(op, Op::Join(_)) {
            return None; // handled by the coordinator
        }
        if self.enabled(tid, op, step) {
            return None;
        }
        Some(match op {
            Op::LockAcquire(l) => BlockReason::Lock {
                lock: *l,
                holder: self.locks[l.index()].holder,
            },
            Op::RwAcquireRead(rw) | Op::RwAcquireWrite(rw) => BlockReason::RwLock {
                rwlock: *rw,
                writer: self.rwlocks[rw.index()].writer,
                readers: self.rwlocks[rw.index()].readers.clone(),
            },
            Op::CondReacquire(c, l) => {
                if self.conds[c.index()].notified.contains(&tid) {
                    BlockReason::Lock {
                        lock: *l,
                        holder: self.locks[l.index()].holder,
                    }
                } else {
                    BlockReason::CondNotify { cond: *c }
                }
            }
            Op::SemAcquire(s) => BlockReason::Semaphore { sem: *s },
            Op::ChanRecv(ch) => BlockReason::Channel { chan: *ch },
            Op::Syscall(SyscallOp::NetAccept) => BlockReason::NetArrival,
            other => BlockReason::Other {
                what: other.mnemonic(),
            },
        })
    }

    /// Applies an enabled operation for `tid`.
    ///
    /// `now` is the virtual clock and `step` the VM step counter (used by
    /// the simulated world).
    ///
    /// # Panics
    ///
    /// Panics if called with an op the coordinator should have handled
    /// itself (`Spawn`, `Join`, `Fail`, thread lifecycle markers are applied
    /// here only for their trivial results).
    pub fn apply(&mut self, tid: ThreadId, op: &Op, now: u64, step: u64) -> Applied {
        match op {
            Op::ThreadStart | Op::ThreadExit | Op::Yield => Applied::Done(OpResult::Unit),
            Op::Compute(_) | Op::Func(_) | Op::BasicBlock(_) => Applied::Done(OpResult::Unit),
            Op::Read(v) => Applied::Done(OpResult::Value(self.vars[v.index()])),
            Op::Write(v, val) => {
                self.vars[v.index()] = *val;
                Applied::Done(OpResult::Unit)
            }
            Op::FetchAdd(v, delta) => {
                let old = self.vars[v.index()];
                self.vars[v.index()] = old.wrapping_add_signed(*delta);
                Applied::Done(OpResult::Value(old))
            }
            Op::CompareSwap(v, expect, new) => {
                let old = self.vars[v.index()];
                if old == *expect {
                    self.vars[v.index()] = *new;
                }
                Applied::Done(OpResult::Value(old))
            }
            Op::Buf(b, bufop) => self.apply_buf(*b, bufop),
            Op::LockAcquire(l) => {
                let s = &mut self.locks[l.index()];
                debug_assert!(s.holder.is_none(), "apply of disabled LockAcquire");
                s.holder = Some(tid);
                Applied::Done(OpResult::Unit)
            }
            Op::LockRelease(l) => {
                let s = &mut self.locks[l.index()];
                if s.holder != Some(tid) {
                    return Applied::Fault(format!(
                        "{tid} released {l} ({}) which it does not hold",
                        self.spec.lock_name(*l)
                    ));
                }
                s.holder = None;
                Applied::Done(OpResult::Unit)
            }
            Op::RwAcquireRead(rw) => {
                self.rwlocks[rw.index()].readers.push(tid);
                Applied::Done(OpResult::Unit)
            }
            Op::RwAcquireWrite(rw) => {
                self.rwlocks[rw.index()].writer = Some(tid);
                Applied::Done(OpResult::Unit)
            }
            Op::RwRelease(rw) => {
                let s = &mut self.rwlocks[rw.index()];
                if s.writer == Some(tid) {
                    s.writer = None;
                } else if let Some(pos) = s.readers.iter().position(|r| *r == tid) {
                    s.readers.remove(pos);
                } else {
                    return Applied::Fault(format!("{tid} released {rw} which it does not hold"));
                }
                Applied::Done(OpResult::Unit)
            }
            Op::CondWait(c, l) => {
                if self.locks[l.index()].holder != Some(tid) {
                    return Applied::Fault(format!(
                        "{tid} waits on {c} without holding {l}"
                    ));
                }
                self.locks[l.index()].holder = None;
                self.conds[c.index()].waiting.push_back(tid);
                Applied::BlockedRewrite(Op::CondReacquire(*c, *l))
            }
            Op::CondReacquire(c, l) => {
                let cond = &mut self.conds[c.index()];
                let pos = cond
                    .notified
                    .iter()
                    .position(|t| *t == tid)
                    .expect("apply of CondReacquire without notification");
                cond.notified.remove(pos);
                debug_assert!(self.locks[l.index()].holder.is_none());
                self.locks[l.index()].holder = Some(tid);
                Applied::Done(OpResult::Unit)
            }
            Op::CondNotifyOne(c) => {
                let cond = &mut self.conds[c.index()];
                if let Some(w) = cond.waiting.pop_front() {
                    cond.notified.push(w);
                }
                Applied::Done(OpResult::Unit)
            }
            Op::CondNotifyAll(c) => {
                let cond = &mut self.conds[c.index()];
                while let Some(w) = cond.waiting.pop_front() {
                    cond.notified.push(w);
                }
                Applied::Done(OpResult::Unit)
            }
            Op::BarrierWait(b) => {
                let bar = &mut self.barriers[b.index()];
                bar.arrived.push(tid);
                if bar.arrived.len() as u32 >= bar.parties {
                    // The final arrival releases the generation: everyone
                    // else becomes resumable, the releaser completes now.
                    bar.generation += 1;
                    let releaser = tid;
                    bar.released
                        .extend(bar.arrived.drain(..).filter(|t| *t != releaser));
                    Applied::Done(OpResult::Unit)
                } else {
                    Applied::BlockedRewrite(Op::BarrierResume(*b))
                }
            }
            Op::BarrierResume(b) => {
                let bar = &mut self.barriers[b.index()];
                let pos = bar
                    .released
                    .iter()
                    .position(|t| *t == tid)
                    .expect("apply of BarrierResume without release");
                bar.released.remove(pos);
                Applied::Done(OpResult::Unit)
            }
            Op::SemAcquire(s) => {
                let sem = &mut self.sems[s.index()];
                debug_assert!(sem.count > 0, "apply of disabled SemAcquire");
                sem.count -= 1;
                Applied::Done(OpResult::Unit)
            }
            Op::SemRelease(s) => {
                self.sems[s.index()].count += 1;
                Applied::Done(OpResult::Unit)
            }
            Op::ChanSend(ch, v) => {
                let c = &mut self.chans[ch.index()];
                if c.closed {
                    return Applied::Fault(format!("{tid} sent on closed {ch}"));
                }
                c.queue.push_back(*v);
                Applied::Done(OpResult::Unit)
            }
            Op::ChanRecv(ch) => {
                let c = &mut self.chans[ch.index()];
                match c.queue.pop_front() {
                    Some(v) => Applied::Done(OpResult::MaybeValue(Some(v))),
                    None => {
                        debug_assert!(c.closed, "apply of disabled ChanRecv");
                        Applied::Done(OpResult::MaybeValue(None))
                    }
                }
            }
            Op::ChanClose(ch) => {
                self.chans[ch.index()].closed = true;
                Applied::Done(OpResult::Unit)
            }
            Op::Syscall(sys) => match self.world.apply(sys, now, step) {
                Ok(result) => Applied::Done(result),
                Err(msg) => Applied::Fault(msg),
            },
            Op::Spawn | Op::Join(_) | Op::Fail(_) => {
                panic!("{op:?} must be handled by the coordinator")
            }
        }
    }

    fn apply_buf(&mut self, b: BufId, op: &BufOp) -> Applied {
        let buf = &mut self.bufs[b.index()];
        match op {
            BufOp::Append(data) => {
                buf.extend_from_slice(data);
                Applied::Done(OpResult::Unit)
            }
            BufOp::ReadAll => Applied::Done(OpResult::Bytes(buf.clone())),
            BufOp::Len => Applied::Done(OpResult::Value(buf.len() as u64)),
            BufOp::Clear => {
                buf.clear();
                Applied::Done(OpResult::Unit)
            }
            BufOp::Set { index, byte } => {
                if *index >= buf.len() {
                    return Applied::Fault(format!(
                        "buf set out of bounds: index {index} len {}",
                        buf.len()
                    ));
                }
                buf[*index] = *byte;
                Applied::Done(OpResult::Unit)
            }
        }
    }

    /// The party count of a barrier.
    pub fn barrier_parties(&self, b: BarrierId) -> u32 {
        self.barriers[b.index()].parties
    }

    /// The current holder of a mutex, if any.
    pub fn lock_holder(&self, l: LockId) -> Option<ThreadId> {
        self.locks[l.index()].holder
    }

    /// Current value of a shared variable (diagnostics only).
    pub fn var_value(&self, v: VarId) -> u64 {
        self.vars[v.index()]
    }

    /// Mutable access to the world (coordinator use).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Serializes every mutable piece of shared state into a snapshot
    /// section (see [`crate::snapshot`]). The [`ResourceSpec`] is
    /// config-derived — identical on replay by construction — so it is
    /// not captured.
    pub fn snapshot_into(&self, e: &mut crate::snapshot::Enc) {
        fn tid_list(e: &mut crate::snapshot::Enc, tids: &[ThreadId]) {
            e.u64(tids.len() as u64);
            for t in tids {
                e.u64(u64::from(t.0));
            }
        }
        fn opt_tid(e: &mut crate::snapshot::Enc, t: Option<ThreadId>) {
            e.u64(t.map_or(0, |t| u64::from(t.0) + 1));
        }
        e.u64(self.vars.len() as u64);
        for v in &self.vars {
            e.u64(*v);
        }
        e.u64(self.bufs.len() as u64);
        for b in &self.bufs {
            e.bytes(b);
        }
        e.u64(self.locks.len() as u64);
        for l in &self.locks {
            opt_tid(e, l.holder);
        }
        e.u64(self.rwlocks.len() as u64);
        for rw in &self.rwlocks {
            opt_tid(e, rw.writer);
            tid_list(e, &rw.readers);
        }
        e.u64(self.conds.len() as u64);
        for c in &self.conds {
            let waiting: Vec<ThreadId> = c.waiting.iter().copied().collect();
            tid_list(e, &waiting);
            tid_list(e, &c.notified);
        }
        e.u64(self.barriers.len() as u64);
        for b in &self.barriers {
            e.u64(u64::from(b.parties));
            tid_list(e, &b.arrived);
            tid_list(e, &b.released);
            e.u64(b.generation);
        }
        e.u64(self.sems.len() as u64);
        for s in &self.sems {
            e.u64(s.count);
        }
        e.u64(self.chans.len() as u64);
        for c in &self.chans {
            e.u64(c.queue.len() as u64);
            for v in &c.queue {
                e.u64(*v);
            }
            e.bool(c.closed);
        }
        self.world.snapshot_into(e);
    }
}

/// Why a blocked thread cannot proceed; feeds deadlock analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for a mutex.
    Lock {
        /// The contended lock.
        lock: LockId,
        /// Its current holder (None only transiently).
        holder: Option<ThreadId>,
    },
    /// Waiting for a reader-writer lock.
    RwLock {
        /// The contended lock.
        rwlock: RwLockId,
        /// Current writer, if any.
        writer: Option<ThreadId>,
        /// Current readers.
        readers: Vec<ThreadId>,
    },
    /// Waiting for a condition-variable notification.
    CondNotify {
        /// The condition variable.
        cond: CondId,
    },
    /// Waiting for a semaphore permit.
    Semaphore {
        /// The semaphore.
        sem: SemId,
    },
    /// Waiting for a channel message.
    Channel {
        /// The channel.
        chan: ChanId,
    },
    /// Waiting for a scripted connection to arrive.
    NetArrival,
    /// Any other wait (barrier generations, etc.).
    Other {
        /// Mnemonic of the blocked op.
        what: &'static str,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ROOT_THREAD;

    fn state(f: impl FnOnce(&mut ResourceSpec)) -> VmState {
        let mut spec = ResourceSpec::new();
        f(&mut spec);
        VmState::new(spec, WorldConfig::default())
    }

    #[test]
    fn var_read_write_fetch_add() {
        let mut s = state(|spec| {
            spec.var("x", 10);
        });
        let v = VarId(0);
        match s.apply(ROOT_THREAD, &Op::Read(v), 0, 0) {
            Applied::Done(OpResult::Value(10)) => {}
            other => panic!("{other:?}"),
        }
        s.apply(ROOT_THREAD, &Op::Write(v, 5), 0, 0);
        match s.apply(ROOT_THREAD, &Op::FetchAdd(v, -3), 0, 0) {
            Applied::Done(OpResult::Value(5)) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.var_value(v), 2);
    }

    #[test]
    fn compare_swap_only_succeeds_on_match() {
        let mut s = state(|spec| {
            spec.var("x", 7);
        });
        let v = VarId(0);
        s.apply(ROOT_THREAD, &Op::CompareSwap(v, 9, 1), 0, 0);
        assert_eq!(s.var_value(v), 7);
        s.apply(ROOT_THREAD, &Op::CompareSwap(v, 7, 1), 0, 0);
        assert_eq!(s.var_value(v), 1);
    }

    #[test]
    fn lock_mutual_exclusion_and_misuse_fault() {
        let mut s = state(|spec| {
            spec.lock("m");
        });
        let l = LockId(0);
        let (t0, t1) = (ThreadId(0), ThreadId(1));
        assert!(s.enabled(t0, &Op::LockAcquire(l), 0));
        s.apply(t0, &Op::LockAcquire(l), 0, 0);
        assert!(!s.enabled(t1, &Op::LockAcquire(l), 0));
        // Releasing someone else's lock is a fault.
        match s.apply(t1, &Op::LockRelease(l), 0, 0) {
            Applied::Fault(msg) => assert!(msg.contains("does not hold")),
            other => panic!("{other:?}"),
        }
        s.apply(t0, &Op::LockRelease(l), 0, 0);
        assert!(s.enabled(t1, &Op::LockAcquire(l), 0));
    }

    #[test]
    fn cond_wait_releases_lock_and_requires_notify() {
        let mut s = state(|spec| {
            spec.lock("m");
            spec.cond("cv");
        });
        let (l, c) = (LockId(0), CondId(0));
        let (waiter, notifier) = (ThreadId(1), ThreadId(2));
        s.apply(waiter, &Op::LockAcquire(l), 0, 0);
        let rewritten = match s.apply(waiter, &Op::CondWait(c, l), 0, 0) {
            Applied::BlockedRewrite(op) => op,
            other => panic!("{other:?}"),
        };
        assert_eq!(rewritten, Op::CondReacquire(c, l));
        // The lock was released by the wait.
        assert_eq!(s.lock_holder(l), None);
        // Not enabled until notified, even though the lock is free.
        assert!(!s.enabled(waiter, &rewritten, 0));
        s.apply(notifier, &Op::CondNotifyOne(c), 0, 0);
        assert!(s.enabled(waiter, &rewritten, 0));
        s.apply(waiter, &rewritten, 0, 0);
        assert_eq!(s.lock_holder(l), Some(waiter));
    }

    #[test]
    fn notify_with_no_waiters_is_lost() {
        let mut s = state(|spec| {
            spec.lock("m");
            spec.cond("cv");
        });
        let (l, c) = (LockId(0), CondId(0));
        // Notify first (lost), then wait: waiter stays blocked.
        s.apply(ThreadId(2), &Op::CondNotifyOne(c), 0, 0);
        s.apply(ThreadId(1), &Op::LockAcquire(l), 0, 0);
        let rewritten = match s.apply(ThreadId(1), &Op::CondWait(c, l), 0, 0) {
            Applied::BlockedRewrite(op) => op,
            other => panic!("{other:?}"),
        };
        assert!(!s.enabled(ThreadId(1), &rewritten, 0));
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let mut s = state(|spec| {
            spec.lock("m");
            spec.cond("cv");
        });
        let (l, c) = (LockId(0), CondId(0));
        for t in 1..=3u32 {
            s.apply(ThreadId(t), &Op::LockAcquire(l), 0, 0);
            s.apply(ThreadId(t), &Op::CondWait(c, l), 0, 0);
        }
        s.apply(ThreadId(9), &Op::CondNotifyAll(c), 0, 0);
        for t in 1..=3u32 {
            assert!(s
                .conds[c.index()]
                .notified
                .contains(&ThreadId(t)));
        }
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut s = state(|spec| {
            spec.barrier("b", 3);
        });
        let b = BarrierId(0);
        let resume = Op::BarrierResume(b);
        match s.apply(ThreadId(1), &Op::BarrierWait(b), 0, 0) {
            Applied::BlockedRewrite(Op::BarrierResume(_)) => {}
            other => panic!("{other:?}"),
        }
        // Not resumable until the generation completes.
        assert!(!s.enabled(ThreadId(1), &resume, 0));
        match s.apply(ThreadId(2), &Op::BarrierWait(b), 0, 0) {
            Applied::BlockedRewrite(_) => {}
            other => panic!("{other:?}"),
        }
        // Third arrival completes immediately and releases the others.
        match s.apply(ThreadId(3), &Op::BarrierWait(b), 0, 0) {
            Applied::Done(_) => {}
            other => panic!("{other:?}"),
        }
        assert!(s.enabled(ThreadId(1), &resume, 0));
        assert!(s.enabled(ThreadId(2), &resume, 0));
        s.apply(ThreadId(1), &resume, 0, 0);
        assert!(!s.enabled(ThreadId(1), &resume, 0));
        s.apply(ThreadId(2), &resume, 0, 0);
        // Reusable: next generation starts empty.
        match s.apply(ThreadId(1), &Op::BarrierWait(b), 0, 0) {
            Applied::BlockedRewrite(_) => {}
            other => panic!("{other:?}"),
        }
        assert!(!s.enabled(ThreadId(1), &resume, 0));
    }

    #[test]
    fn semaphore_counts_permits() {
        let mut s = state(|spec| {
            spec.sem("s", 2);
        });
        let sem = SemId(0);
        assert!(s.enabled(ThreadId(1), &Op::SemAcquire(sem), 0));
        s.apply(ThreadId(1), &Op::SemAcquire(sem), 0, 0);
        s.apply(ThreadId(2), &Op::SemAcquire(sem), 0, 0);
        assert!(!s.enabled(ThreadId(3), &Op::SemAcquire(sem), 0));
        s.apply(ThreadId(1), &Op::SemRelease(sem), 0, 0);
        assert!(s.enabled(ThreadId(3), &Op::SemAcquire(sem), 0));
    }

    #[test]
    fn channel_fifo_close_semantics() {
        let mut s = state(|spec| {
            spec.chan("q");
        });
        let ch = ChanId(0);
        assert!(!s.enabled(ThreadId(1), &Op::ChanRecv(ch), 0));
        s.apply(ThreadId(0), &Op::ChanSend(ch, 10), 0, 0);
        s.apply(ThreadId(0), &Op::ChanSend(ch, 20), 0, 0);
        match s.apply(ThreadId(1), &Op::ChanRecv(ch), 0, 0) {
            Applied::Done(OpResult::MaybeValue(Some(10))) => {}
            other => panic!("{other:?}"),
        }
        s.apply(ThreadId(0), &Op::ChanClose(ch), 0, 0);
        // Drain remaining, then observe None.
        match s.apply(ThreadId(1), &Op::ChanRecv(ch), 0, 0) {
            Applied::Done(OpResult::MaybeValue(Some(20))) => {}
            other => panic!("{other:?}"),
        }
        assert!(s.enabled(ThreadId(1), &Op::ChanRecv(ch), 0));
        match s.apply(ThreadId(1), &Op::ChanRecv(ch), 0, 0) {
            Applied::Done(OpResult::MaybeValue(None)) => {}
            other => panic!("{other:?}"),
        }
        // Sending on a closed channel is a fault.
        match s.apply(ThreadId(0), &Op::ChanSend(ch, 1), 0, 0) {
            Applied::Fault(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rwlock_allows_shared_readers_excludes_writer() {
        let mut s = state(|spec| {
            spec.rwlock("rw");
        });
        let rw = RwLockId(0);
        s.apply(ThreadId(1), &Op::RwAcquireRead(rw), 0, 0);
        assert!(s.enabled(ThreadId(2), &Op::RwAcquireRead(rw), 0));
        assert!(!s.enabled(ThreadId(3), &Op::RwAcquireWrite(rw), 0));
        s.apply(ThreadId(2), &Op::RwAcquireRead(rw), 0, 0);
        s.apply(ThreadId(1), &Op::RwRelease(rw), 0, 0);
        s.apply(ThreadId(2), &Op::RwRelease(rw), 0, 0);
        assert!(s.enabled(ThreadId(3), &Op::RwAcquireWrite(rw), 0));
        s.apply(ThreadId(3), &Op::RwAcquireWrite(rw), 0, 0);
        assert!(!s.enabled(ThreadId(1), &Op::RwAcquireRead(rw), 0));
    }

    #[test]
    fn buffers_support_append_read_set() {
        let mut s = state(|spec| {
            spec.buf("log");
        });
        let b = BufId(0);
        s.apply(ROOT_THREAD, &Op::Buf(b, BufOp::Append(b"ab".to_vec())), 0, 0);
        match s.apply(ROOT_THREAD, &Op::Buf(b, BufOp::Len), 0, 0) {
            Applied::Done(OpResult::Value(2)) => {}
            other => panic!("{other:?}"),
        }
        s.apply(
            ROOT_THREAD,
            &Op::Buf(
                b,
                BufOp::Set {
                    index: 0,
                    byte: b'z',
                },
            ),
            0,
            0,
        );
        match s.apply(ROOT_THREAD, &Op::Buf(b, BufOp::ReadAll), 0, 0) {
            Applied::Done(OpResult::Bytes(bytes)) => assert_eq!(bytes, b"zb"),
            other => panic!("{other:?}"),
        }
        match s.apply(
            ROOT_THREAD,
            &Op::Buf(
                b,
                BufOp::Set {
                    index: 99,
                    byte: 0,
                },
            ),
            0,
            0,
        ) {
            Applied::Fault(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn block_reason_identifies_lock_holder() {
        let mut s = state(|spec| {
            spec.lock("m");
        });
        let l = LockId(0);
        s.apply(ThreadId(1), &Op::LockAcquire(l), 0, 0);
        match s.block_reason(ThreadId(2), &Op::LockAcquire(l), 0) {
            Some(BlockReason::Lock { lock, holder }) => {
                assert_eq!(lock, l);
                assert_eq!(holder, Some(ThreadId(1)));
            }
            other => panic!("{other:?}"),
        }
        assert!(s.block_reason(ThreadId(1), &Op::Yield, 0).is_none());
    }

    #[test]
    fn resource_spec_allocates_dense_ids() {
        let mut spec = ResourceSpec::new();
        let a = spec.var("a", 0);
        let b = spec.var("b", 1);
        let arr = spec.var_array("arr", 3, 9);
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        assert_eq!(arr, VarId(2));
        assert_eq!(spec.var_count(), 5);
        assert_eq!(spec.var_name(VarId(3)), "arr[1]");
        let l0 = spec.lock_array("row", 2);
        assert_eq!(l0, LockId(0));
        assert_eq!(spec.lock_name(LockId(1)), "row[1]");
    }
}
