//! Virtual-time accounting: work, span, serial sections, and makespan.
//!
//! The VM executes serially (one virtual thread between yield points), but
//! models a `P`-processor machine for *timing*. Three quantities are
//! accumulated during a run:
//!
//! * **work** — the sum of all costs across all threads;
//! * **span** — the largest single-thread total (the critical path through
//!   one thread; a lower bound no number of processors can beat);
//! * **serial** — the sum of costs that must execute inside a single global
//!   serialization point (claiming slots in a total-order log).
//!
//! The *makespan* estimate is the classic scheduling lower bound
//! `max(work / P, span, serial)`. Recording overhead for a mechanism is
//! `makespan(recorded run) / makespan(native run)`, which reproduces both
//! the per-mechanism overhead ordering and the RW-vs-SYNC scalability split
//! of the paper (DESIGN.md §2, experiments E2/E5).

use crate::ids::ThreadId;

/// Accumulates virtual time for one run.
#[derive(Debug, Clone, Default)]
pub struct VClock {
    per_thread: Vec<u64>,
    work: u64,
    serial: u64,
}

impl VClock {
    /// Creates an empty clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cost` units of ordinary work to `tid`.
    pub fn charge(&mut self, tid: ThreadId, cost: u64) {
        let idx = tid.index();
        if idx >= self.per_thread.len() {
            self.per_thread.resize(idx + 1, 0);
        }
        self.per_thread[idx] += cost;
        self.work += cost;
    }

    /// Charges `cost` units that execute inside the global serialization
    /// point (in addition to being work on `tid`).
    pub fn charge_serial(&mut self, tid: ThreadId, cost: u64) {
        self.charge(tid, cost);
        self.serial += cost;
    }

    /// Total work across all threads.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// The largest per-thread total.
    pub fn span(&self) -> u64 {
        self.per_thread.iter().copied().max().unwrap_or(0)
    }

    /// Total serialized work.
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// Virtual time accrued by one thread so far.
    pub fn thread_time(&self, tid: ThreadId) -> u64 {
        self.per_thread.get(tid.index()).copied().unwrap_or(0)
    }

    /// Estimated completion time on `processors` cores.
    ///
    /// # Panics
    ///
    /// Panics if `processors` is zero.
    pub fn makespan(&self, processors: u32) -> u64 {
        assert!(processors > 0, "a machine needs at least one processor");
        let area = self.work.div_ceil(u64::from(processors));
        area.max(self.span()).max(self.serial)
    }

    /// A coarse monotonically increasing "now" used by the simulated clock
    /// syscall: total work so far (independent of `P`, which keeps recorded
    /// timestamps comparable across machine sizes).
    pub fn now(&self) -> u64 {
        self.work
    }

    /// Serializes the clock into a snapshot section
    /// (see [`crate::snapshot`]).
    pub fn snapshot_into(&self, e: &mut crate::snapshot::Enc) {
        e.u64(self.per_thread.len() as u64);
        for t in &self.per_thread {
            e.u64(*t);
        }
        e.u64(self.work);
        e.u64(self.serial);
    }
}

/// Timing summary of a completed run, as reported in [`crate::vm::RunOutcome`].
#[derive(Debug, Clone)]
pub struct TimeReport {
    /// Number of simulated processors.
    pub processors: u32,
    /// Total work in virtual instruction units.
    pub work: u64,
    /// Critical path through a single thread.
    pub span: u64,
    /// Globally serialized work (total-order log appends).
    pub serial: u64,
    /// Estimated makespan on `processors` cores.
    pub makespan: u64,
}

impl TimeReport {
    /// Builds a report from a clock.
    pub fn from_clock(clock: &VClock, processors: u32) -> Self {
        TimeReport {
            processors,
            work: clock.work(),
            span: clock.span(),
            serial: clock.serial(),
            makespan: clock.makespan(processors),
        }
    }

    /// The slowdown of this run relative to a baseline run of the same
    /// program (typically the uninstrumented native run): `makespan /
    /// baseline.makespan`.
    pub fn slowdown_vs(&self, baseline: &TimeReport) -> f64 {
        if baseline.makespan == 0 {
            return 1.0;
        }
        self.makespan as f64 / baseline.makespan as f64
    }

    /// Recording overhead as a percentage: `(slowdown - 1) * 100`, the
    /// quantity the paper's overhead figures report.
    pub fn overhead_pct_vs(&self, baseline: &TimeReport) -> f64 {
        (self.slowdown_vs(baseline) - 1.0).max(0.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_and_span_accumulate() {
        let mut c = VClock::new();
        c.charge(ThreadId(0), 10);
        c.charge(ThreadId(1), 30);
        c.charge(ThreadId(0), 5);
        assert_eq!(c.work(), 45);
        assert_eq!(c.span(), 30);
        assert_eq!(c.thread_time(ThreadId(0)), 15);
        assert_eq!(c.thread_time(ThreadId(7)), 0);
    }

    #[test]
    fn makespan_is_area_bound_when_parallel() {
        let mut c = VClock::new();
        for t in 0..4 {
            c.charge(ThreadId(t), 100);
        }
        // 400 work on 4 cores with balanced threads: area bound dominates.
        assert_eq!(c.makespan(4), 100);
        assert_eq!(c.makespan(2), 200);
        assert_eq!(c.makespan(1), 400);
    }

    #[test]
    fn makespan_is_span_bound_when_imbalanced() {
        let mut c = VClock::new();
        c.charge(ThreadId(0), 1000);
        c.charge(ThreadId(1), 10);
        assert_eq!(c.makespan(8), 1000);
    }

    #[test]
    fn serial_work_floors_the_makespan() {
        let mut c = VClock::new();
        for t in 0..8 {
            c.charge(ThreadId(t), 100);
            c.charge_serial(ThreadId(t), 50);
        }
        // work = 1200, serial = 400. On 16 cores the area bound is 75 but
        // the serial section cannot be parallelized.
        assert_eq!(c.serial(), 400);
        assert_eq!(c.makespan(16), 400);
    }

    #[test]
    fn serial_charge_is_also_work() {
        let mut c = VClock::new();
        c.charge_serial(ThreadId(0), 7);
        assert_eq!(c.work(), 7);
        assert_eq!(c.span(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_is_rejected() {
        VClock::new().makespan(0);
    }

    #[test]
    fn slowdown_and_overhead() {
        let mut native = VClock::new();
        native.charge(ThreadId(0), 100);
        let mut rec = VClock::new();
        rec.charge(ThreadId(0), 250);
        let nr = TimeReport::from_clock(&native, 1);
        let rr = TimeReport::from_clock(&rec, 1);
        assert!((rr.slowdown_vs(&nr) - 2.5).abs() < 1e-9);
        assert!((rr.overhead_pct_vs(&nr) - 150.0).abs() < 1e-9);
        // A faster run reports zero overhead, not negative.
        assert_eq!(nr.overhead_pct_vs(&rr), 0.0);
    }

    #[test]
    fn rw_style_serial_recording_scales_worse_than_sync_style() {
        // Miniature of experiment E5: 8 threads, heavy memory traffic.
        let build = |serial_per_event: u64| {
            let mut c = VClock::new();
            for t in 0..8u32 {
                for _ in 0..1000 {
                    c.charge(ThreadId(t), 2);
                    if serial_per_event > 0 {
                        c.charge_serial(ThreadId(t), serial_per_event);
                    }
                }
            }
            c
        };
        let native = build(0);
        let rw = build(40);
        let over_p2 = rw.makespan(2) as f64 / native.makespan(2) as f64;
        let over_p16 = rw.makespan(16) as f64 / native.makespan(16) as f64;
        assert!(
            over_p16 > over_p2 * 2.0,
            "serialized recording must hurt more at higher core counts: {over_p2} vs {over_p16}"
        );
    }
}
