//! The instrumented operation vocabulary of the virtual machine.
//!
//! Every interaction a virtual thread has with shared state — memory
//! accesses, synchronization, simulated system calls, and the pure
//! instrumentation markers used by sketching (function entries and basic
//! blocks) — is described by an [`Op`]. A thread *announces* its next op to
//! the coordinator and parks; the coordinator applies the op's effect to the
//! VM state when (and if) the scheduler selects that thread, and hands back
//! an [`OpResult`].
//!
//! This announce/apply split is what makes execution deterministic: between
//! two ops a thread performs only thread-local computation, so the entire
//! run is a pure function of (program, inputs, scheduler decisions).

use crate::ids::{
    BarrierId, BbId, BufId, ChanId, CondId, ConnId, FdId, FuncId, LockId, RwLockId, SemId,
    ThreadId, VarId,
};
use std::fmt;

/// A simulated system call request.
///
/// System calls are the boundary where *input* nondeterminism enters the VM:
/// their results are produced by the simulated world ([`crate::sys`]) and are
/// recorded by every sketching mechanism (as in the paper, where syscall
/// results must be logged for any replay to be possible at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallOp {
    /// Open (creating if absent) a file in the simulated filesystem.
    FileOpen { path: String },
    /// Read up to `len` bytes from an open file at the fd's cursor.
    FileRead { fd: FdId, len: usize },
    /// Append bytes to an open file.
    FileWrite { fd: FdId, data: Vec<u8> },
    /// Close an open file.
    FileClose { fd: FdId },
    /// Accept the next simulated inbound connection; `None` once the
    /// workload script is exhausted.
    NetAccept,
    /// Receive up to `len` bytes from a connection; blocks until the script
    /// delivers data; `None` (EOF) when the peer has closed.
    NetRecv { conn: ConnId, len: usize },
    /// Send bytes on a connection (captured as the connection's output).
    NetSend { conn: ConnId, data: Vec<u8> },
    /// Close a connection.
    NetClose { conn: ConnId },
    /// Read the VM's virtual clock.
    ClockNow,
    /// Draw a value from the VM's input random-number stream.
    Random { bound: u64 },
    /// Write bytes to the program's standard output buffer.
    StdoutWrite { data: Vec<u8> },
}

impl SyscallOp {
    /// A short stable name for the syscall family, used in sketches,
    /// divergence reports, and logs.
    pub fn name(&self) -> &'static str {
        match self {
            SyscallOp::FileOpen { .. } => "open",
            SyscallOp::FileRead { .. } => "read",
            SyscallOp::FileWrite { .. } => "write",
            SyscallOp::FileClose { .. } => "close",
            SyscallOp::NetAccept => "accept",
            SyscallOp::NetRecv { .. } => "recv",
            SyscallOp::NetSend { .. } => "send",
            SyscallOp::NetClose { .. } => "netclose",
            SyscallOp::ClockNow => "clock",
            SyscallOp::Random { .. } => "random",
            SyscallOp::StdoutWrite { .. } => "stdout",
        }
    }
}

/// An operation on a shared byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufOp {
    /// Append bytes to the end of the buffer.
    Append(Vec<u8>),
    /// Read the whole buffer contents.
    ReadAll,
    /// Read the current length.
    Len,
    /// Truncate the buffer to zero length.
    Clear,
    /// Overwrite the byte at `index` (reads-modify-writes are split by the
    /// applications to open atomicity-violation windows).
    Set { index: usize, byte: u8 },
}

impl BufOp {
    /// Whether this operation writes to the buffer.
    pub fn is_write(&self) -> bool {
        matches!(self, BufOp::Append(_) | BufOp::Clear | BufOp::Set { .. })
    }
}

/// An announced instrumentation-point operation.
///
/// `Op` is pure data (no closures): thread-spawn bodies travel through a
/// side channel in the coordinator, so that ops can be cloned into traces
/// and serialized into logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// First announcement of a freshly spawned thread.
    ThreadStart,
    /// Read a shared scalar.
    Read(VarId),
    /// Write a shared scalar.
    Write(VarId, u64),
    /// Atomic read-modify-write: add `delta` and return the *old* value.
    /// (Used by correct code; buggy code splits this into Read + Write.)
    FetchAdd(VarId, i64),
    /// Compare-and-swap: if current == `expect`, store `new`; returns the
    /// old value either way.
    CompareSwap(VarId, u64, u64),
    /// Operate on a shared byte buffer.
    Buf(BufId, BufOp),
    /// Acquire a mutex (blocks while held).
    LockAcquire(LockId),
    /// Release a mutex held by this thread.
    LockRelease(LockId),
    /// Acquire a reader-writer lock for reading.
    RwAcquireRead(RwLockId),
    /// Acquire a reader-writer lock for writing.
    RwAcquireWrite(RwLockId),
    /// Release a reader-writer lock.
    RwRelease(RwLockId),
    /// Atomically release `lock` and wait on `cond`.
    CondWait(CondId, LockId),
    /// Internal second stage of a condition wait: the thread has been
    /// notified and must reacquire the lock. Announced by the coordinator on
    /// the waiter's behalf; never announced by user code directly.
    CondReacquire(CondId, LockId),
    /// Wake one waiter.
    CondNotifyOne(CondId),
    /// Wake all waiters.
    CondNotifyAll(CondId),
    /// Wait at a cyclic barrier.
    BarrierWait(BarrierId),
    /// Internal second stage of a barrier wait: the generation completed and
    /// the thread may proceed.
    BarrierResume(BarrierId),
    /// Decrement a semaphore (blocks at zero).
    SemAcquire(SemId),
    /// Increment a semaphore.
    SemRelease(SemId),
    /// Send a message on a FIFO channel (unbounded, never blocks).
    ChanSend(ChanId, u64),
    /// Receive from a FIFO channel (blocks while empty; `None` when closed
    /// and drained).
    ChanRecv(ChanId),
    /// Close a channel: receivers drain then observe `None`.
    ChanClose(ChanId),
    /// Spawn a new thread; the body is delivered out of band.
    Spawn,
    /// Wait for a thread to exit.
    Join(ThreadId),
    /// Perform a simulated system call.
    Syscall(SyscallOp),
    /// Function-entry marker (FUNC sketching).
    Func(FuncId),
    /// Basic-block marker (BB / BB-N sketching).
    BasicBlock(BbId),
    /// Pure thread-local computation of the given virtual cost. A yield
    /// point, but touches no shared state.
    Compute(u64),
    /// Voluntary yield with no other effect.
    Yield,
    /// Announce an application-level failure (the bug manifested). The run
    /// stops with [`crate::error::Failure::Assertion`].
    Fail(String),
    /// Final announcement of a thread before its body returns.
    ThreadExit,
}

impl Op {
    /// Whether this op reads or writes a shared memory location
    /// (scalar or buffer). These are the accesses the RW baseline records
    /// and the accesses whose interleaving PI-replay must explore.
    pub fn is_mem_access(&self) -> bool {
        matches!(
            self,
            Op::Read(_)
                | Op::Write(..)
                | Op::FetchAdd(..)
                | Op::CompareSwap(..)
                | Op::Buf(..)
        )
    }

    /// Whether this op writes shared memory.
    pub fn is_mem_write(&self) -> bool {
        match self {
            Op::Write(..) | Op::FetchAdd(..) | Op::CompareSwap(..) => true,
            Op::Buf(_, b) => b.is_write(),
            _ => false,
        }
    }

    /// Whether this op is a synchronization operation (SYNC sketching).
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Op::LockAcquire(_)
                | Op::LockRelease(_)
                | Op::RwAcquireRead(_)
                | Op::RwAcquireWrite(_)
                | Op::RwRelease(_)
                | Op::CondWait(..)
                | Op::CondReacquire(..)
                | Op::CondNotifyOne(_)
                | Op::CondNotifyAll(_)
                | Op::BarrierWait(_)
                | Op::BarrierResume(_)
                | Op::SemAcquire(_)
                | Op::SemRelease(_)
                | Op::ChanSend(..)
                | Op::ChanRecv(_)
                | Op::ChanClose(_)
                | Op::Spawn
                | Op::Join(_)
        )
    }

    /// Whether this op is a simulated system call (SYS sketching).
    pub fn is_syscall(&self) -> bool {
        matches!(self, Op::Syscall(_))
    }

    /// The shared-memory location this op touches, if any.
    ///
    /// Buffers are modeled as a single location each: the applications use
    /// them for coarse-grained shared structures (log buffers, work queues)
    /// where whole-object conflicts are the interesting ones.
    pub fn mem_location(&self) -> Option<MemLoc> {
        match self {
            Op::Read(v) | Op::Write(v, _) | Op::FetchAdd(v, _) | Op::CompareSwap(v, ..) => {
                Some(MemLoc::Var(*v))
            }
            Op::Buf(b, _) => Some(MemLoc::Buf(*b)),
            _ => None,
        }
    }

    /// A short human-readable mnemonic for reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::ThreadStart => "start",
            Op::Read(_) => "rd",
            Op::Write(..) => "wr",
            Op::FetchAdd(..) => "faa",
            Op::CompareSwap(..) => "cas",
            Op::Buf(_, b) => {
                if b.is_write() {
                    "bufw"
                } else {
                    "bufr"
                }
            }
            Op::LockAcquire(_) => "lock",
            Op::LockRelease(_) => "unlock",
            Op::RwAcquireRead(_) => "rdlock",
            Op::RwAcquireWrite(_) => "wrlock",
            Op::RwRelease(_) => "rwunlock",
            Op::CondWait(..) => "wait",
            Op::CondReacquire(..) => "rewait",
            Op::CondNotifyOne(_) => "signal",
            Op::CondNotifyAll(_) => "broadcast",
            Op::BarrierWait(_) => "barrier",
            Op::BarrierResume(_) => "barrier-resume",
            Op::SemAcquire(_) => "p",
            Op::SemRelease(_) => "v",
            Op::ChanSend(..) => "send",
            Op::ChanRecv(_) => "recv",
            Op::ChanClose(_) => "chclose",
            Op::Spawn => "spawn",
            Op::Join(_) => "join",
            Op::Syscall(s) => s.name(),
            Op::Func(_) => "func",
            Op::BasicBlock(_) => "bb",
            Op::Compute(_) => "compute",
            Op::Yield => "yield",
            Op::Fail(_) => "fail",
            Op::ThreadExit => "exit",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(v) => write!(f, "rd {v}"),
            Op::Write(v, x) => write!(f, "wr {v}={x}"),
            Op::FetchAdd(v, d) => write!(f, "faa {v}+={d}"),
            Op::CompareSwap(v, e, n) => write!(f, "cas {v} {e}->{n}"),
            Op::Buf(b, op) => write!(f, "{} {b}", if op.is_write() { "bufw" } else { "bufr" }),
            Op::LockAcquire(l) => write!(f, "lock {l}"),
            Op::LockRelease(l) => write!(f, "unlock {l}"),
            Op::CondWait(c, l) => write!(f, "wait {c}/{l}"),
            Op::CondReacquire(c, l) => write!(f, "rewait {c}/{l}"),
            Op::Join(t) => write!(f, "join {t}"),
            Op::Syscall(s) => write!(f, "sys {}", s.name()),
            Op::Func(id) => write!(f, "func {id}"),
            Op::BasicBlock(id) => write!(f, "bb {id}"),
            Op::Fail(msg) => write!(f, "fail: {msg}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// A shared-memory location: either a scalar cell or a whole buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemLoc {
    /// A scalar variable.
    Var(VarId),
    /// A byte buffer treated as one location.
    Buf(BufId),
}

impl fmt::Display for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemLoc::Var(v) => write!(f, "{v}"),
            MemLoc::Buf(b) => write!(f, "{b}"),
        }
    }
}

/// The value handed back to a thread when its announced op completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// No interesting result.
    Unit,
    /// A scalar value (reads, fetch-add old value, clock, random, length).
    Value(u64),
    /// Raw bytes (file reads, buffer reads).
    Bytes(Vec<u8>),
    /// Bytes or end-of-stream (connection receive).
    MaybeBytes(Option<Vec<u8>>),
    /// A channel message or `None` when the channel is closed and drained.
    MaybeValue(Option<u64>),
    /// A freshly accepted connection, or `None` when the workload script is
    /// exhausted.
    MaybeConn(Option<ConnId>),
    /// A new file descriptor.
    Fd(FdId),
    /// The id of a spawned thread.
    Tid(ThreadId),
}

impl OpResult {
    /// Extracts a scalar value.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Value`]; this indicates a bug
    /// in the VM, not in user code.
    pub fn value(self) -> u64 {
        match self {
            OpResult::Value(v) => v,
            other => panic!("VM invariant violated: expected Value, got {other:?}"),
        }
    }

    /// Extracts raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Bytes`].
    pub fn bytes(self) -> Vec<u8> {
        match self {
            OpResult::Bytes(b) => b,
            other => panic!("VM invariant violated: expected Bytes, got {other:?}"),
        }
    }

    /// Extracts optional bytes.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::MaybeBytes`].
    pub fn maybe_bytes(self) -> Option<Vec<u8>> {
        match self {
            OpResult::MaybeBytes(b) => b,
            other => panic!("VM invariant violated: expected MaybeBytes, got {other:?}"),
        }
    }

    /// Extracts an optional channel message.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::MaybeValue`].
    pub fn maybe_value(self) -> Option<u64> {
        match self {
            OpResult::MaybeValue(v) => v,
            other => panic!("VM invariant violated: expected MaybeValue, got {other:?}"),
        }
    }

    /// Extracts an optional connection id.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::MaybeConn`].
    pub fn maybe_conn(self) -> Option<ConnId> {
        match self {
            OpResult::MaybeConn(c) => c,
            other => panic!("VM invariant violated: expected MaybeConn, got {other:?}"),
        }
    }

    /// Extracts a file descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Fd`].
    pub fn fd(self) -> FdId {
        match self {
            OpResult::Fd(fd) => fd,
            other => panic!("VM invariant violated: expected Fd, got {other:?}"),
        }
    }

    /// Extracts a thread id.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`OpResult::Tid`].
    pub fn tid(self) -> ThreadId {
        match self {
            OpResult::Tid(t) => t,
            other => panic!("VM invariant violated: expected Tid, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_disjoint_for_core_classes() {
        let mem = Op::Read(VarId(0));
        let sync = Op::LockAcquire(LockId(1));
        let sys = Op::Syscall(SyscallOp::ClockNow);
        assert!(mem.is_mem_access() && !mem.is_sync() && !mem.is_syscall());
        assert!(sync.is_sync() && !sync.is_mem_access() && !sync.is_syscall());
        assert!(sys.is_syscall() && !sys.is_mem_access() && !sys.is_sync());
    }

    #[test]
    fn writes_are_accesses() {
        assert!(Op::Write(VarId(3), 7).is_mem_write());
        assert!(Op::Write(VarId(3), 7).is_mem_access());
        assert!(!Op::Read(VarId(3)).is_mem_write());
        assert!(Op::FetchAdd(VarId(1), -2).is_mem_write());
        assert!(Op::CompareSwap(VarId(1), 0, 1).is_mem_write());
    }

    #[test]
    fn buffer_ops_classify_by_variant() {
        assert!(Op::Buf(BufId(0), BufOp::Append(vec![1])).is_mem_write());
        assert!(!Op::Buf(BufId(0), BufOp::ReadAll).is_mem_write());
        assert!(Op::Buf(BufId(0), BufOp::Clear).is_mem_write());
        assert!(!Op::Buf(BufId(0), BufOp::Len).is_mem_write());
        assert!(Op::Buf(BufId(0), BufOp::Set { index: 0, byte: 1 }).is_mem_write());
    }

    #[test]
    fn mem_location_extraction() {
        assert_eq!(Op::Read(VarId(4)).mem_location(), Some(MemLoc::Var(VarId(4))));
        assert_eq!(
            Op::Buf(BufId(2), BufOp::Len).mem_location(),
            Some(MemLoc::Buf(BufId(2)))
        );
        assert_eq!(Op::Yield.mem_location(), None);
        assert_eq!(Op::LockAcquire(LockId(0)).mem_location(), None);
    }

    #[test]
    fn spawn_and_join_are_sync_ops() {
        assert!(Op::Spawn.is_sync());
        assert!(Op::Join(ThreadId(1)).is_sync());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Op::Read(VarId(1)).to_string(), "rd v1");
        assert_eq!(Op::Write(VarId(1), 5).to_string(), "wr v1=5");
        assert_eq!(Op::LockAcquire(LockId(2)).to_string(), "lock m2");
        assert_eq!(Op::Syscall(SyscallOp::NetAccept).to_string(), "sys accept");
    }

    #[test]
    fn result_accessors_extract_expected_variants() {
        assert_eq!(OpResult::Value(9).value(), 9);
        assert_eq!(OpResult::Bytes(vec![1, 2]).bytes(), vec![1, 2]);
        assert_eq!(OpResult::MaybeValue(None).maybe_value(), None);
        assert_eq!(OpResult::Tid(ThreadId(4)).tid(), ThreadId(4));
        assert_eq!(OpResult::Fd(FdId(1)).fd(), FdId(1));
        assert_eq!(OpResult::MaybeConn(Some(ConnId(2))).maybe_conn(), Some(ConnId(2)));
    }

    #[test]
    #[should_panic(expected = "VM invariant violated")]
    fn result_accessor_panics_on_mismatch() {
        OpResult::Unit.value();
    }

    #[test]
    fn syscall_names_are_stable() {
        assert_eq!(SyscallOp::NetAccept.name(), "accept");
        assert_eq!(SyscallOp::ClockNow.name(), "clock");
        assert_eq!(
            SyscallOp::FileOpen { path: "a".into() }.name(),
            "open"
        );
    }
}
