//! Wait-for-graph construction and cycle detection.
//!
//! When no announced thread is enabled (and the simulated world has no
//! pending arrivals to fast-forward to), the run is stuck. This module
//! classifies the stuck state: a cycle of lock waits is a classic deadlock
//! (two of the paper's thirteen bugs); anything else — a lost notification,
//! a starved semaphore, a channel nobody will ever feed — is reported with
//! the full blocked set so the diagnosis story is still actionable.

use crate::ids::{LockId, ThreadId};
use crate::state::BlockReason;
use std::collections::BTreeMap;

/// One blocked thread and what it waits on.
#[derive(Debug, Clone)]
pub struct BlockedThread {
    /// The blocked thread.
    pub tid: ThreadId,
    /// Why it cannot run.
    pub reason: BlockReason,
}

/// The outcome of analysing a stuck state.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// Threads in the detected wait cycle, or the full blocked set when no
    /// lock cycle exists.
    pub threads: Vec<ThreadId>,
    /// Locks on the cycle (empty for non-lock stuck states).
    pub locks: Vec<LockId>,
    /// Human-readable wait-for description.
    pub description: String,
    /// Whether a genuine lock cycle was found (vs. generic quiescence).
    pub is_cycle: bool,
}

/// Analyses a set of blocked threads and produces a report.
///
/// Lock-wait edges `waiter → holder` are followed to find a cycle; the
/// search is deterministic (threads visited in id order).
pub fn analyze(blocked: &[BlockedThread]) -> DeadlockReport {
    // waiter -> (lock, holder) for lock waits with a known holder.
    let mut edges: BTreeMap<ThreadId, (LockId, ThreadId)> = BTreeMap::new();
    for b in blocked {
        if let BlockReason::Lock {
            lock,
            holder: Some(holder),
        } = &b.reason
        {
            edges.insert(b.tid, (*lock, *holder));
        }
    }

    // Follow chains from each waiter; the first repeated thread closes a
    // cycle. Graph is functional (each waiter waits on one lock), so this
    // is linear.
    for &start in edges.keys() {
        let mut path: Vec<(ThreadId, LockId)> = Vec::new();
        let mut cur = start;
        // Chain ends at a runnable/absent thread: no cycle from this start.
        while let Some(&(lock, holder)) = edges.get(&cur) {
            if let Some(pos) = path.iter().position(|(t, _)| *t == cur) {
                let cycle = &path[pos..];
                let threads: Vec<ThreadId> = cycle.iter().map(|(t, _)| *t).collect();
                let locks: Vec<LockId> = cycle.iter().map(|(_, l)| *l).collect();
                let description = cycle
                    .iter()
                    .map(|(t, l)| format!("{t} waits {l}"))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                return DeadlockReport {
                    threads,
                    locks,
                    description,
                    is_cycle: true,
                };
            }
            path.push((cur, lock));
            cur = holder;
        }
    }

    // No lock cycle: report generic quiescence.
    let threads: Vec<ThreadId> = blocked.iter().map(|b| b.tid).collect();
    let description = blocked
        .iter()
        .map(|b| format!("{} blocked on {:?}", b.tid, b.reason))
        .collect::<Vec<_>>()
        .join("; ");
    DeadlockReport {
        threads,
        locks: Vec::new(),
        description,
        is_cycle: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CondId;

    fn lock_wait(tid: u32, lock: u32, holder: u32) -> BlockedThread {
        BlockedThread {
            tid: ThreadId(tid),
            reason: BlockReason::Lock {
                lock: LockId(lock),
                holder: Some(ThreadId(holder)),
            },
        }
    }

    #[test]
    fn abba_deadlock_is_a_cycle() {
        // t1 holds m0 waits m1; t2 holds m1 waits m0.
        let report = analyze(&[lock_wait(1, 1, 2), lock_wait(2, 0, 1)]);
        assert!(report.is_cycle);
        assert_eq!(report.threads.len(), 2);
        assert!(report.locks.contains(&LockId(0)));
        assert!(report.locks.contains(&LockId(1)));
    }

    #[test]
    fn three_way_cycle_is_detected() {
        let report = analyze(&[
            lock_wait(1, 1, 2),
            lock_wait(2, 2, 3),
            lock_wait(3, 0, 1),
        ]);
        assert!(report.is_cycle);
        assert_eq!(report.threads.len(), 3);
        assert_eq!(report.locks.len(), 3);
    }

    #[test]
    fn chain_without_cycle_is_not_a_cycle() {
        // t1 waits on a lock held by t2, which is blocked on a condvar —
        // a lost-notify hang, not a lock cycle.
        let report = analyze(&[
            lock_wait(1, 0, 2),
            BlockedThread {
                tid: ThreadId(2),
                reason: BlockReason::CondNotify { cond: CondId(0) },
            },
        ]);
        assert!(!report.is_cycle);
        assert_eq!(report.threads, vec![ThreadId(1), ThreadId(2)]);
        assert!(report.description.contains("CondNotify"));
    }

    #[test]
    fn cycle_in_larger_blocked_set_only_reports_cycle_members() {
        let report = analyze(&[
            lock_wait(1, 1, 2),
            lock_wait(2, 0, 1),
            // t5 waits on t1's lock but is outside the cycle.
            lock_wait(5, 0, 1),
        ]);
        assert!(report.is_cycle);
        assert_eq!(report.threads.len(), 2);
        assert!(!report.threads.contains(&ThreadId(5)));
    }

    #[test]
    fn self_wait_is_a_unit_cycle() {
        // A thread re-acquiring a lock it already holds (non-reentrant).
        let report = analyze(&[lock_wait(3, 2, 3)]);
        assert!(report.is_cycle);
        assert_eq!(report.threads, vec![ThreadId(3)]);
        assert_eq!(report.locks, vec![LockId(2)]);
    }

    #[test]
    fn empty_blocked_set_reports_quiescence() {
        let report = analyze(&[]);
        assert!(!report.is_cycle);
        assert!(report.threads.is_empty());
    }
}
