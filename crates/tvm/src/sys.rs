//! The simulated world: filesystem, network, clock, and input randomness.
//!
//! Everything nondeterministic that is *not* thread interleaving — file
//! contents, client connections, timestamps, random numbers — lives here and
//! is a deterministic function of the [`WorldConfig`]. System-call results
//! are therefore reproducible by construction, mirroring the paper's design
//! in which every sketching mechanism logs syscall results so that input
//! nondeterminism never has to be searched.
//!
//! The network model is *scripted*: a workload description lists client
//! sessions (arrival step, request bytes). `accept` blocks until the next
//! session arrives (the VM fast-forwards idle time), returns `None` once the
//! script is exhausted — which is how server applications drain and
//! terminate — and each connection's inbound bytes are available immediately
//! after accept.

use crate::ids::{ConnId, FdId};
use crate::op::{OpResult, SyscallOp};

use crate::rng::ChaCha8Rng;
use std::collections::BTreeMap;

/// One scripted client session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The VM step at which the connection becomes acceptable.
    pub arrival_step: u64,
    /// The full request byte stream the client sends.
    pub request: Vec<u8>,
}

impl Session {
    /// A session arriving at `arrival_step` carrying `request`.
    pub fn new(arrival_step: u64, request: impl Into<Vec<u8>>) -> Self {
        Session {
            arrival_step,
            request: request.into(),
        }
    }
}

/// Initial state of the simulated world.
#[derive(Debug, Clone, Default)]
pub struct WorldConfig {
    /// Initial filesystem contents (path → bytes).
    pub files: BTreeMap<String, Vec<u8>>,
    /// Scripted inbound connections, in arrival order.
    pub sessions: Vec<Session>,
    /// Seed for the input random stream (`Ctx::random`).
    pub input_seed: u64,
}

impl WorldConfig {
    /// Adds an initial file.
    pub fn with_file(mut self, path: &str, data: impl Into<Vec<u8>>) -> Self {
        self.files.insert(path.to_string(), data.into());
        self
    }

    /// Adds a scripted session.
    pub fn with_session(mut self, session: Session) -> Self {
        self.sessions.push(session);
        self
    }
}

/// Whether an `accept` can proceed right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptStatus {
    /// A session has arrived and is waiting.
    Ready,
    /// No session will ever arrive again; accept returns `None`.
    Exhausted,
    /// The next session arrives at this step; accept must block.
    WaitUntil(u64),
}

#[derive(Debug, Clone)]
struct OpenFd {
    path: String,
    cursor: usize,
    closed: bool,
}

#[derive(Debug, Clone)]
struct ConnState {
    inbox: Vec<u8>,
    read_cursor: usize,
    outbox: Vec<u8>,
    closed: bool,
}

/// The live simulated world during a run.
#[derive(Debug)]
pub struct World {
    files: BTreeMap<String, Vec<u8>>,
    fds: Vec<OpenFd>,
    sessions: Vec<Session>,
    next_session: usize,
    conns: Vec<ConnState>,
    rng: ChaCha8Rng,
    stdout: Vec<u8>,
}

impl World {
    /// Instantiates the world from its configuration.
    pub fn new(config: WorldConfig) -> Self {
        World {
            files: config.files,
            fds: Vec::new(),
            sessions: config.sessions,
            next_session: 0,
            conns: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(config.input_seed),
            stdout: Vec::new(),
        }
    }

    /// Accept readiness at the given VM step.
    pub fn accept_status(&self, step: u64) -> AcceptStatus {
        match self.sessions.get(self.next_session) {
            None => AcceptStatus::Exhausted,
            Some(s) if s.arrival_step <= step => AcceptStatus::Ready,
            Some(s) => AcceptStatus::WaitUntil(s.arrival_step),
        }
    }

    /// Applies a system call and produces its result.
    ///
    /// `now` is the virtual clock reading; `step` the VM step counter.
    /// Misuse (bad fd, recv on a closed connection, …) is reported as
    /// `Err(message)` and surfaces as a thread crash, the moral equivalent
    /// of `EBADF` taken fatally.
    pub fn apply(&mut self, op: &SyscallOp, now: u64, step: u64) -> Result<OpResult, String> {
        match op {
            SyscallOp::FileOpen { path } => {
                self.files.entry(path.clone()).or_default();
                self.fds.push(OpenFd {
                    path: path.clone(),
                    cursor: 0,
                    closed: false,
                });
                Ok(OpResult::Fd(FdId(self.fds.len() as u32 - 1)))
            }
            SyscallOp::FileRead { fd, len } => {
                let f = self.fd(*fd)?;
                let data = self
                    .files
                    .get(&f.path)
                    .map(|bytes| {
                        let start = f.cursor.min(bytes.len());
                        let end = (f.cursor + len).min(bytes.len());
                        bytes[start..end].to_vec()
                    })
                    .unwrap_or_default();
                let advanced = data.len();
                self.fds[fd.index()].cursor += advanced;
                Ok(OpResult::Bytes(data))
            }
            SyscallOp::FileWrite { fd, data } => {
                let f = self.fd(*fd)?;
                let path = f.path.clone();
                self.files
                    .get_mut(&path)
                    .ok_or_else(|| format!("file vanished: {path}"))?
                    .extend_from_slice(data);
                Ok(OpResult::Unit)
            }
            SyscallOp::FileClose { fd } => {
                self.fd(*fd)?;
                self.fds[fd.index()].closed = true;
                Ok(OpResult::Unit)
            }
            SyscallOp::NetAccept => match self.accept_status(step) {
                AcceptStatus::Exhausted => Ok(OpResult::MaybeConn(None)),
                AcceptStatus::Ready => {
                    let session = self.sessions[self.next_session].clone();
                    self.next_session += 1;
                    self.conns.push(ConnState {
                        inbox: session.request,
                        read_cursor: 0,
                        outbox: Vec::new(),
                        closed: false,
                    });
                    Ok(OpResult::MaybeConn(Some(ConnId(self.conns.len() as u32 - 1))))
                }
                AcceptStatus::WaitUntil(_) => {
                    Err("accept applied while no session is ready".to_string())
                }
            },
            SyscallOp::NetRecv { conn, len } => {
                let c = self.conn(*conn)?;
                if c.read_cursor >= c.inbox.len() {
                    return Ok(OpResult::MaybeBytes(None));
                }
                let start = c.read_cursor;
                let end = (start + len).min(c.inbox.len());
                let data = c.inbox[start..end].to_vec();
                self.conns[conn.index()].read_cursor = end;
                Ok(OpResult::MaybeBytes(Some(data)))
            }
            SyscallOp::NetSend { conn, data } => {
                self.conn(*conn)?;
                self.conns[conn.index()].outbox.extend_from_slice(data);
                Ok(OpResult::Unit)
            }
            SyscallOp::NetClose { conn } => {
                self.conn(*conn)?;
                self.conns[conn.index()].closed = true;
                Ok(OpResult::Unit)
            }
            SyscallOp::ClockNow => Ok(OpResult::Value(now)),
            SyscallOp::Random { bound } => {
                let raw: u64 = self.rng.next_u64();
                Ok(OpResult::Value(if *bound == 0 { raw } else { raw % bound }))
            }
            SyscallOp::StdoutWrite { data } => {
                self.stdout.extend_from_slice(data);
                Ok(OpResult::Unit)
            }
        }
    }

    fn fd(&self, fd: FdId) -> Result<&OpenFd, String> {
        match self.fds.get(fd.index()) {
            Some(f) if !f.closed => Ok(f),
            Some(_) => Err(format!("use of closed {fd}")),
            None => Err(format!("unknown {fd}")),
        }
    }

    fn conn(&self, conn: ConnId) -> Result<&ConnState, String> {
        match self.conns.get(conn.index()) {
            Some(c) if !c.closed => Ok(c),
            Some(_) => Err(format!("use of closed {conn}")),
            None => Err(format!("unknown {conn}")),
        }
    }

    /// The program's accumulated standard output.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Per-connection response bytes, in connection order.
    pub fn conn_outputs(&self) -> Vec<Vec<u8>> {
        self.conns.iter().map(|c| c.outbox.clone()).collect()
    }

    /// Final filesystem snapshot.
    pub fn files(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.files
    }

    /// Serializes the live world into a snapshot section (see
    /// [`crate::snapshot`]). The session script is config-derived and
    /// identical on replay, so only the `next_session` cursor is captured.
    pub fn snapshot_into(&self, e: &mut crate::snapshot::Enc) {
        e.u64(self.files.len() as u64);
        for (path, data) in &self.files {
            e.str(path);
            e.bytes(data);
        }
        e.u64(self.fds.len() as u64);
        for fd in &self.fds {
            e.str(&fd.path);
            e.u64(fd.cursor as u64);
            e.bool(fd.closed);
        }
        e.u64(self.next_session as u64);
        e.u64(self.conns.len() as u64);
        for c in &self.conns {
            e.bytes(&c.inbox);
            e.u64(c.read_cursor as u64);
            e.bytes(&c.outbox);
            e.bool(c.closed);
        }
        self.rng.snapshot_into(e);
        e.bytes(&self.stdout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(sessions: Vec<Session>) -> World {
        World::new(WorldConfig {
            sessions,
            input_seed: 1,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn file_round_trip() {
        let mut w = world(vec![]);
        let fd = w
            .apply(&SyscallOp::FileOpen { path: "log".into() }, 0, 0)
            .unwrap()
            .fd();
        w.apply(
            &SyscallOp::FileWrite {
                fd,
                data: b"hello".to_vec(),
            },
            0,
            0,
        )
        .unwrap();
        let fd2 = w
            .apply(&SyscallOp::FileOpen { path: "log".into() }, 0, 0)
            .unwrap()
            .fd();
        let data = w
            .apply(&SyscallOp::FileRead { fd: fd2, len: 3 }, 0, 0)
            .unwrap()
            .bytes();
        assert_eq!(data, b"hel");
        let rest = w
            .apply(&SyscallOp::FileRead { fd: fd2, len: 100 }, 0, 0)
            .unwrap()
            .bytes();
        assert_eq!(rest, b"lo");
    }

    #[test]
    fn closed_fd_is_a_fault() {
        let mut w = world(vec![]);
        let fd = w
            .apply(&SyscallOp::FileOpen { path: "a".into() }, 0, 0)
            .unwrap()
            .fd();
        w.apply(&SyscallOp::FileClose { fd }, 0, 0).unwrap();
        assert!(w.apply(&SyscallOp::FileRead { fd, len: 1 }, 0, 0).is_err());
    }

    #[test]
    fn accept_follows_script_order_and_arrival_times() {
        let mut w = world(vec![Session::new(5, b"one".to_vec()), Session::new(10, b"two".to_vec())]);
        assert_eq!(w.accept_status(0), AcceptStatus::WaitUntil(5));
        assert_eq!(w.accept_status(5), AcceptStatus::Ready);
        let c1 = w.apply(&SyscallOp::NetAccept, 0, 5).unwrap().maybe_conn();
        assert_eq!(c1, Some(ConnId(0)));
        assert_eq!(w.accept_status(7), AcceptStatus::WaitUntil(10));
        let c2 = w.apply(&SyscallOp::NetAccept, 0, 12).unwrap().maybe_conn();
        assert_eq!(c2, Some(ConnId(1)));
        assert_eq!(w.accept_status(12), AcceptStatus::Exhausted);
        assert_eq!(w.apply(&SyscallOp::NetAccept, 0, 12).unwrap().maybe_conn(), None);
    }

    #[test]
    fn recv_drains_then_eof() {
        let mut w = world(vec![Session::new(0, b"abcd".to_vec())]);
        let c = w
            .apply(&SyscallOp::NetAccept, 0, 0)
            .unwrap()
            .maybe_conn()
            .unwrap();
        let a = w
            .apply(&SyscallOp::NetRecv { conn: c, len: 3 }, 0, 0)
            .unwrap()
            .maybe_bytes();
        assert_eq!(a.as_deref(), Some(b"abc".as_ref()));
        let b = w
            .apply(&SyscallOp::NetRecv { conn: c, len: 3 }, 0, 0)
            .unwrap()
            .maybe_bytes();
        assert_eq!(b.as_deref(), Some(b"d".as_ref()));
        let eof = w
            .apply(&SyscallOp::NetRecv { conn: c, len: 3 }, 0, 0)
            .unwrap()
            .maybe_bytes();
        assert_eq!(eof, None);
    }

    #[test]
    fn send_accumulates_per_connection_output() {
        let mut w = world(vec![Session::new(0, b"req".to_vec())]);
        let c = w
            .apply(&SyscallOp::NetAccept, 0, 0)
            .unwrap()
            .maybe_conn()
            .unwrap();
        w.apply(
            &SyscallOp::NetSend {
                conn: c,
                data: b"200 ".to_vec(),
            },
            0,
            0,
        )
        .unwrap();
        w.apply(
            &SyscallOp::NetSend {
                conn: c,
                data: b"OK".to_vec(),
            },
            0,
            0,
        )
        .unwrap();
        assert_eq!(w.conn_outputs(), vec![b"200 OK".to_vec()]);
    }

    #[test]
    fn random_stream_is_seed_deterministic() {
        let draw = |seed: u64| {
            let mut w = World::new(WorldConfig {
                input_seed: seed,
                ..WorldConfig::default()
            });
            (0..5)
                .map(|_| {
                    w.apply(&SyscallOp::Random { bound: 1000 }, 0, 0)
                        .unwrap()
                        .value()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
        assert!(draw(42).iter().all(|v| *v < 1000));
    }

    #[test]
    fn clock_reports_now() {
        let mut w = world(vec![]);
        assert_eq!(w.apply(&SyscallOp::ClockNow, 777, 0).unwrap().value(), 777);
    }

    #[test]
    fn stdout_accumulates() {
        let mut w = world(vec![]);
        w.apply(
            &SyscallOp::StdoutWrite {
                data: b"a".to_vec(),
            },
            0,
            0,
        )
        .unwrap();
        w.apply(
            &SyscallOp::StdoutWrite {
                data: b"b".to_vec(),
            },
            0,
            0,
        )
        .unwrap();
        assert_eq!(w.stdout(), b"ab");
    }
}
