//! Execution traces and the recording observer interface.
//!
//! The coordinator emits one [`Event`] per applied operation, in global
//! order. An [`Observer`] installed on the VM sees every event as it is
//! applied and returns the recording charge (if any) to bill to the virtual
//! clock — this is how `pres-core`'s sketch recorder both captures its log
//! and accounts for its own overhead in a single pass, exactly as the
//! production-run instrumentation does in the paper.

use crate::ids::ThreadId;
use crate::op::{Op, OpResult};
use crate::snapshot::VmSnapshot;

/// One applied operation in global order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the global total order of applied operations (0-based).
    pub gseq: u64,
    /// The thread that performed the operation.
    pub tid: ThreadId,
    /// Position within the thread's own sequence of applied operations.
    pub tseq: u32,
    /// The operation.
    pub op: Op,
    /// The result handed back to the thread (normalized: bulky payloads may
    /// be elided from traces by configuration, never from recorder logs).
    pub result: OpResult,
}

impl Event {
    /// Approximate payload size in bytes if this event's *result* had to be
    /// logged (only syscalls need result logging; scheduling-order entries
    /// log ids only).
    pub fn result_payload_bytes(&self) -> u64 {
        match &self.result {
            OpResult::Bytes(b) => b.len() as u64,
            OpResult::MaybeBytes(Some(b)) => b.len() as u64,
            _ => 0,
        }
    }
}

/// The recording charge an observer wants billed for an event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObserverCharge {
    /// Cost added to the issuing thread's virtual time.
    pub thread_cost: u64,
    /// Cost added to the global serialization section (see
    /// [`crate::clock::VClock::charge_serial`]).
    pub serial_cost: u64,
}

impl ObserverCharge {
    /// A charge of zero (event not recorded).
    pub const FREE: ObserverCharge = ObserverCharge {
        thread_cost: 0,
        serial_cost: 0,
    };

    /// A purely thread-local charge: the recorded event appends to the
    /// issuing thread's own shard and claims no slot in the serialized
    /// global order (function/basic-block markers, thread-local implicit
    /// streams).
    pub const fn local(thread_cost: u64) -> ObserverCharge {
        ObserverCharge {
            thread_cost,
            serial_cost: 0,
        }
    }

    /// A charge with a serialized portion: the recorded event claims a
    /// slot in the single global order, so part of its cost lands in the
    /// serial section that floors the makespan (see
    /// [`crate::clock::VClock::charge_serial`]).
    pub const fn serialized(thread_cost: u64, serial_cost: u64) -> ObserverCharge {
        ObserverCharge {
            thread_cost,
            serial_cost,
        }
    }
}

/// Receives every applied event during a run.
///
/// Implementations must be deterministic functions of the event stream:
/// the VM guarantees it will deliver identical streams for identical
/// (program, scheduler) pairs, and replay correctness depends on observers
/// not introducing nondeterminism of their own.
pub trait Observer: Send {
    /// Called after each event is applied; returns the recording charge.
    fn on_event(&mut self, event: &Event) -> ObserverCharge;

    /// Asked once after every [`Observer::on_event`]: should the VM
    /// capture a checkpoint at this pick boundary? Epoch-segmented
    /// recorders answer `true` at epoch cuts; the default never
    /// checkpoints, so observers that don't opt in pay nothing.
    fn checkpoint_due(&mut self) -> bool {
        false
    }

    /// Delivers the snapshot captured after [`Observer::checkpoint_due`]
    /// returned `true`. The boundary is `snapshot.picks()`: exactly that
    /// many scheduler picks (equivalently, observer events) precede it.
    fn on_checkpoint(&mut self, _snapshot: &VmSnapshot) {}
}

/// An observer that records nothing and charges nothing (native runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &Event) -> ObserverCharge {
        ObserverCharge::FREE
    }
}

/// Whether and how the VM itself retains the full event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Keep nothing (production recording: the observer keeps its own log).
    Off,
    /// Keep nothing, but the run exists to *feed an observer*: every event
    /// is delivered to the installed [`Observer`], which maintains its own
    /// bounded analysis state (vector clocks, last-access tables) instead
    /// of the VM buffering the full event vector. Replay attempts under the
    /// feedback strategy run in this mode.
    Feedback,
    /// Keep every event (inspection, certificates, trace-diffing tests).
    Full,
}

/// The full event trace of a run (when [`TraceMode::Full`]).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if the event's `gseq` is not the next sequence number —
    /// traces are dense by construction.
    pub fn push(&mut self, event: Event) {
        assert_eq!(
            event.gseq,
            self.events.len() as u64,
            "trace must be dense in gseq"
        );
        self.events.push(event);
    }

    /// All events in global order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events of a single thread, in program order.
    pub fn thread_events(&self, tid: ThreadId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.tid == tid)
    }

    /// The event at a global sequence number.
    pub fn get(&self, gseq: u64) -> Option<&Event> {
        self.events.get(gseq as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;

    fn ev(gseq: u64, tid: u32, tseq: u32) -> Event {
        Event {
            gseq,
            tid: ThreadId(tid),
            tseq,
            op: Op::Read(VarId(0)),
            result: OpResult::Value(0),
        }
    }

    #[test]
    fn trace_is_dense_and_ordered() {
        let mut t = Trace::new();
        t.push(ev(0, 0, 0));
        t.push(ev(1, 1, 0));
        t.push(ev(2, 0, 1));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1).unwrap().tid, ThreadId(1));
        assert!(t.get(3).is_none());
    }

    #[test]
    #[should_panic(expected = "dense in gseq")]
    fn sparse_push_is_rejected() {
        let mut t = Trace::new();
        t.push(ev(5, 0, 0));
    }

    #[test]
    fn thread_events_filters_in_order() {
        let mut t = Trace::new();
        t.push(ev(0, 0, 0));
        t.push(ev(1, 1, 0));
        t.push(ev(2, 0, 1));
        let seqs: Vec<u32> = t.thread_events(ThreadId(0)).map(|e| e.tseq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn payload_bytes_counts_result_payloads() {
        let mut e = ev(0, 0, 0);
        assert_eq!(e.result_payload_bytes(), 0);
        e.result = OpResult::Bytes(vec![0; 12]);
        assert_eq!(e.result_payload_bytes(), 12);
        e.result = OpResult::MaybeBytes(Some(vec![0; 5]));
        assert_eq!(e.result_payload_bytes(), 5);
        e.result = OpResult::MaybeBytes(None);
        assert_eq!(e.result_payload_bytes(), 0);
    }

    #[test]
    fn null_observer_is_free() {
        let mut o = NullObserver;
        assert_eq!(o.on_event(&ev(0, 0, 0)), ObserverCharge::FREE);
    }
}
