//! Identifier newtypes for every VM-managed resource.
//!
//! Every shared object in the virtual machine — threads, shared variables,
//! buffers, locks, condition variables, barriers, semaphores, channels,
//! connections, files — is referred to by a small integer id wrapped in a
//! dedicated newtype. Ids are allocated densely by the VM, are stable for the
//! lifetime of a run, and are the unit of identity in traces, sketches and
//! race reports.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index backing this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// A virtual thread. The root thread of every program is `ThreadId(0)`.
    ThreadId,
    "t"
);
define_id!(
    /// A shared scalar variable (a single `u64` cell).
    VarId,
    "v"
);
define_id!(
    /// A shared byte buffer.
    BufId,
    "buf"
);
define_id!(
    /// A mutual-exclusion lock.
    LockId,
    "m"
);
define_id!(
    /// A reader-writer lock.
    RwLockId,
    "rw"
);
define_id!(
    /// A condition variable.
    CondId,
    "cv"
);
define_id!(
    /// A cyclic barrier.
    BarrierId,
    "bar"
);
define_id!(
    /// A counting semaphore.
    SemId,
    "sem"
);
define_id!(
    /// A FIFO message channel.
    ChanId,
    "ch"
);
define_id!(
    /// A simulated network connection.
    ConnId,
    "conn"
);
define_id!(
    /// A file descriptor in the simulated filesystem.
    FdId,
    "fd"
);
define_id!(
    /// A function identity used by FUNC sketching.
    FuncId,
    "fn"
);
define_id!(
    /// A basic-block identity used by BB / BB-N sketching.
    BbId,
    "bb"
);

/// The id of the root (main) virtual thread.
pub const ROOT_THREAD: ThreadId = ThreadId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert_eq!(LockId(0).to_string(), "m0");
        assert_eq!(BbId(17).to_string(), "bb17");
        assert_eq!(ConnId(2).to_string(), "conn2");
    }

    #[test]
    fn index_round_trips() {
        let v = VarId::from(9);
        assert_eq!(v.index(), 9);
        assert_eq!(v, VarId(9));
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(VarId(0) < VarId(10));
    }

    #[test]
    fn root_thread_is_zero() {
        assert_eq!(ROOT_THREAD, ThreadId(0));
    }
}
