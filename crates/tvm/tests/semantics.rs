//! Scenario tests for VM semantics that the inline unit tests only touch:
//! reader-writer locks, semaphores, channels under contention, condvar
//! broadcast wakeups, network fast-forward, and the virtual-time model.

use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

fn run_with(
    seed: u64,
    world: WorldConfig,
    build: impl FnOnce(&mut ResourceSpec) -> Box<dyn FnOnce(&mut Ctx) + Send>,
) -> pres_tvm::vm::RunOutcome {
    let mut spec = ResourceSpec::new();
    let body = build(&mut spec);
    pres_tvm::vm::run(
        VmConfig {
            trace_mode: TraceMode::Full,
            world,
            ..VmConfig::default()
        },
        spec,
        &mut RandomScheduler::new(seed),
        &mut NullObserver,
        move |ctx| body(ctx),
    )
}

#[test]
fn rwlock_allows_concurrent_readers_and_serializes_writers() {
    for seed in 0..20 {
        let out = run_with(seed, WorldConfig::default(), |spec| {
            let rw = spec.rwlock("table");
            let data = spec.var("data", 0);
            let readers_in = spec.var("readers_in", 0);
            let max_readers = spec.var("max_readers", 0);
            Box::new(move |ctx| {
                let mut kids = Vec::new();
                for i in 0..3 {
                    kids.push(ctx.spawn(&format!("r{i}"), move |ctx| {
                        for _ in 0..4 {
                            ctx.rw_read(rw);
                            let n = ctx.fetch_add(readers_in, 1) + 1;
                            let m = ctx.read(max_readers);
                            if n > m {
                                ctx.write(max_readers, n);
                            }
                            let _ = ctx.read(data);
                            ctx.compute(10);
                            ctx.fetch_add(readers_in, -1);
                            ctx.rw_unlock(rw);
                        }
                    }));
                }
                kids.push(ctx.spawn("w", move |ctx| {
                    for _ in 0..4 {
                        ctx.rw_write(rw);
                        // Writers must be alone.
                        let n = ctx.read(readers_in);
                        ctx.check(n == 0, "writer saw active readers");
                        let v = ctx.read(data);
                        ctx.write(data, v + 1);
                        ctx.rw_unlock(rw);
                        ctx.compute(8);
                    }
                }));
                for k in kids {
                    ctx.join(k);
                }
                let final_data = ctx.read(data);
                ctx.check(final_data == 4, "writer updates lost");
            })
        });
        assert_eq!(out.status, RunStatus::Completed, "seed {seed}: {}", out.status);
    }
}

#[test]
fn readers_do_overlap_under_some_schedule() {
    let mut saw_overlap = false;
    for seed in 0..40 {
        let out = run_with(seed, WorldConfig::default(), |spec| {
            let rw = spec.rwlock("t");
            let inside = spec.var("inside", 0);
            let overlap = spec.var("overlap", 0);
            Box::new(move |ctx| {
                let kids: Vec<ThreadId> = (0..3)
                    .map(|i| {
                        ctx.spawn(&format!("r{i}"), move |ctx| {
                            ctx.rw_read(rw);
                            let n = ctx.fetch_add(inside, 1) + 1;
                            if n >= 2 {
                                ctx.write(overlap, 1);
                            }
                            ctx.compute(30);
                            ctx.fetch_add(inside, -1);
                            ctx.rw_unlock(rw);
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
                let o = ctx.read(overlap);
                // Report via stdout so the harness can observe it.
                if o == 1 {
                    ctx.println("overlap");
                }
            })
        });
        if out.stdout == b"overlap\n" {
            saw_overlap = true;
            break;
        }
    }
    assert!(saw_overlap, "shared read locking never overlapped");
}

#[test]
fn semaphore_bounds_concurrency() {
    for seed in 0..20 {
        let out = run_with(seed, WorldConfig::default(), |spec| {
            let pool = spec.sem("pool", 2);
            let active = spec.var("active", 0);
            Box::new(move |ctx| {
                let kids: Vec<ThreadId> = (0..5)
                    .map(|i| {
                        ctx.spawn(&format!("u{i}"), move |ctx| {
                            ctx.sem_acquire(pool);
                            let n = ctx.fetch_add(active, 1) + 1;
                            ctx.check(n <= 2, "semaphore admitted a third user");
                            ctx.compute(20);
                            ctx.fetch_add(active, -1);
                            ctx.sem_release(pool);
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
            })
        });
        assert_eq!(out.status, RunStatus::Completed, "seed {seed}");
    }
}

#[test]
fn mpmc_channel_delivers_every_message_once() {
    for seed in 0..20 {
        let out = run_with(seed, WorldConfig::default(), |spec| {
            let ch = spec.chan("work");
            let sum = spec.var("sum", 0);
            Box::new(move |ctx| {
                let consumers: Vec<ThreadId> = (0..3)
                    .map(|i| {
                        ctx.spawn(&format!("c{i}"), move |ctx| {
                            while let Some(v) = ctx.recv(ch) {
                                ctx.fetch_add(sum, v as i64);
                            }
                        })
                    })
                    .collect();
                let producers: Vec<ThreadId> = (0..2)
                    .map(|i| {
                        ctx.spawn(&format!("p{i}"), move |ctx| {
                            for k in 1..=10u64 {
                                ctx.send(ch, k);
                                ctx.compute(3);
                            }
                        })
                    })
                    .collect();
                for p in producers {
                    ctx.join(p);
                }
                ctx.chan_close(ch);
                for c in consumers {
                    ctx.join(c);
                }
                let total = ctx.read(sum);
                ctx.check(total == 2 * 55, "messages lost or duplicated");
            })
        });
        assert_eq!(out.status, RunStatus::Completed, "seed {seed}: {}", out.status);
    }
}

#[test]
fn broadcast_wakes_all_waiters() {
    for seed in 0..20 {
        let out = run_with(seed, WorldConfig::default(), |spec| {
            let m = spec.lock("m");
            let cv = spec.cond("go");
            let gate = spec.var("gate", 0);
            let woke = spec.var("woke", 0);
            Box::new(move |ctx| {
                let kids: Vec<ThreadId> = (0..4)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            ctx.lock(m);
                            while ctx.read(gate) == 0 {
                                ctx.cond_wait(cv, m);
                            }
                            ctx.unlock(m);
                            ctx.fetch_add(woke, 1);
                        })
                    })
                    .collect();
                ctx.compute(50);
                ctx.lock(m);
                ctx.write(gate, 1);
                ctx.notify_all(cv);
                ctx.unlock(m);
                for k in kids {
                    ctx.join(k);
                }
                let n = ctx.read(woke);
                ctx.check(n == 4, "a waiter missed the broadcast");
            })
        });
        assert_eq!(out.status, RunStatus::Completed, "seed {seed}: {}", out.status);
    }
}

#[test]
fn accept_fast_forwards_idle_time_to_the_next_arrival() {
    // One session arrives far in the future; a single-threaded server must
    // not deadlock waiting for it.
    let world = WorldConfig::default().with_session(Session::new(10_000, b"late".to_vec()));
    let out = run_with(0, world, |spec| {
        let served = spec.var("served", 0);
        Box::new(move |ctx| {
            while let Some(conn) = ctx.sys_accept() {
                let req = ctx.sys_recv(conn, 16).unwrap_or_default();
                ctx.check(req == b"late", "wrong request");
                ctx.fetch_add(served, 1);
            }
            let n = ctx.read(served);
            ctx.check(n == 1, "late session not served");
        })
    });
    assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
}

#[test]
fn virtual_clock_is_monotonic_across_threads() {
    let out = run_with(3, WorldConfig::default(), |spec| {
        let last = spec.var("last", 0);
        let lock = spec.lock("m");
        Box::new(move |ctx| {
            let kids: Vec<ThreadId> = (0..3)
                .map(|i| {
                    ctx.spawn(&format!("t{i}"), move |ctx| {
                        for _ in 0..5 {
                            ctx.compute(10);
                            let now = ctx.now();
                            ctx.with_lock(lock, |ctx| {
                                let prev = ctx.read(last);
                                ctx.check(now >= prev || now + 1000 > prev,
                                    "clock regressed wildly");
                                if now > prev {
                                    ctx.write(last, now);
                                }
                            });
                        }
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        })
    });
    assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
}

#[test]
fn makespan_shrinks_with_more_processors_for_parallel_work() {
    let run_at = |p: u32| {
        let mut spec = ResourceSpec::new();
        let _x = spec.var("x", 0);
        let out = pres_tvm::vm::run(
            VmConfig {
                processors: p,
                ..VmConfig::default()
            },
            spec,
            &mut RandomScheduler::new(1),
            &mut NullObserver,
            |ctx| {
                let kids: Vec<ThreadId> = (0..8)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), |ctx| {
                            for _ in 0..10 {
                                ctx.compute(1000);
                            }
                        })
                    })
                    .collect();
                for k in kids {
                    ctx.join(k);
                }
            },
        );
        out.time.makespan
    };
    let m1 = run_at(1);
    let m4 = run_at(4);
    let m8 = run_at(8);
    assert!(m4 < m1, "4 cores {m4} must beat 1 core {m1}");
    assert!(m8 <= m4, "8 cores {m8} must not lose to 4 cores {m4}");
    assert!(m1 >= 8 * 10 * 1000, "serial bound");
}

#[test]
fn stats_count_event_classes_consistently() {
    let out = run_with(5, WorldConfig::default(), |spec| {
        let x = spec.var("x", 0);
        let m = spec.lock("m");
        Box::new(move |ctx| {
            ctx.func(1u32);
            ctx.bb(1u32);
            ctx.bb(2u32);
            ctx.with_lock(m, |ctx| {
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            });
            ctx.println("done");
        })
    });
    assert_eq!(out.stats.func_markers, 1);
    assert_eq!(out.stats.bb_markers, 2);
    assert_eq!(out.stats.mem_accesses, 2);
    assert_eq!(out.stats.sync_ops, 2); // lock + unlock
    assert_eq!(out.stats.syscalls, 1); // stdout
    assert_eq!(out.stats.spawns, 0);
    // Trace length equals applied ops equals schedule length.
    assert_eq!(out.trace.len() as u64, out.stats.total_ops);
    assert_eq!(out.schedule.len() as u64, out.stats.total_ops);
}
