//! Scenario tests for the checkpoint capture hook: a periodic observer
//! over a real multithreaded program, pinning the boundary model (picks ==
//! observer events), decode round-trips, and the byte-identity guarantees
//! the replay-from-checkpoint path depends on — same seed ⇒ same snapshot
//! bytes, across *both* executors (spawning and pooled).

use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;
use pres_tvm::trace::ObserverCharge;

/// Captures a snapshot every `every` events and remembers them all.
struct PeriodicCheckpointer {
    every: u64,
    seen: u64,
    snaps: Vec<VmSnapshot>,
}

impl PeriodicCheckpointer {
    fn new(every: u64) -> Self {
        Self {
            every,
            seen: 0,
            snaps: Vec::new(),
        }
    }
}

impl Observer for PeriodicCheckpointer {
    fn on_event(&mut self, _event: &Event) -> ObserverCharge {
        self.seen += 1;
        ObserverCharge::FREE
    }

    fn checkpoint_due(&mut self) -> bool {
        self.seen.is_multiple_of(self.every)
    }

    fn on_checkpoint(&mut self, snapshot: &VmSnapshot) {
        // The boundary contract: exactly `seen` picks precede the capture.
        assert_eq!(snapshot.picks(), self.seen, "boundary must equal events seen");
        self.snaps.push(snapshot.clone());
    }
}

type RootBody = Box<dyn FnOnce(&mut Ctx) + Send>;

fn contended_spec() -> (ResourceSpec, RootBody) {
    let mut spec = ResourceSpec::new();
    let counter = spec.var("counter", 0);
    let lock = spec.lock("guard");
    let body: RootBody = Box::new(move |ctx| {
        let mut kids = Vec::new();
        for i in 0..3 {
            kids.push(ctx.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..5 {
                    ctx.lock(lock);
                    let v = ctx.read(counter);
                    ctx.compute(3);
                    ctx.write(counter, v + 1);
                    ctx.unlock(lock);
                }
            }));
        }
        for k in kids {
            ctx.join(k);
        }
        let total = ctx.read(counter);
        ctx.check(total == 15, "increments under lock cannot be lost");
    });
    (spec, body)
}

fn run_spawning(seed: u64, every: u64) -> (RunOutcome, Vec<VmSnapshot>) {
    let (spec, body) = contended_spec();
    let mut obs = PeriodicCheckpointer::new(every);
    let out = pres_tvm::vm::run(
        VmConfig::default(),
        spec,
        &mut RandomScheduler::new(seed),
        &mut obs,
        move |ctx| body(ctx),
    );
    (out, obs.snaps)
}

fn run_pooled(seed: u64, every: u64, pool: &VthreadPool) -> (RunOutcome, Vec<VmSnapshot>) {
    let (spec, body) = contended_spec();
    let mut obs = PeriodicCheckpointer::new(every);
    let out = pres_tvm::vm::run_with_pool(
        VmConfig::default(),
        spec,
        &mut RandomScheduler::new(seed),
        &mut obs,
        pool,
        move |ctx| body(ctx),
    );
    (out, obs.snaps)
}

#[test]
fn periodic_checkpoints_fire_at_exact_boundaries() {
    let (out, snaps) = run_spawning(7, 10);
    assert_eq!(out.status, RunStatus::Completed);
    assert!(!snaps.is_empty(), "a contended run must cross epoch cuts");
    for (i, s) in snaps.iter().enumerate() {
        assert_eq!(s.picks(), (i as u64 + 1) * 10);
        assert!(s.threads() >= 1);
    }
}

#[test]
fn snapshots_round_trip_through_the_codec() {
    let (_, snaps) = run_spawning(11, 16);
    for s in &snaps {
        let back = VmSnapshot::decode(&s.encode()).expect("captured snapshot must decode");
        assert_eq!(&back, s);
    }
}

#[test]
fn same_seed_same_snapshot_bytes() {
    let (out_a, a) = run_spawning(42, 8);
    let (out_b, b) = run_spawning(42, 8);
    assert_eq!(out_a.status, out_b.status);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.encode(), y.encode(), "same-seed snapshots must be byte-identical");
    }
}

#[test]
fn executor_choice_is_invisible_to_snapshots() {
    // The pooled executor reuses OS threads (different `os_spawns` stats,
    // different warmness) but drives the identical schedule; snapshots
    // deliberately exclude executor-dependent state, so the bytes must
    // match the spawning run exactly. Run the pool twice so the second
    // pass is warm — warmness must be invisible too.
    let pool = VthreadPool::new(8);
    let (_, cold) = run_pooled(42, 8, &pool);
    let (_, warm) = run_pooled(42, 8, &pool);
    let (_, spawned) = run_spawning(42, 8);
    assert_eq!(cold.len(), spawned.len());
    for ((c, w), s) in cold.iter().zip(&warm).zip(&spawned) {
        assert_eq!(c.encode(), s.encode(), "pooled vs spawning must agree");
        assert_eq!(w.encode(), s.encode(), "pool warmness must be invisible");
    }
}

#[test]
fn checkpoints_capture_mid_run_progress() {
    let (out, snaps) = run_spawning(3, 12);
    assert_eq!(out.status, RunStatus::Completed);
    // Snapshots are strictly ordered in picks and step.
    for w in snaps.windows(2) {
        assert!(w[0].picks() < w[1].picks());
        assert!(w[0].step() <= w[1].step());
    }
    // The last capture happens before the run finishes.
    let last = snaps.last().unwrap();
    assert!(last.picks() <= out.stats.total_ops);
}
