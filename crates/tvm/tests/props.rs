//! Randomized property tests for the VM itself: structural invariants that
//! must hold for arbitrary generated programs and seeds.
//!
//! Originally proptest properties; now driven by the crate's own
//! deterministic generator ([`pres_tvm::rng`]) so the suite builds offline
//! with zero external dependencies.

use pres_tvm::prelude::*;
use pres_tvm::rng::ChaCha8Rng;
use pres_tvm::state::ResourceSpec;

#[derive(Debug, Clone)]
enum Step {
    Incr(u8),
    LockedIncr(u8),
    Send,
    TryRecv,
    Compute(u8),
    Barrier,
}

fn gen_steps(rng: &mut ChaCha8Rng) -> Vec<Step> {
    let n = rng.gen_range(1..10usize);
    (0..n)
        .map(|_| match rng.gen_range(0..6usize) {
            // Atomic and locked increments target disjoint variables:
            // mixing them on one cell is a genuine (intentional-bug-style)
            // race and would make the conservation property false.
            0 => Step::Incr(0),
            1 => Step::LockedIncr(1),
            2 => Step::Send,
            3 => Step::TryRecv,
            4 => Step::Compute(rng.gen_range(1..=29u32) as u8),
            _ => Step::Barrier,
        })
        .collect()
}

const WORKERS: u32 = 3;

fn run_generated(per_worker: &[Vec<Step>], seed: u64, p: u32) -> pres_tvm::vm::RunOutcome {
    let mut spec = ResourceSpec::new();
    let vars = spec.var_array("v", 2, 0);
    let lock = spec.lock("m");
    let chan = spec.chan("q");
    let bar = spec.barrier("b", WORKERS);
    let steps: Vec<Vec<Step>> = per_worker.to_vec();
    pres_tvm::vm::run(
        VmConfig {
            processors: p,
            trace_mode: TraceMode::Full,
            max_steps: 50_000,
            ..VmConfig::default()
        },
        spec,
        &mut RandomScheduler::new(seed),
        &mut NullObserver,
        move |ctx| {
            let kids: Vec<ThreadId> = steps
                .into_iter()
                .enumerate()
                .map(|(i, ops)| {
                    ctx.spawn(&format!("w{i}"), move |ctx| {
                        for op in ops {
                            match op {
                                Step::Incr(v) => {
                                    ctx.fetch_add(VarId(vars.0 + u32::from(v)), 1);
                                }
                                Step::LockedIncr(v) => {
                                    ctx.with_lock(lock, |ctx| {
                                        let x = ctx.read(VarId(vars.0 + u32::from(v)));
                                        ctx.write(VarId(vars.0 + u32::from(v)), x + 1);
                                    });
                                }
                                Step::Send => ctx.send(chan, 1),
                                Step::TryRecv => {
                                    // Barriers and channels both block; keep
                                    // programs deadlock-free by only sending.
                                    ctx.send(chan, 2);
                                }
                                Step::Compute(n) => ctx.compute(u64::from(n)),
                                Step::Barrier => ctx.barrier_wait(bar),
                            }
                        }
                        // Everyone reaches the final barrier generation the
                        // same number of times: pad to a common count.
                        ctx.barrier_wait(bar);
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        },
    )
}

/// Equalize barrier counts so generated programs never deadlock: every
/// worker gets the same number of `Barrier` steps (the max), appended.
fn equalize(mut workers: Vec<Vec<Step>>) -> Vec<Vec<Step>> {
    let max_barriers = workers
        .iter()
        .map(|w| w.iter().filter(|s| matches!(s, Step::Barrier)).count())
        .max()
        .unwrap_or(0);
    for w in &mut workers {
        let have = w.iter().filter(|s| matches!(s, Step::Barrier)).count();
        for _ in have..max_barriers {
            w.push(Step::Barrier);
        }
    }
    workers
}

#[test]
fn generated_programs_complete_and_balance() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xbea7);
    for _ in 0..24 {
        let workers = equalize(vec![
            gen_steps(&mut rng),
            gen_steps(&mut rng),
            gen_steps(&mut rng),
        ]);
        let seed = rng.next_u64();
        let p = rng.gen_range(1..=8u32);
        let total_incrs: u64 = workers
            .iter()
            .flatten()
            .filter(|s| matches!(s, Step::Incr(_) | Step::LockedIncr(_)))
            .count() as u64;
        let out = run_generated(&workers, seed, p);
        assert_eq!(&out.status, &RunStatus::Completed);
        // Every increment produced at least one memory access.
        assert!(out.stats.mem_accesses >= total_incrs);
        // Structural invariants.
        assert_eq!(out.trace.len() as u64, out.stats.total_ops);
        assert_eq!(out.schedule.len() as u64, out.stats.total_ops);
        for (i, e) in out.trace.events().iter().enumerate() {
            assert_eq!(e.gseq, i as u64);
        }
        // Per-thread sequence numbers are dense per thread.
        for t in 0..=WORKERS {
            for (i, e) in out.trace.thread_events(ThreadId(t)).enumerate() {
                assert_eq!(e.tseq, i as u32);
            }
        }
    }
}

#[test]
fn processor_count_never_changes_functional_results() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xfa57);
    for _ in 0..24 {
        // Different P values change timing and interleaving, but a program
        // whose shared updates are all atomic/locked must produce the same
        // final variable sums.
        let workers = equalize(vec![
            gen_steps(&mut rng),
            gen_steps(&mut rng),
            gen_steps(&mut rng),
        ]);
        let seed = rng.next_u64();
        let sum_of = |p: u32| -> u64 {
            let out = run_generated(&workers, seed, p);
            assert_eq!(out.status, RunStatus::Completed);
            // Recover final values by replaying writes in trace order.
            let mut v = [0u64; 2];
            for e in out.trace.events() {
                match e.op {
                    pres_tvm::op::Op::Write(var, x) if var.0 < 2 => v[var.0 as usize] = x,
                    pres_tvm::op::Op::FetchAdd(var, d) if var.0 < 2 => {
                        v[var.0 as usize] = v[var.0 as usize].wrapping_add_signed(d)
                    }
                    _ => {}
                }
            }
            v[0] + v[1]
        };
        let a = sum_of(1);
        let b = sum_of(8);
        assert_eq!(a, b);
    }
}
