//! Property tests for the VM itself: structural invariants that must hold
//! for arbitrary generated programs and seeds.

use proptest::prelude::*;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

#[derive(Debug, Clone)]
enum Step {
    Incr(u8),
    LockedIncr(u8),
    Send,
    TryRecv,
    Compute(u8),
    Barrier,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            // Atomic and locked increments target disjoint variables:
            // mixing them on one cell is a genuine (intentional-bug-style)
            // race and would make the conservation property false.
            Just(Step::Incr(0)),
            Just(Step::LockedIncr(1)),
            Just(Step::Send),
            Just(Step::TryRecv),
            (1u8..30).prop_map(Step::Compute),
            Just(Step::Barrier),
        ],
        1..10,
    )
}

const WORKERS: u32 = 3;

fn run_generated(per_worker: &[Vec<Step>], seed: u64, p: u32) -> pres_tvm::vm::RunOutcome {
    let mut spec = ResourceSpec::new();
    let vars = spec.var_array("v", 2, 0);
    let lock = spec.lock("m");
    let chan = spec.chan("q");
    let bar = spec.barrier("b", WORKERS);
    let steps: Vec<Vec<Step>> = per_worker.to_vec();
    pres_tvm::vm::run(
        VmConfig {
            processors: p,
            trace_mode: TraceMode::Full,
            max_steps: 50_000,
            ..VmConfig::default()
        },
        spec,
        &mut RandomScheduler::new(seed),
        &mut NullObserver,
        move |ctx| {
            let kids: Vec<ThreadId> = steps
                .into_iter()
                .enumerate()
                .map(|(i, ops)| {
                    ctx.spawn(&format!("w{i}"), move |ctx| {
                        for op in ops {
                            match op {
                                Step::Incr(v) => {
                                    ctx.fetch_add(VarId(vars.0 + u32::from(v)), 1);
                                }
                                Step::LockedIncr(v) => {
                                    ctx.with_lock(lock, |ctx| {
                                        let x = ctx.read(VarId(vars.0 + u32::from(v)));
                                        ctx.write(VarId(vars.0 + u32::from(v)), x + 1);
                                    });
                                }
                                Step::Send => ctx.send(chan, 1),
                                Step::TryRecv => {
                                    // Barriers and channels both block; keep
                                    // programs deadlock-free by only sending.
                                    ctx.send(chan, 2);
                                }
                                Step::Compute(n) => ctx.compute(u64::from(n)),
                                Step::Barrier => ctx.barrier_wait(bar),
                            }
                        }
                        // Everyone reaches the final barrier generation the
                        // same number of times: pad to a common count.
                        ctx.barrier_wait(bar);
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        },
    )
}

/// Equalize barrier counts so generated programs never deadlock: every
/// worker gets the same number of `Barrier` steps (the max), appended.
fn equalize(mut workers: Vec<Vec<Step>>) -> Vec<Vec<Step>> {
    let max_barriers = workers
        .iter()
        .map(|w| w.iter().filter(|s| matches!(s, Step::Barrier)).count())
        .max()
        .unwrap_or(0);
    for w in &mut workers {
        let have = w.iter().filter(|s| matches!(s, Step::Barrier)).count();
        for _ in have..max_barriers {
            w.push(Step::Barrier);
        }
    }
    workers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_complete_and_balance(
        w1 in arb_steps(), w2 in arb_steps(), w3 in arb_steps(),
        seed in any::<u64>(),
        p in 1u32..9,
    ) {
        let workers = equalize(vec![w1, w2, w3]);
        let total_incrs: u64 = workers
            .iter()
            .flatten()
            .filter(|s| matches!(s, Step::Incr(_) | Step::LockedIncr(_)))
            .count() as u64;
        let out = run_generated(&workers, seed, p);
        prop_assert_eq!(&out.status, &RunStatus::Completed);
        // Every increment produced at least one memory access.
        prop_assert!(out.stats.mem_accesses >= total_incrs);
        // Structural invariants.
        prop_assert_eq!(out.trace.len() as u64, out.stats.total_ops);
        prop_assert_eq!(out.schedule.len() as u64, out.stats.total_ops);
        for (i, e) in out.trace.events().iter().enumerate() {
            prop_assert_eq!(e.gseq, i as u64);
        }
        // Per-thread sequence numbers are dense per thread.
        for t in 0..=WORKERS {
            let mut expected = 0u32;
            for e in out.trace.thread_events(ThreadId(t)) {
                prop_assert_eq!(e.tseq, expected);
                expected += 1;
            }
        }
    }

    #[test]
    fn processor_count_never_changes_functional_results(
        w1 in arb_steps(), w2 in arb_steps(), w3 in arb_steps(),
        seed in any::<u64>(),
    ) {
        // Different P values change timing and interleaving, but a program
        // whose shared updates are all atomic/locked must produce the same
        // final variable sums.
        let workers = equalize(vec![w1, w2, w3]);
        let sum_of = |p: u32| -> u64 {
            let out = run_generated(&workers, seed, p);
            assert_eq!(out.status, RunStatus::Completed);
            // Recover final values by replaying writes in trace order.
            let mut v = [0u64; 2];
            for e in out.trace.events() {
                match e.op {
                    pres_tvm::op::Op::Write(var, x) if var.0 < 2 => v[var.0 as usize] = x,
                    pres_tvm::op::Op::FetchAdd(var, d) if var.0 < 2 => {
                        v[var.0 as usize] = v[var.0 as usize].wrapping_add_signed(d)
                    }
                    _ => {}
                }
            }
            v[0] + v[1]
        };
        let a = sum_of(1);
        let b = sum_of(8);
        prop_assert_eq!(a, b);
    }
}
