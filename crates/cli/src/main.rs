//! `pres` — the command-line workflow of the PRES reproduction.
//!
//! ```text
//! pres list                                       # the evaluation corpus
//! pres record      --bug <id> [--mechanism SYNC] [--out sketch.pres]
//!                  [--ring-epochs K --epoch-entries N]   # always-on ring mode
//! pres reproduce   --bug <id> --sketch sketch.pres [--workers N] [--cert cert.pres]
//! pres replay      --bug <id> --cert cert.pres [--report]
//! pres sketch-info --sketch sketch.pres
//! pres overhead    --app <id> [--processors 8]
//!
//! pres serve       --addr 127.0.0.1:7557 --data-dir DIR [--job-workers N]
//!                  [--frontend sharded|legacy] [--conn-workers N] [--max-connections N]
//!                  [--journal-batch N] [--journal-batch-usecs N] [--sketch-cache-bytes N]
//! pres submit      --addr HOST:PORT --bug <id> --sketch sketch.pres [--wait-secs N]
//!                  [--chunk-bytes N]
//! pres status      --addr HOST:PORT --job N
//! pres fetch-cert  --addr HOST:PORT --job N [--out cert.pres]
//! pres shutdown    --addr HOST:PORT
//! ```
//!
//! `record` searches production schedules until the bug manifests while
//! recording, then writes the binary sketch log. `reproduce` runs the
//! coordinated-replay exploration and writes a reproduction certificate.
//! `replay` reproduces deterministically from the certificate, optionally
//! printing the diagnosis report.
//!
//! The second block drives the [`pres_svc`] daemon: `serve` runs the
//! replay-as-a-service loop (content-addressed sketch store + job queue);
//! the rest are thin wrappers over [`pres_svc::Client`].

mod args;

use args::{Args, UsageError};
use pres_apps::registry::{all_apps, all_bugs, WorkloadScale};
use pres_core::api::Pres;
use pres_core::codec::{
    checkpoint_segment_bytes, container_version, decode_sketch, encode_sketch, encode_sketch_v1,
    v2_layout,
};
use pres_core::inspect::{failure_report, InspectOptions};
use pres_core::stats::{ExploreStats, SketchStats};
use pres_core::program::Program;
use pres_core::sketch::Mechanism;
use pres_core::{Certificate, ExecutorKind, FeedbackMode, RingConfig, StopToken};
use pres_svc::{Client, FrontendKind, QueueConfig, ServeOptions, Server};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage:
  pres list
  pres record      --bug <id> [--mechanism RW|BB|BB-N|FUNC|SYS|SYNC] [--seed N] [--out FILE]
                   [--codec v1|v2] [--ring-epochs N] [--epoch-entries N] [--epoch-cost N]
  pres reproduce   --bug <id> --sketch FILE [--max-attempts N] [--workers N]
                   [--pool N] [--executor pooled|spawning]
                   [--feedback streaming|buffered] [--timeout-secs N] [--cert FILE]
  pres replay      --bug <id> --cert FILE [--report]
  pres sketch-info --sketch FILE
  pres overhead    --app <id> [--mechanism SYNC] [--processors N]
  pres serve       [--addr HOST:PORT] [--data-dir DIR] [--job-workers N]
                   [--max-attempts N] [--job-timeout-secs N] [--log-interval-secs N]
                   [--frontend sharded|legacy] [--conn-workers N] [--max-connections N]
                   [--journal-batch N] [--journal-batch-usecs N] [--sketch-cache-bytes N]
                   [--peer HOST:PORT]... [--advertise HOST:PORT] [--replicas N]
                   [--auth-token SECRET]
  pres submit      --addr HOST:PORT --bug <id> --sketch FILE [--wait-secs N]
                   [--chunk-bytes N] [--auth-token SECRET] [--connect-attempts N]
  pres status      --addr HOST:PORT --job N [--auth-token SECRET]
  pres fetch-cert  --addr HOST:PORT --job N [--out FILE] [--auth-token SECRET]
  pres stats       --addr HOST:PORT [--auth-token SECRET]
  pres shutdown    --addr HOST:PORT [--auth-token SECRET]
  pres fsck        --data-dir DIR [--self HOST:PORT --peer HOST:PORT...
                   [--replicas N] [--auth-token SECRET]]";

fn main() -> ExitCode {
    // `--peer` repeats (one occurrence per cluster peer); everything else
    // keeps the duplicate-flag typo check.
    let args = match Args::parse_with_repeats(std::env::args().skip(1), &["peer"]) {
        Ok(a) => a,
        Err(e) => return fail(&e.to_string()),
    };
    let result = match args.command.as_deref() {
        Some("list") => cmd_list(&args),
        Some("record") => cmd_record(&args),
        Some("reproduce") => cmd_reproduce(&args),
        Some("replay") => cmd_replay(&args),
        Some("sketch-info") => cmd_sketch_info(&args),
        Some("overhead") => cmd_overhead(&args),
        Some("serve") => cmd_serve(&args),
        Some("submit") => cmd_submit(&args),
        Some("status") => cmd_status(&args),
        Some("fetch-cert") => cmd_fetch_cert(&args),
        Some("stats") => cmd_stats(&args),
        Some("shutdown") => cmd_shutdown(&args),
        Some("fsck") => cmd_fsck(&args),
        Some(other) => Err(UsageError(format!("unknown command '{other}'\n{USAGE}"))),
        None => Err(UsageError(USAGE.to_string())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e.to_string()),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("pres: {msg}");
    ExitCode::FAILURE
}

fn parse_mechanism(raw: &str) -> Result<Mechanism, UsageError> {
    Ok(match raw.to_uppercase().as_str() {
        "RW" => Mechanism::Rw,
        "SYNC" => Mechanism::Sync,
        "SYS" => Mechanism::Sys,
        "FUNC" => Mechanism::Func,
        "BB" => Mechanism::Bb,
        other => {
            if let Some(n) = other.strip_prefix("BB-") {
                Mechanism::BbN(n.parse().map_err(|_| {
                    UsageError(format!("bad BB-N mechanism '{raw}'"))
                })?)
            } else {
                return Err(UsageError(format!(
                    "unknown mechanism '{raw}' (RW, BB, BB-N, FUNC, SYS, SYNC)"
                )));
            }
        }
    })
}

fn bug_program(id: &str) -> Result<Box<dyn Program>, UsageError> {
    all_bugs()
        .into_iter()
        .find(|b| b.id == id)
        .map(|b| b.program())
        .ok_or_else(|| {
            UsageError(format!("unknown bug '{id}' — see `pres list`"))
        })
}

fn cmd_list(args: &Args) -> Result<(), UsageError> {
    args.finish()?;
    println!("applications (bug-free workloads for `pres overhead`):");
    for app in all_apps() {
        println!("  {:10} [{}]", app.id, app.category.label());
    }
    println!("\nbugs (for `pres record` / `pres reproduce` / `pres replay`):");
    for bug in all_bugs() {
        println!(
            "  {:28} {:22} {}",
            bug.id,
            bug.class.label(),
            bug.modeled_after
        );
    }
    Ok(())
}

fn cmd_record(args: &Args) -> Result<(), UsageError> {
    let bug = args.required("bug")?;
    let mechanism = parse_mechanism(&args.get("mechanism").unwrap_or_else(|| "SYNC".into()))?;
    let seed: Option<u64> = args.get_parsed("seed")?;
    let out = args.get("out").unwrap_or_else(|| format!("{bug}.sketch"));
    let codec = args.get("codec");
    let ring_epochs: Option<usize> = args.get_parsed("ring-epochs")?;
    let epoch_entries: Option<u64> = args.get_parsed("epoch-entries")?;
    let epoch_cost: Option<u64> = args.get_parsed("epoch-cost")?;
    args.finish()?;

    // Any ring flag switches recording to always-on mode; the others
    // keep their `RingConfig` defaults.
    let ring = (ring_epochs.is_some() || epoch_entries.is_some() || epoch_cost.is_some()).then(
        || {
            let mut ring = RingConfig::default();
            if let Some(k) = ring_epochs {
                ring.ring_epochs = k.max(1);
            }
            if let Some(n) = epoch_entries {
                ring.epoch_entries = n;
            }
            if let Some(c) = epoch_cost {
                ring.epoch_cost = c;
            }
            ring
        },
    );
    // A ring flush is a v3 container by construction (the checkpoint has
    // nowhere to live in v1/v2), so --codec only applies to classic mode.
    let codec = match (&ring, codec.as_deref()) {
        (Some(_), None) | (Some(_), Some("v3")) => "v3".to_string(),
        (Some(_), Some(other)) => {
            return Err(UsageError(format!(
                "--codec {other} cannot carry a ring checkpoint (ring mode writes v3)"
            )))
        }
        (None, None) => "v2".to_string(),
        (None, Some(c @ ("v1" | "v2"))) => c.to_string(),
        (None, Some(other)) => {
            return Err(UsageError(format!(
                "bad --codec '{other}' (expected v1 or v2)"
            )));
        }
    };

    let prog = bug_program(&bug)?;
    let mut pres = Pres::new(mechanism);
    if let Some(ring) = ring.clone() {
        pres = pres.with_ring(ring);
    }
    let recorded = match seed {
        Some(s) => {
            let run = pres.record(prog.as_ref(), s);
            if !run.failed() {
                return Err(UsageError(format!(
                    "seed {s} completed cleanly; omit --seed to search for a failing run"
                )));
            }
            run
        }
        None => pres
            .record_until_failure(prog.as_ref(), 0..10_000)
            .ok_or_else(|| UsageError("no failing production run in 10000 schedules".into()))?,
    };
    println!(
        "recorded failing run: {} (seed {}, {} sketch entries, overhead {:.2}%)",
        recorded.sketch.meta.failure_signature,
        recorded.sketch.meta.seed,
        recorded.sketch.len(),
        recorded.overhead_pct()
    );
    if let Some(cp) = &recorded.sketch.checkpoint {
        println!(
            "ring flush: {} retained epoch(s) from pick {} ({} entries kept, {} epoch(s) / {} entries evicted)",
            cp.epochs.len(),
            cp.boundary,
            cp.retained_entries(),
            cp.dropped_epochs,
            cp.dropped_entries,
        );
    }
    let bytes = if codec == "v1" {
        encode_sketch_v1(&recorded.sketch)
    } else {
        encode_sketch(&recorded.sketch)
    };
    if ring.is_some() {
        // The flush file is the failure's only evidence: write it with
        // the daemon store's durability chain (stage → fsync → rename →
        // dir sync), never a bare `fs::write`.
        pres_svc::flush::write_flush(std::path::Path::new(&out), &bytes)
            .map_err(|e| UsageError(format!("cannot flush {out}: {e}")))?;
    } else {
        std::fs::write(&out, &bytes)
            .map_err(|e| UsageError(format!("cannot write {out}: {e}")))?;
    }
    println!("wrote {} ({} bytes, codec {})", out, bytes.len(), codec);
    Ok(())
}

fn cmd_reproduce(args: &Args) -> Result<(), UsageError> {
    let bug = args.required("bug")?;
    let sketch_path = args.required("sketch")?;
    let max_attempts: u32 = args.get_parsed("max-attempts")?.unwrap_or(1000);
    // `with_workers` clamps to >= 1; clamp here too so the summary line
    // reports the worker count actually used.
    let workers: usize = args.get_parsed("workers")?.unwrap_or(1).max(1);
    let pool_width: Option<usize> = args.get_parsed("pool")?;
    let executor = match args.get("executor").as_deref() {
        None | Some("pooled") => ExecutorKind::Pooled,
        Some("spawning") => ExecutorKind::Spawning,
        Some(other) => {
            return Err(UsageError(format!(
                "bad --executor '{other}' (expected pooled or spawning)"
            )))
        }
    };
    let feedback_mode = match args.get("feedback").as_deref() {
        None | Some("streaming") => FeedbackMode::Streaming,
        Some("buffered") => FeedbackMode::Buffered,
        Some(other) => {
            return Err(UsageError(format!(
                "bad --feedback '{other}' (expected streaming or buffered)"
            )))
        }
    };
    let timeout_secs: Option<u64> = args.get_parsed("timeout-secs")?;
    let cert_path = args.get("cert").unwrap_or_else(|| format!("{bug}.cert"));
    args.finish()?;

    let prog = bug_program(&bug)?;
    let data = std::fs::read(&sketch_path)
        .map_err(|e| UsageError(format!("cannot read {sketch_path}: {e}")))?;
    let sketch = decode_sketch(&data).map_err(|e| UsageError(e.to_string()))?;
    if sketch.meta.program != prog.name() {
        return Err(UsageError(format!(
            "sketch was recorded from '{}', not '{}'",
            sketch.meta.program,
            prog.name()
        )));
    }
    let mut pres = Pres::new(sketch.mechanism)
        .with_max_attempts(max_attempts)
        .with_workers(workers)
        .with_feedback_mode(feedback_mode)
        .with_executor(executor);
    if let Some(width) = pool_width {
        pres = pres.with_pool_width(width);
    }
    // Clamp workers x pool width against the host. The library reports
    // the decision; the CLI decides it is worth a stderr warning.
    let outcome = pres.explore.validate();
    if let Some(clamp) = &outcome.clamp {
        eprintln!("pres: {}", clamp.warning());
    }
    let clamped = outcome.clamp.is_some();
    pres.explore = outcome.config;
    if let Some(secs) = timeout_secs {
        pres.explore.stop = Some(StopToken::after(Duration::from_secs(secs)));
    }
    let workers = pres.explore.workers;
    let mut recorded_like = pres.record(prog.as_ref(), sketch.meta.seed);
    // Reproduce against the on-disk sketch (the run above re-derives the
    // native/overhead context only).
    recorded_like.sketch = sketch;
    let started = Instant::now();
    let repro = pres.reproduce(prog.as_ref(), &recorded_like);
    let elapsed = started.elapsed();
    for h in &repro.history {
        println!(
            "attempt {:3}: {} ({} constraints)",
            h.index, h.status, h.constraints
        );
    }
    println!("exploration: {}", ExploreStats::of(&repro).with_clamp(clamped));
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        println!(
            "throughput: {:.1} attempts/s ({} attempts in {:.3}s, {} feedback, {} executor)",
            f64::from(repro.attempts) / secs,
            repro.attempts,
            secs,
            feedback_mode.name(),
            pres.explore.executor.name()
        );
    }
    if !repro.reproduced {
        if repro.stopped {
            return Err(UsageError(format!(
                "timed out after {} attempt(s) (--timeout-secs {})",
                repro.attempts,
                timeout_secs.unwrap_or_default()
            )));
        }
        return Err(UsageError(format!(
            "not reproduced within {max_attempts} attempts"
        )));
    }
    println!(
        "reproduced after {} attempt(s) ({} worker(s))",
        repro.attempts, workers
    );
    let cert = repro.certificate.expect("certificate exists on success");
    let bytes = cert.encode();
    std::fs::write(&cert_path, &bytes)
        .map_err(|e| UsageError(format!("cannot write {cert_path}: {e}")))?;
    println!("wrote {} ({} bytes)", cert_path, bytes.len());
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), UsageError> {
    let bug = args.required("bug")?;
    let cert_path = args.required("cert")?;
    let report = args.has("report");
    args.finish()?;

    let prog = bug_program(&bug)?;
    let data = std::fs::read(&cert_path)
        .map_err(|e| UsageError(format!("cannot read {cert_path}: {e}")))?;
    let cert = Certificate::decode(&data).map_err(|e| UsageError(e.to_string()))?;
    let outcome = cert
        .replay(prog.as_ref())
        .map_err(|e| UsageError(e.to_string()))?;
    println!("deterministic reproduction: {}", outcome.status);
    if report {
        println!("\n{}", failure_report(&outcome, &InspectOptions::default()));
    }
    Ok(())
}

fn cmd_sketch_info(args: &Args) -> Result<(), UsageError> {
    let path = args.required("sketch")?;
    args.finish()?;
    let data = std::fs::read(&path)
        .map_err(|e| UsageError(format!("cannot read {path}: {e}")))?;
    let version = container_version(&data).map_err(|e| UsageError(e.to_string()))?;
    let sketch = decode_sketch(&data).map_err(|e| UsageError(e.to_string()))?;
    println!(
        "program {} | mechanism {} | container v{} | production seed {} | {} cores | failure: {}",
        sketch.meta.program,
        sketch.mechanism.name(),
        version,
        sketch.meta.seed,
        sketch.meta.processors,
        if sketch.meta.failure_signature.is_empty() {
            "(none)"
        } else {
            &sketch.meta.failure_signature
        }
    );
    print!("{}", SketchStats::of(&sketch));
    if let Some(cp) = &sketch.checkpoint {
        let segment = checkpoint_segment_bytes(&data)
            .map_err(|e| UsageError(e.to_string()))?
            .unwrap_or(0);
        if cp.is_genesis() {
            println!(
                "checkpoint: genesis (ring never rotated; full run retained, {segment} segment bytes)"
            );
        } else {
            println!(
                "checkpoint: boundary pick {} | snapshot {} bytes | segment {} bytes | evicted {} epoch(s) / {} entries",
                cp.boundary,
                cp.snapshot.len(),
                segment,
                cp.dropped_epochs,
                cp.dropped_entries,
            );
        }
        println!(
            "epoch directory: {} retained epoch(s), {} entries in window",
            cp.epochs.len(),
            cp.retained_entries()
        );
        for epoch in &cp.epochs {
            println!(
                "  epoch {:>4}: starts at pick {:>8}, {:>8} entries",
                epoch.index, epoch.start_picks, epoch.entries
            );
        }
    }
    if let Some(layout) = v2_layout(&data).map_err(|e| UsageError(e.to_string()))? {
        println!(
            "shard directory: {} thread(s), {} entries, interleave {} ({} bytes)",
            layout.threads.len(),
            layout.entries,
            layout.interleave_encoding,
            layout.interleave_bytes
        );
        for shard in &layout.threads {
            println!(
                "  thread {:>4}: {:>8} entries, {:>8} column bytes",
                shard.tid, shard.entries, shard.column_bytes
            );
        }
    }
    Ok(())
}

fn cmd_overhead(args: &Args) -> Result<(), UsageError> {
    let app_id = args.required("app")?;
    let mechanism = parse_mechanism(&args.get("mechanism").unwrap_or_else(|| "SYNC".into()))?;
    let processors: u32 = args.get_parsed("processors")?.unwrap_or(8);
    args.finish()?;

    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.id == app_id)
        .ok_or_else(|| UsageError(format!("unknown app '{app_id}' — see `pres list`")))?;
    let prog = app.workload(WorkloadScale::Standard);
    let pres = Pres::new(mechanism).with_processors(processors);
    let run = pres.record(prog.as_ref(), 7);
    println!(
        "{} under {} on {} cores: overhead {:.2}% (slowdown {:.2}x), log {} bytes ({} entries + {} implicit)",
        app_id,
        mechanism.name(),
        processors,
        run.overhead_pct(),
        run.slowdown(),
        run.log_bytes,
        run.sketch.len(),
        run.implicit_events,
    );
    Ok(())
}

fn io_err(context: &str, e: std::io::Error) -> UsageError {
    UsageError(format!("{context}: {e}"))
}

fn connect(args: &Args) -> Result<Client, UsageError> {
    let addr = args.required("addr")?;
    let attempts: u32 = args
        .get_parsed("connect-attempts")?
        .unwrap_or(pres_svc::client::DEFAULT_CONNECT_ATTEMPTS)
        .max(1);
    let token = args.get("auth-token");
    let mut client =
        Client::connect_with_retry(&addr, attempts, pres_svc::client::DEFAULT_CONNECT_BACKOFF)
            .map_err(|e| io_err(&format!("cannot connect to {addr}"), e))?;
    if let Some(token) = token {
        client
            .hello(token.as_bytes())
            .map_err(|e| io_err("authentication failed", e))?;
    }
    Ok(client)
}

fn cmd_serve(args: &Args) -> Result<(), UsageError> {
    let mut opts = ServeOptions::default();
    if let Some(addr) = args.get("addr") {
        opts.addr = addr;
    }
    if let Some(dir) = args.get("data-dir") {
        opts.data_dir = dir.into();
    }
    let mut queue = QueueConfig::default();
    if let Some(workers) = args.get_parsed::<usize>("job-workers")? {
        queue.workers = workers.max(1);
    }
    if let Some(attempts) = args.get_parsed::<u32>("max-attempts")? {
        queue.max_attempts = attempts;
    }
    if let Some(secs) = args.get_parsed::<u64>("job-timeout-secs")? {
        queue.job_timeout = Duration::from_secs(secs);
    }
    if let Some(n) = args.get_parsed::<usize>("journal-batch")? {
        queue.journal_batch = n.max(1);
    }
    if let Some(usecs) = args.get_parsed::<u64>("journal-batch-usecs")? {
        queue.journal_hold = Duration::from_micros(usecs);
    }
    if let Some(bytes) = args.get_parsed::<u64>("sketch-cache-bytes")? {
        queue.sketch_cache_bytes = bytes;
    }
    if let Some(secs) = args.get_parsed::<u64>("log-interval-secs")? {
        opts.log_interval = (secs > 0).then(|| Duration::from_secs(secs));
    }
    if let Some(frontend) = args.get("frontend") {
        opts.frontend = match frontend.as_str() {
            "sharded" => FrontendKind::Sharded,
            "legacy" => FrontendKind::Legacy,
            other => {
                return Err(UsageError(format!(
                    "unknown front end '{other}' (sharded, legacy)"
                )))
            }
        };
    }
    if let Some(n) = args.get_parsed::<usize>("conn-workers")? {
        opts.conn_workers = n.max(1);
    }
    if let Some(n) = args.get_parsed::<usize>("max-connections")? {
        opts.max_connections = n.max(1);
    }
    opts.peers = args.get_all("peer");
    opts.advertise = args.get("advertise");
    opts.auth_token = args.get("auth-token");
    if let Some(n) = args.get_parsed::<usize>("replicas")? {
        opts.replicas = n.max(1);
    }
    opts.queue = queue;
    args.finish()?;

    let data_dir = opts.data_dir.clone();
    let workers = opts.queue.workers;
    let peer_count = opts.peers.len();
    let server = Server::start(opts).map_err(|e| io_err("cannot start daemon", e))?;
    println!(
        "pres-svc listening on {} (data dir {}, {} job worker(s))",
        server.addr(),
        data_dir.display(),
        workers
    );
    if let Some(cluster) = server.cluster() {
        println!(
            "cluster member {} ({} node(s), {} replica(s) per object)",
            cluster.self_id(),
            1 + peer_count,
            cluster.replicas()
        );
    }
    // Runs until a SHUTDOWN frame arrives; `pres shutdown --addr ...` is
    // the remote off switch.
    server.join();
    println!("pres-svc drained and stopped");
    Ok(())
}

fn cmd_submit(args: &Args) -> Result<(), UsageError> {
    let bug = args.required("bug")?;
    let sketch_path = args.required("sketch")?;
    let wait_secs: Option<u64> = args.get_parsed("wait-secs")?;
    let chunk_bytes: Option<usize> = args.get_parsed("chunk-bytes")?;
    let mut client = connect(args)?;
    args.finish()?;

    if let Some(n) = chunk_bytes {
        client.set_chunk_bytes(n);
    }
    // Stream straight off the file: the sketch is never whole in memory
    // on either end of the connection.
    let mut sketch = std::fs::File::open(&sketch_path)
        .map_err(|e| io_err(&format!("cannot read {sketch_path}"), e))?;
    let receipt = client
        .submit_stream(&bug, &mut sketch)
        .map_err(|e| io_err("submit failed", e))?;
    println!(
        "job {} sketch {} ({}, {})",
        receipt.job,
        receipt.sketch,
        if receipt.fresh_object {
            "new object"
        } else {
            "object deduplicated"
        },
        if receipt.fresh_job {
            "new job"
        } else {
            "joined existing job"
        },
    );
    if let Some(secs) = wait_secs {
        let status = client
            .wait(receipt.job, Duration::from_secs(secs))
            .map_err(|e| io_err("waiting for job", e))?;
        println!("job {}: {status}", receipt.job);
    }
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), UsageError> {
    let job: u64 = args
        .get_parsed("job")?
        .ok_or_else(|| UsageError("missing required flag --job".into()))?;
    let mut client = connect(args)?;
    args.finish()?;
    match client.status(job).map_err(|e| io_err("status failed", e))? {
        Some(status) => println!("job {job}: {status}"),
        None => return Err(UsageError(format!("unknown job {job}"))),
    }
    Ok(())
}

fn cmd_fetch_cert(args: &Args) -> Result<(), UsageError> {
    let job: u64 = args
        .get_parsed("job")?
        .ok_or_else(|| UsageError("missing required flag --job".into()))?;
    let out = args.get("out").unwrap_or_else(|| format!("job-{job}.cert"));
    let mut client = connect(args)?;
    args.finish()?;
    let cert = client
        .fetch_certificate(job)
        .map_err(|e| io_err("fetch failed", e))?;
    std::fs::write(&out, &cert).map_err(|e| io_err(&format!("cannot write {out}"), e))?;
    println!("wrote {} ({} bytes)", out, cert.len());
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), UsageError> {
    let mut client = connect(args)?;
    args.finish()?;
    let text = client.stats().map_err(|e| io_err("stats failed", e))?;
    println!("{text}");
    Ok(())
}

fn cmd_shutdown(args: &Args) -> Result<(), UsageError> {
    let mut client = connect(args)?;
    args.finish()?;
    client.shutdown().map_err(|e| io_err("shutdown failed", e))?;
    println!("daemon draining");
    Ok(())
}

fn cmd_fsck(args: &Args) -> Result<(), UsageError> {
    let data_dir: std::path::PathBuf = args.required("data-dir")?.into();
    let peers = args.get_all("peer");
    let self_id = args.get("self");
    let auth_token = args.get("auth-token");
    let replicas: Option<usize> = args.get_parsed("replicas")?;
    args.finish()?;
    if !peers.is_empty() && self_id.is_none() {
        return Err(UsageError(
            "--peer requires --self HOST:PORT (this data dir's ring identity)".into(),
        ));
    }
    // Offline check: run it against a *stopped* daemon's data directory
    // (a live daemon quarantines on read and fscks at startup anyway).
    let (store, objects) = pres_svc::Store::open(data_dir.join("store"))
        .map_err(|e| io_err("cannot open store", e))?;
    let report = store.fsck().map_err(|e| io_err("store fsck failed", e))?;
    println!(
        "store: {objects} object(s), {} verified, {} quarantined",
        report.verified, report.quarantined
    );
    // Cluster mode: repair replication against live peers, then report
    // this node's share of the ring. Under-replication the pass could
    // not cure (an owner offline) is an error — operators script on the
    // exit code.
    let mut unhealthy = None;
    if let Some(self_id) = self_id {
        let mut config = pres_svc::ClusterConfig::new(self_id, peers);
        config.auth_token = auth_token;
        if let Some(n) = replicas {
            config.replicas = n.max(1);
        }
        let cluster = pres_svc::Cluster::new(config, std::sync::Arc::new(pres_svc::Metrics::new()));
        let repair = cluster
            .repair(&store)
            .map_err(|e| io_err("cluster repair failed", e))?;
        let (primary, replica, foreign) = cluster
            .census(&store)
            .map_err(|e| io_err("cluster census failed", e))?;
        println!(
            "cluster: {} owned as primary, {replica} as replica, {foreign} foreign (N={})",
            primary,
            cluster.replicas()
        );
        println!(
            "repair: {} pulled, {} pushed, {} under-replicated, {} peer(s) unreachable",
            repair.pulled, repair.pushed, repair.under_replicated, repair.peers_unreachable
        );
        if !repair.healthy() {
            unhealthy = Some(repair);
        }
    }
    let journal_path = data_dir.join("journal.log");
    if journal_path.exists() {
        let (_, records) = pres_svc::journal::Journal::open(&journal_path)
            .map_err(|e| io_err("journal replay failed", e))?;
        let (mut submits, mut retries, mut results) = (0u64, 0u64, 0u64);
        for record in &records {
            match record {
                pres_svc::journal::Record::Submit { .. } => submits += 1,
                pres_svc::journal::Record::Retry { .. } => retries += 1,
                pres_svc::journal::Record::Result { .. } => results += 1,
            }
        }
        println!(
            "journal: {} record(s) replayed ({submits} submit, {retries} retry, {results} result)",
            records.len()
        );
    } else {
        println!("journal: none at {}", journal_path.display());
    }
    if report.quarantined > 0 {
        return Err(UsageError(format!(
            "{} corrupt object(s) moved to {}",
            report.quarantined,
            store.quarantine_dir().display()
        )));
    }
    if let Some(repair) = unhealthy {
        return Err(UsageError(format!(
            "replication invariant not restored: {} under-replicated object(s), {} peer(s) unreachable",
            repair.under_replicated, repair.peers_unreachable
        )));
    }
    println!("fsck clean");
    Ok(())
}
