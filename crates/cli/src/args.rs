//! Minimal dependency-free argument parsing for the `pres` CLI.
//!
//! Flags are `--name value` pairs (or bare `--name` for booleans); the
//! first non-flag token is the subcommand. Unknown flags are errors —
//! silent typo-tolerance is how reproduction scripts rot. A flag given
//! twice is an error unless the caller declared it repeatable (e.g.
//! `--peer`), in which case every occurrence is kept in order.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first positional token).
    pub command: Option<String>,
    flags: BTreeMap<String, Vec<String>>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// A CLI usage error.
#[derive(Debug)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

impl Args {
    /// Parses `argv[1..]` with no repeatable flags.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, UsageError> {
        Args::parse_with_repeats(argv, &[])
    }

    /// Parses `argv[1..]`; flags named in `repeatable` may appear more
    /// than once (read them back with [`Args::get_all`]).
    pub fn parse_with_repeats(
        argv: impl IntoIterator<Item = String>,
        repeatable: &[&str],
    ) -> Result<Args, UsageError> {
        let mut args = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap_or_default(),
                    _ => "true".to_string(),
                };
                let values = args.flags.entry(name.to_string()).or_default();
                if !values.is_empty() && !repeatable.contains(&name) {
                    return Err(UsageError(format!("flag --{name} given twice")));
                }
                values.push(value);
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(UsageError(format!("unexpected positional argument '{tok}'")));
            }
        }
        Ok(args)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<String, UsageError> {
        self.get(name)
            .ok_or_else(|| UsageError(format!("missing required flag --{name}")))
    }

    /// An optional string flag (the first occurrence, for repeatables).
    pub fn get(&self, name: &str) -> Option<String> {
        let v = self.flags.get(name).and_then(|v| v.first().cloned());
        if v.is_some() {
            self.consumed.borrow_mut().push(name.to_string());
        }
        v
    }

    /// Every occurrence of a repeatable flag, in command-line order.
    pub fn get_all(&self, name: &str) -> Vec<String> {
        let v = self.flags.get(name).cloned().unwrap_or_default();
        if !v.is_empty() {
            self.consumed.borrow_mut().push(name.to_string());
        }
        v
    }

    /// An optional parsed flag.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, UsageError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| UsageError(format!("--{name}: cannot parse '{raw}'"))),
        }
    }

    /// A boolean flag (present = true).
    pub fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Errors if any flag was never consumed (typo protection). Call last.
    pub fn finish(&self) -> Result<(), UsageError> {
        let consumed = self.consumed.borrow();
        for name in self.flags.keys() {
            if !consumed.contains(name) {
                return Err(UsageError(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&["record", "--bug", "pbzip-order", "--seed", "7"]);
        assert_eq!(a.command.as_deref(), Some("record"));
        assert_eq!(a.required("bug").unwrap(), "pbzip-order");
        assert_eq!(a.get_parsed::<u64>("seed").unwrap(), Some(7));
        a.finish().unwrap();
    }

    #[test]
    fn boolean_flags() {
        let a = parse(&["replay", "--report"]);
        assert!(a.has("report"));
        a.finish().unwrap();
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = parse(&["record"]);
        assert!(a.required("bug").is_err());
    }

    #[test]
    fn unknown_flag_is_caught_by_finish() {
        let a = parse(&["record", "--bgu", "oops"]);
        assert!(a.finish().is_err());
    }

    #[test]
    fn duplicate_flag_errors() {
        let err = Args::parse(["--x", "1", "--x", "2"].iter().map(|s| s.to_string()));
        assert!(err.is_err());
    }

    #[test]
    fn repeatable_flag_collects_in_order() {
        let a = Args::parse_with_repeats(
            ["serve", "--peer", "a:1", "--peer", "b:2", "--addr", "c:3"]
                .iter()
                .map(|s| s.to_string()),
            &["peer"],
        )
        .unwrap();
        assert_eq!(a.get_all("peer"), vec!["a:1".to_string(), "b:2".to_string()]);
        assert_eq!(a.get("addr").as_deref(), Some("c:3"));
        a.finish().unwrap();
        // Non-repeatable flags still error when doubled.
        let err = Args::parse_with_repeats(
            ["--addr", "x", "--addr", "y"].iter().map(|s| s.to_string()),
            &["peer"],
        );
        assert!(err.is_err());
    }

    #[test]
    fn get_all_on_absent_flag_is_empty_and_unconsumed() {
        let a = parse(&["serve"]);
        assert!(a.get_all("peer").is_empty());
        a.finish().unwrap();
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let a = parse(&["record", "--seed", "banana"]);
        let err = a.get_parsed::<u64>("seed").unwrap_err();
        assert!(err.0.contains("--seed"));
    }
}
