//! Criterion bench: feedback-generation cost — happens-before analysis,
//! lockset ranking, and flip-candidate extraction over a full attempt
//! trace (the analysis PRES runs after every unsuccessful replay).

use criterion::{criterion_group, criterion_main, Criterion};
use pres_apps::all_bugs;
use pres_bench::experiments::std_vm;
use pres_core::feedback::candidates;
use pres_core::recorder::run_traced;
use pres_race::hb::detect_races;
use pres_race::lockset::check_lockset;

fn bench_feedback(c: &mut Criterion) {
    let bugs = all_bugs();
    let bug = bugs
        .iter()
        .find(|b| b.id == "httpd-log-atomicity")
        .expect("bug exists");
    let prog = bug.program();
    let out = run_traced(prog.as_ref(), &std_vm(4), 3);
    let trace = out.trace;

    let mut group = c.benchmark_group("feedback_analysis");
    group.sample_size(20);
    group.bench_function("hb_detect_races", |b| {
        b.iter(|| detect_races(&trace).len());
    });
    group.bench_function("lockset_check", |b| {
        b.iter(|| check_lockset(&trace).len());
    });
    group.bench_function("flip_candidates", |b| {
        b.iter(|| candidates(&trace).len());
    });
    group.finish();
}

criterion_group!(benches, bench_feedback);
criterion_main!(benches);
