//! Wall-clock bench: feedback-generation cost — happens-before analysis,
//! lockset ranking, and flip-candidate extraction over a full attempt
//! trace (the analysis PRES runs after every unsuccessful replay).

use pres_apps::all_bugs;
use pres_bench::experiments::std_vm;
use pres_bench::harness::bench;
use pres_core::feedback::candidates;
use pres_core::recorder::run_traced;
use pres_race::hb::detect_races;
use pres_race::lockset::check_lockset;

fn main() {
    let bugs = all_bugs();
    let bug = bugs
        .iter()
        .find(|b| b.id == "httpd-log-atomicity")
        .expect("bug exists");
    let prog = bug.program();
    let out = run_traced(prog.as_ref(), &std_vm(4), 3);
    let trace = out.trace;

    bench("feedback_analysis/hb_detect_races", 20, || {
        detect_races(&trace).len()
    });
    bench("feedback_analysis/lockset_check", 20, || {
        check_lockset(&trace).len()
    });
    bench("feedback_analysis/flip_candidates", 20, || {
        candidates(&trace).len()
    });
}
