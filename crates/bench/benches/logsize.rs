//! Wall-clock bench: codec throughput — encoding and decoding sketch logs
//! (the E3 artifact's serialization path).

use pres_apps::registry::{all_apps, WorkloadScale};
use pres_bench::experiments::std_vm;
use pres_bench::harness::bench;
use pres_core::codec::{decode_sketch, encode_sketch};
use pres_core::recorder::record;
use pres_core::sketch::Mechanism;

fn main() {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.id == "sqld").expect("sqld exists");
    let prog = app.workload(WorkloadScale::Standard);
    let run = record(prog.as_ref(), Mechanism::Rw, &std_vm(8), 7);
    let sketch = run.sketch;
    let encoded = encode_sketch(&sketch);
    println!("codec payload: {} bytes", encoded.len());

    bench("codec/encode", 20, || encode_sketch(&sketch).len());
    bench("codec/decode", 20, || {
        decode_sketch(&encoded).expect("decodes").entries.len()
    });
}
