//! Criterion bench: codec throughput — encoding and decoding sketch logs
//! (the E3 artifact's serialization path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pres_apps::registry::{all_apps, WorkloadScale};
use pres_bench::experiments::std_vm;
use pres_core::codec::{decode_sketch, encode_sketch};
use pres_core::recorder::record;
use pres_core::sketch::Mechanism;

fn bench_codec(c: &mut Criterion) {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.id == "sqld").expect("sqld exists");
    let prog = app.workload(WorkloadScale::Standard);
    let run = record(prog.as_ref(), Mechanism::Rw, &std_vm(8), 7);
    let sketch = run.sketch;
    let encoded = encode_sketch(&sketch);

    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| encode_sketch(&sketch).len());
    });
    group.bench_function("decode", |b| {
        b.iter(|| decode_sketch(&encoded).expect("decodes").entries.len());
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
