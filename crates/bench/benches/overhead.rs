//! Wall-clock bench: cost of recording one production run under each
//! sketching mechanism (the E2 pipeline, measured for real).

use pres_apps::registry::{all_apps, WorkloadScale};
use pres_bench::experiments::std_vm;
use pres_bench::harness::bench;
use pres_core::recorder::record;
use pres_core::sketch::Mechanism;

fn main() {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.id == "httpd").expect("httpd exists");
    let prog = app.workload(WorkloadScale::Small);
    let config = std_vm(8);
    for mech in [Mechanism::Rw, Mechanism::Sync, Mechanism::Sys, Mechanism::Bb] {
        bench(&format!("record_httpd/{}", mech.name()), 10, || {
            let run = record(prog.as_ref(), mech, &config, 7);
            assert!(!run.failed());
            run.log_bytes
        });
    }
}
