//! Criterion bench: wall-clock cost of recording one production run under
//! each sketching mechanism (the E2 pipeline, measured for real).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pres_apps::registry::{all_apps, WorkloadScale};
use pres_bench::experiments::std_vm;
use pres_core::recorder::record;
use pres_core::sketch::Mechanism;

fn bench_recording(c: &mut Criterion) {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.id == "httpd").expect("httpd exists");
    let prog = app.workload(WorkloadScale::Small);
    let config = std_vm(8);
    let mut group = c.benchmark_group("record_httpd");
    group.sample_size(10);
    for mech in [Mechanism::Rw, Mechanism::Sync, Mechanism::Sys, Mechanism::Bb] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mech.name()),
            &mech,
            |b, mech| {
                b.iter(|| {
                    let run = record(prog.as_ref(), *mech, &config, 7);
                    assert!(!run.failed());
                    run.log_bytes
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recording);
criterion_main!(benches);
