//! Wall-clock bench: end-to-end reproduction cost — record a failing run,
//! then run the exploration loop to the first successful replay (the E4
//! pipeline, measured in wall-clock terms).

use pres_apps::all_bugs;
use pres_bench::experiments::{find_failing_seed, std_vm};
use pres_bench::harness::bench;
use pres_core::explore::{reproduce, ExploreConfig};
use pres_core::recorder::record;
use pres_core::sketch::Mechanism;

fn main() {
    let bugs = all_bugs();
    let bug = bugs
        .iter()
        .find(|b| b.id == "browser-multivar-atomicity")
        .expect("bug exists");
    let prog = bug.program();
    let config = std_vm(4);
    let seed = find_failing_seed(prog.as_ref(), &config).expect("failing seed");
    let run = record(prog.as_ref(), Mechanism::Sync, &config, seed);

    bench("reproduce_browser/sync_feedback", 10, || {
        let rep = reproduce(
            prog.as_ref(),
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig::default(),
        );
        assert!(rep.reproduced);
        rep.attempts
    });

    // The minted certificate replays deterministically — measure that too.
    let rep = reproduce(
        prog.as_ref(),
        &run.sketch,
        &run.sketch.meta.failure_signature,
        &config,
        &ExploreConfig::default(),
    );
    let cert = rep.certificate.expect("certificate");
    bench("reproduce_browser/certificate_replay", 10, || {
        cert.replay(prog.as_ref()).expect("reproduces").stats.total_ops
    });
}
