//! Criterion bench: end-to-end reproduction cost — record a failing run,
//! then run the exploration loop to the first successful replay (the E4
//! pipeline, measured in wall-clock terms).

use criterion::{criterion_group, criterion_main, Criterion};
use pres_apps::all_bugs;
use pres_bench::experiments::{find_failing_seed, std_vm};
use pres_core::explore::{reproduce, ExploreConfig};
use pres_core::recorder::record;
use pres_core::sketch::Mechanism;

fn bench_reproduction(c: &mut Criterion) {
    let bugs = all_bugs();
    let bug = bugs
        .iter()
        .find(|b| b.id == "browser-multivar-atomicity")
        .expect("bug exists");
    let prog = bug.program();
    let config = std_vm(4);
    let seed = find_failing_seed(prog.as_ref(), &config).expect("failing seed");
    let run = record(prog.as_ref(), Mechanism::Sync, &config, seed);

    let mut group = c.benchmark_group("reproduce_browser");
    group.sample_size(10);
    group.bench_function("sync_feedback", |b| {
        b.iter(|| {
            let rep = reproduce(
                prog.as_ref(),
                &run.sketch,
                &run.sketch.meta.failure_signature,
                &config,
                &ExploreConfig::default(),
            );
            assert!(rep.reproduced);
            rep.attempts
        });
    });
    // The minted certificate replays deterministically — measure that too.
    let rep = reproduce(
        prog.as_ref(),
        &run.sketch,
        &run.sketch.meta.failure_signature,
        &config,
        &ExploreConfig::default(),
    );
    let cert = rep.certificate.expect("certificate");
    group.bench_function("certificate_replay", |b| {
        b.iter(|| cert.replay(prog.as_ref()).expect("reproduces").stats.total_ops);
    });
    group.finish();
}

criterion_group!(benches, bench_reproduction);
criterion_main!(benches);
