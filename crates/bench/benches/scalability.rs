//! Wall-clock bench: VM execution cost as the simulated machine grows (the
//! E5 pipeline): the coordinator's work is schedule-driven, so wall time
//! tracks the op count, not the simulated core count — this bench guards
//! against the harness itself becoming superlinear in `P`.

use pres_apps::registry::{all_apps, WorkloadScale};
use pres_bench::experiments::std_vm;
use pres_bench::harness::bench;
use pres_core::recorder::record;
use pres_core::sketch::Mechanism;

fn main() {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.id == "fft").expect("fft exists");
    for p in [2u32, 8, 16] {
        let prog = app.workload_with_threads(WorkloadScale::Small, p.min(8));
        let config = std_vm(p);
        bench(&format!("record_fft_by_processors/{p}"), 10, || {
            let run = record(prog.as_ref(), Mechanism::Sync, &config, 7);
            assert!(!run.failed());
            run.outcome.time.makespan
        });
    }
}
