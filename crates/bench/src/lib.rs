//! # pres-bench — the evaluation harness
//!
//! Regenerates every table and figure of the reconstructed evaluation
//! (DESIGN.md §5). Each experiment has a binary that prints the table:
//!
//! | Binary | Experiment |
//! |---|---|
//! | `table_bugs` | E1 applications & bugs |
//! | `fig_overhead` | E2 recording overhead |
//! | `table_logsize` | E3 log sizes |
//! | `table_attempts` | E4 replay attempts per bug per mechanism |
//! | `fig_scalability` | E5 overhead/attempts vs. processor count |
//! | `fig_feedback` | E6 feedback vs. random ablation |
//! | `fig_bbn_sweep` | E8 BB-N granularity sweep |
//! | `fig_throughput` | E12 attempt throughput: streaming vs. buffered feedback |
//! | `run_all` | everything, in EXPERIMENTS.md order (incl. E7) |
//!
//! The wall-clock benches (`cargo bench`, driven by [`harness`]) measure
//! the same pipelines in real time: per-mechanism recording cost,
//! replay-attempt cost, codec throughput, the feedback analysis, and
//! parallel-reproduction scaling.

pub mod experiments;
pub mod harness;
pub mod render;
