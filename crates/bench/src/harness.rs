//! A minimal wall-clock bench harness (no external dependencies).
//!
//! The `[[bench]]` targets under `benches/` are plain `main()` programs
//! (`harness = false`): each calls [`bench`] per measured closure. The
//! harness warms up once, runs a fixed iteration count, and prints
//! mean/min per-iteration wall time — enough to track regressions by eye
//! or by scripting over the stable one-line-per-benchmark output.

use std::time::{Duration, Instant};

/// Times `f` over `iters` iterations (after one warmup call) and prints
/// `name: mean <t> min <t> (N iters)`. Returns the mean duration so
/// callers can compute ratios (e.g. speedup across configurations).
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0);
    let warmup = f();
    std::hint::black_box(warmup);
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed();
        std::hint::black_box(out);
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters;
    println!("{name}: mean {mean:?} min {min:?} ({iters} iters)");
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean() {
        let mean = bench("noop-spin", 3, || {
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(mean > Duration::ZERO);
    }
}
