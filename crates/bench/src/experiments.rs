//! Experiment implementations — one function per table/figure of the
//! reconstructed evaluation (DESIGN.md §5, EXPERIMENTS.md).
//!
//! Every experiment is deterministic: fixed seeds, fixed workloads, fixed
//! exploration parameters. Each returns structured results plus a
//! plain-text rendering that the `pres-bench` binaries print.

use crate::render::{bytes, pct, table};
use pres_apps::registry::{all_apps, all_bugs, BugCase, WorkloadScale};
use pres_core::explore::{ExecutorKind, ExploreConfig, FeedbackMode, Strategy};
use pres_core::program::Program;
use pres_core::recorder::{record, record_legacy, RecordingReport};
use pres_core::sketch::Mechanism;
use pres_core::{explore, Certificate};
use pres_tvm::error::RunStatus;
use pres_tvm::pool::VthreadPool;
use pres_tvm::sched::RandomScheduler;
use pres_tvm::trace::{NullObserver, TraceMode};
use pres_tvm::vm::{self, VmConfig};

/// The mechanism columns of every table, in the paper's overhead order.
pub fn standard_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Rw,
        Mechanism::Bb,
        Mechanism::BbN(4),
        Mechanism::Func,
        Mechanism::Sys,
        Mechanism::Sync,
    ]
}

/// The standard simulated machine for the evaluation (the paper's testbed
/// is an 8-core x86 server).
pub fn std_vm(processors: u32) -> VmConfig {
    VmConfig {
        processors,
        ..VmConfig::default()
    }
}

/// Bug-reproduction experiments run at the paper's default of 4 processors
/// (the scalability experiment varies this).
pub const REPRO_PROCESSORS: u32 = 4;
/// Overhead experiments run on the full 8-core machine model.
pub const OVERHEAD_PROCESSORS: u32 = 8;
/// Attempt budget for the attempt tables (the paper caps at 1000).
pub const ATTEMPT_CAP: u32 = 1000;
/// Attempt budget for the feedback-vs-random ablation.
pub const ABLATION_CAP: u32 = 300;
/// Seed-search budget for finding a failing production run.
pub const SEED_SEARCH: u64 = 3000;

/// Finds a production seed on which the buggy program fails (native run —
/// recording does not perturb scheduling, so the same seed fails under
/// every mechanism).
pub fn find_failing_seed(program: &dyn Program, config: &VmConfig) -> Option<u64> {
    for seed in 0..SEED_SEARCH {
        let body = program.root();
        let out = vm::run(
            VmConfig {
                trace_mode: TraceMode::Off,
                world: program.world(),
                ..config.clone()
            },
            program.resources(),
            &mut RandomScheduler::new(seed),
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        if out.status.is_failed() {
            return Some(seed);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// E1 — applications & bugs table.
// ---------------------------------------------------------------------------

/// Renders the corpus table (paper Tables 1–2 analogue).
pub fn e1_table_bugs() -> String {
    let mut rows = Vec::new();
    for bug in all_bugs() {
        rows.push(vec![
            bug.id.to_string(),
            bug.app.to_string(),
            bug.category.label().to_string(),
            bug.class.label().to_string(),
            bug.modeled_after.to_string(),
        ]);
    }
    let mut out = String::from("E1. Evaluated applications and bugs (13 bugs, 11 apps)\n\n");
    out.push_str(&table(
        &["bug id", "app", "category", "class", "modeled after"],
        &rows,
    ));
    let apps = all_apps();
    out.push_str(&format!(
        "\napplications: {} total ({} servers, {} desktop/client, {} scientific)\n",
        apps.len(),
        apps.iter()
            .filter(|a| a.category == pres_apps::AppCategory::Server)
            .count(),
        apps.iter()
            .filter(|a| a.category == pres_apps::AppCategory::Desktop)
            .count(),
        apps.iter()
            .filter(|a| a.category == pres_apps::AppCategory::Scientific)
            .count(),
    ));
    out
}

// ---------------------------------------------------------------------------
// E2/E3 — recording overhead and log size matrix.
// ---------------------------------------------------------------------------

/// The full recording matrix: every app × every mechanism, bug-free
/// standard workloads.
#[derive(Debug, Clone)]
pub struct RecordingMatrix {
    /// One report per (app, mechanism) cell, app-major.
    pub reports: Vec<RecordingReport>,
}

impl RecordingMatrix {
    /// Runs the matrix. Each cell is recorded twice — with the sharded
    /// recorder and with the pre-sharding (fully serialized) one — so E2
    /// reports a before/after overhead comparison; the two must record
    /// identical sketches.
    pub fn run(processors: u32, scale: WorkloadScale) -> Self {
        let mut reports = Vec::new();
        let config = std_vm(processors);
        for app in all_apps() {
            let prog = app.workload(scale);
            for mech in standard_mechanisms() {
                let run = record(prog.as_ref(), mech, &config, 7);
                assert!(
                    !run.failed(),
                    "bug-free workload {} failed during overhead measurement",
                    app.id
                );
                let legacy = record_legacy(prog.as_ref(), mech, &config, 7);
                assert_eq!(
                    run.sketch, legacy.sketch,
                    "sharded and legacy recorders diverged on {} under {mech}",
                    app.id
                );
                reports.push(RecordingReport::from_run(&run).with_legacy(&legacy));
            }
        }
        RecordingMatrix { reports }
    }

    fn cell(&self, program: &str, mech: Mechanism) -> Option<&RecordingReport> {
        self.reports
            .iter()
            .find(|r| r.program == program && r.mechanism == mech)
    }

    /// The headline ratio: max over apps of overhead(RW)/overhead(SYNC)
    /// (the paper reports "up to 4416 times" lower overhead).
    pub fn max_rw_over_sync(&self) -> (String, f64) {
        let mut best = (String::new(), 0.0f64);
        for app in all_apps() {
            let rw = self.cell(app.id, Mechanism::Rw).map(|r| r.overhead_pct);
            let sync = self.cell(app.id, Mechanism::Sync).map(|r| r.overhead_pct);
            if let (Some(rw), Some(sync)) = (rw, sync) {
                let ratio = rw / sync.max(0.01);
                if ratio > best.1 {
                    best = (app.id.to_string(), ratio);
                }
            }
        }
        best
    }

    /// Renders the E2 overhead figure as a table.
    pub fn render_overhead(&self) -> String {
        let mechs = standard_mechanisms();
        let mut rows = Vec::new();
        for app in all_apps() {
            let mut row = vec![app.id.to_string()];
            for m in &mechs {
                row.push(
                    self.cell(app.id, *m)
                        .map(|r| pct(r.overhead_pct))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(row);
        }
        let mut headers = vec!["app"];
        let names: Vec<String> = mechs.iter().map(|m| m.name().into_owned()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        let mut out = String::from(
            "E2. Production-run recording overhead (% over native, 8 simulated cores)\n\n",
        );
        out.push_str(&table(&headers, &rows));
        let (app, ratio) = self.max_rw_over_sync();
        out.push_str(&format!(
            "\nheadline: SYNC sketching lowers recording overhead vs. the RW baseline by up to {ratio:.0}x (on {app})\n",
        ));
        out.push_str(&self.render_sharding_delta());
        out
    }

    /// Renders the sharded-vs-legacy recorder comparison for the
    /// thread-local mechanisms (the classes the sharding restructure
    /// speeds up; SYNC/SYS charges are identical by construction).
    pub fn render_sharding_delta(&self) -> String {
        let mechs = [Mechanism::Func, Mechanism::Bb, Mechanism::BbN(4)];
        let mut rows = Vec::new();
        for app in all_apps() {
            let mut row = vec![app.id.to_string()];
            for m in &mechs {
                row.push(
                    self.cell(app.id, *m)
                        .and_then(|r| {
                            r.legacy_overhead_pct
                                .map(|l| format!("{} -> {}", pct(l), pct(r.overhead_pct)))
                        })
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(row);
        }
        let mut headers = vec!["app"];
        let names: Vec<String> = mechs.iter().map(|m| m.name().into_owned()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        let mut out = String::from(
            "\nsharded recording, before -> after (pre-sharding recorder vs per-thread shards)\n\n",
        );
        out.push_str(&table(&headers, &rows));
        out
    }

    /// Geometric-mean shrink of the v2 container vs v1 across all cells
    /// with a non-empty log, as a percentage (positive = v2 smaller).
    pub fn codec_geomean_shrink(&self) -> f64 {
        let ratios: Vec<f64> = self
            .reports
            .iter()
            .filter(|r| r.entries > 0 && r.encoded_v1 > 0)
            .map(|r| r.encoded_v2 as f64 / r.encoded_v1 as f64)
            .collect();
        if ratios.is_empty() {
            return 0.0;
        }
        let gm = (ratios.iter().map(|x| x.ln()).sum::<f64>() / ratios.len() as f64).exp();
        (1.0 - gm) * 100.0
    }

    /// Renders the codec v1-vs-v2 container-size comparison.
    pub fn render_codec(&self) -> String {
        let mechs = standard_mechanisms();
        let mut rows = Vec::new();
        for app in all_apps() {
            let mut row = vec![app.id.to_string()];
            for m in &mechs {
                row.push(
                    self.cell(app.id, *m)
                        .map(|r| {
                            if r.encoded_v1 == 0 {
                                "-".into()
                            } else {
                                format!(
                                    "{} -> {} (-{:.0}%)",
                                    bytes(r.encoded_v1),
                                    bytes(r.encoded_v2),
                                    (1.0 - r.encoded_v2 as f64 / r.encoded_v1 as f64) * 100.0
                                )
                            }
                        })
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(row);
        }
        let mut headers = vec!["app"];
        let names: Vec<String> = mechs.iter().map(|m| m.name().into_owned()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        let mut out =
            String::from("\ncodec container size, v1 (flat) -> v2 (columnar), actual bytes\n\n");
        out.push_str(&table(&headers, &rows));
        out.push_str(&format!(
            "\nheadline: the v2 columnar container shrinks sketch logs by {:.0}% geomean across the matrix\n",
            self.codec_geomean_shrink()
        ));
        out
    }

    /// Renders the E3 log-size table.
    pub fn render_logsize(&self) -> String {
        let mechs = standard_mechanisms();
        let mut rows = Vec::new();
        for app in all_apps() {
            let mut row = vec![app.id.to_string()];
            for m in &mechs {
                row.push(
                    self.cell(app.id, *m)
                        .map(|r| format!("{} ({} ev)", bytes(r.log_bytes), r.entries))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(row);
        }
        let mut headers = vec!["app"];
        let names: Vec<String> = mechs.iter().map(|m| m.name().into_owned()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        let mut out = String::from("E3. Sketch log size per workload (encoded bytes, entries)\n\n");
        out.push_str(&table(&headers, &rows));
        out
    }
}

// ---------------------------------------------------------------------------
// E4 — replay attempts per bug per mechanism.
// ---------------------------------------------------------------------------

/// One row of the attempts table.
#[derive(Debug, Clone)]
pub struct AttemptsRow {
    /// Bug id.
    pub bug: String,
    /// Bug class label.
    pub class: String,
    /// Failing production seed used.
    pub seed: u64,
    /// Attempts per mechanism (`None` = not reproduced within the cap),
    /// in [`standard_mechanisms`] order.
    pub attempts: Vec<Option<u32>>,
}

/// Runs the attempts table for every bug.
pub fn e4_attempts(cap: u32) -> Vec<AttemptsRow> {
    e4_attempts_for(&all_bugs(), cap)
}

/// Runs the attempts table for a subset of bugs.
pub fn e4_attempts_for(bugs: &[BugCase], cap: u32) -> Vec<AttemptsRow> {
    let config = std_vm(REPRO_PROCESSORS);
    let mut rows = Vec::new();
    for bug in bugs {
        let prog = bug.program();
        let seed = find_failing_seed(prog.as_ref(), &config)
            .unwrap_or_else(|| panic!("{}: no failing seed in {SEED_SEARCH}", bug.id));
        let mut attempts = Vec::new();
        for mech in standard_mechanisms() {
            let run = record(prog.as_ref(), mech, &config, seed);
            assert!(run.failed(), "{}: recording changed the outcome", bug.id);
            let rep = explore::reproduce(
                prog.as_ref(),
                &run.sketch,
                &run.sketch.meta.failure_signature,
                &config,
                &ExploreConfig {
                    max_attempts: cap,
                    ..ExploreConfig::default()
                },
            );
            attempts.push(rep.reproduced.then_some(rep.attempts));
        }
        rows.push(AttemptsRow {
            bug: bug.id.to_string(),
            class: bug.class.label().to_string(),
            seed,
            attempts,
        });
    }
    rows
}

/// Renders the attempts table.
pub fn render_attempts(rows: &[AttemptsRow], cap: u32) -> String {
    let mechs = standard_mechanisms();
    let mut trows = Vec::new();
    for r in rows {
        let mut row = vec![r.bug.clone(), r.class.clone()];
        for a in &r.attempts {
            row.push(match a {
                Some(n) => n.to_string(),
                None => format!(">{cap}"),
            });
        }
        trows.push(row);
    }
    let mut headers = vec!["bug", "class"];
    let names: Vec<String> = mechs.iter().map(|m| m.name().into_owned()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut out = format!(
        "E4. Replay attempts until reproduction (cap {cap}, {REPRO_PROCESSORS} simulated cores)\n\n"
    );
    out.push_str(&table(&headers, &trows));
    let sync_idx = mechs.iter().position(|m| *m == Mechanism::Sync).unwrap();
    let sys_idx = mechs.iter().position(|m| *m == Mechanism::Sys).unwrap();
    let under_10 = rows
        .iter()
        .filter(|r| {
            r.attempts[sync_idx].is_some_and(|a| a < 10)
                || r.attempts[sys_idx].is_some_and(|a| a < 10)
        })
        .count();
    out.push_str(&format!(
        "\nheadline: {under_10}/{} bugs reproduced in fewer than 10 attempts with SYNC or SYS sketching; RW reproduces every bug on attempt 1 by construction\n",
        rows.len()
    ));
    out
}

// ---------------------------------------------------------------------------
// E5 — scalability with processor count.
// ---------------------------------------------------------------------------

/// Scalability results for one processor count.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Simulated processors.
    pub processors: u32,
    /// Mean RW recording overhead (%) across the scalability apps.
    pub rw_overhead_pct: f64,
    /// Mean SYNC recording overhead (%).
    pub sync_overhead_pct: f64,
    /// Attempts to reproduce each scalability bug under SYNC.
    pub attempts: Vec<(String, Option<u32>)>,
}

/// Apps used for the scalability overhead curve (compute-heavy, so the
/// parallel-speedup denominator is meaningful).
fn scalability_apps() -> Vec<&'static str> {
    vec!["fft", "lu", "radix"]
}

/// Bugs used for the scalability attempts curve.
fn scalability_bugs() -> Vec<&'static str> {
    vec!["lu-reduction-atomicity", "aget-progress-atomicity", "sqld-deadlock"]
}

/// Runs the scalability experiment over the given processor counts.
pub fn e5_scalability(processor_counts: &[u32]) -> Vec<ScalabilityPoint> {
    let apps = all_apps();
    let bugs = all_bugs();
    let mut points = Vec::new();
    for &p in processor_counts {
        let config = std_vm(p);
        let mut rw_sum = 0.0;
        let mut sync_sum = 0.0;
        let mut n = 0.0;
        for id in scalability_apps() {
            let app = apps.iter().find(|a| a.id == id).expect("app exists");
            // Size the program to the machine: one worker per core, as the
            // paper's scalability runs do.
            let prog = app.workload_with_threads(WorkloadScale::Standard, p);
            let rw = record(prog.as_ref(), Mechanism::Rw, &config, 7);
            let sync = record(prog.as_ref(), Mechanism::Sync, &config, 7);
            rw_sum += rw.overhead_pct();
            sync_sum += sync.overhead_pct();
            n += 1.0;
        }
        let mut attempts = Vec::new();
        for id in scalability_bugs() {
            let bug = bugs.iter().find(|b| b.id == id).expect("bug exists");
            let prog = bug.program();
            let result = find_failing_seed(prog.as_ref(), &config).map(|seed| {
                let run = record(prog.as_ref(), Mechanism::Sync, &config, seed);
                let rep = explore::reproduce(
                    prog.as_ref(),
                    &run.sketch,
                    &run.sketch.meta.failure_signature,
                    &config,
                    &ExploreConfig {
                        max_attempts: ATTEMPT_CAP,
                        ..ExploreConfig::default()
                    },
                );
                rep.reproduced.then_some(rep.attempts)
            });
            attempts.push((id.to_string(), result.flatten()));
        }
        points.push(ScalabilityPoint {
            processors: p,
            rw_overhead_pct: rw_sum / n,
            sync_overhead_pct: sync_sum / n,
            attempts,
        });
    }
    points
}

/// Renders the scalability figure.
pub fn render_scalability(points: &[ScalabilityPoint]) -> String {
    let mut rows = Vec::new();
    for pt in points {
        let mut row = vec![
            pt.processors.to_string(),
            pct(pt.rw_overhead_pct),
            pct(pt.sync_overhead_pct),
        ];
        for (_, a) in &pt.attempts {
            row.push(match a {
                Some(n) => n.to_string(),
                None => format!(">{ATTEMPT_CAP}"),
            });
        }
        rows.push(row);
    }
    let mut headers = vec!["P", "RW ovh", "SYNC ovh"];
    let bug_names: Vec<String> = points
        .first()
        .map(|p| p.attempts.iter().map(|(b, _)| format!("{b} (att)")).collect())
        .unwrap_or_default();
    headers.extend(bug_names.iter().map(|s| s.as_str()));
    let mut out = String::from(
        "E5. Scalability with processor count (overhead: mean over fft/lu/radix; attempts: SYNC sketch)\n\n",
    );
    out.push_str(&table(&headers, &rows));
    if points.len() >= 2 {
        let first = &points[0];
        let last = &points[points.len() - 1];
        out.push_str(&format!(
            "\nheadline: from P={} to P={}, RW overhead grows {:.1}x while SYNC overhead stays within {:.1}x — PRES scales with the number of processors, the baseline does not\n",
            first.processors,
            last.processors,
            last.rw_overhead_pct / first.rw_overhead_pct.max(0.01),
            last.sync_overhead_pct / first.sync_overhead_pct.max(0.01),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// E6 — feedback vs. random exploration.
// ---------------------------------------------------------------------------

/// One bug's feedback-vs-random comparison.
#[derive(Debug, Clone)]
pub struct FeedbackRow {
    /// Bug id.
    pub bug: String,
    /// Attempts with feedback (None = cap exceeded).
    pub feedback: Option<u32>,
    /// Attempts with independent random attempts (None = cap exceeded).
    pub random: Option<u32>,
}

/// Runs the feedback ablation over every bug (SYS sketch — the coarsest
/// mechanism, where the replayer must search the most; under SYNC most
/// bugs reproduce on the first attempt regardless of strategy).
pub fn e6_feedback(cap: u32) -> Vec<FeedbackRow> {
    let config = std_vm(REPRO_PROCESSORS);
    let mut rows = Vec::new();
    for bug in all_bugs() {
        let prog = bug.program();
        let Some(seed) = find_failing_seed(prog.as_ref(), &config) else {
            continue;
        };
        let run = record(prog.as_ref(), Mechanism::Sys, &config, seed);
        let go = |strategy: Strategy| {
            let rep = explore::reproduce(
                prog.as_ref(),
                &run.sketch,
                &run.sketch.meta.failure_signature,
                &config,
                &ExploreConfig {
                    strategy,
                    max_attempts: cap,
                    ..ExploreConfig::default()
                },
            );
            rep.reproduced.then_some(rep.attempts)
        };
        rows.push(FeedbackRow {
            bug: bug.id.to_string(),
            feedback: go(Strategy::Feedback),
            random: go(Strategy::Random),
        });
    }
    rows
}

/// Renders the feedback ablation.
pub fn render_feedback(rows: &[FeedbackRow], cap: u32) -> String {
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bug.clone(),
                r.feedback
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| format!(">{cap}")),
                r.random
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| format!(">{cap}")),
            ]
        })
        .collect();
    let mut out = format!(
        "E6. Feedback generation vs. independent random replay (SYS sketch, cap {cap})\n\n"
    );
    out.push_str(&table(&["bug", "feedback", "random"], &trows));
    let wins = rows
        .iter()
        .filter(|r| {
            let f = r.feedback.unwrap_or(cap + 1);
            let g = r.random.unwrap_or(cap + 1);
            f <= g
        })
        .count();
    let random_caps = rows.iter().filter(|r| r.random.is_none()).count();
    out.push_str(&format!(
        "\nheadline: feedback matches or beats random exploration on {wins}/{} bugs; random exhausts the cap on {random_caps} of them — feedback generation from unsuccessful replays is critical\n",
        rows.len()
    ));
    out
}

// ---------------------------------------------------------------------------
// E7 — reproduce once, reproduce every time.
// ---------------------------------------------------------------------------

/// One bug's certificate-determinism result.
#[derive(Debug, Clone)]
pub struct CertRow {
    /// Bug id.
    pub bug: String,
    /// Successful certificate replays out of `trials`.
    pub successes: u32,
    /// Replay trials.
    pub trials: u32,
    /// Encoded certificate size.
    pub cert_bytes: u64,
}

/// Reproduces each bug once (SYNC) and replays its certificate `trials`
/// times.
pub fn e7_certificates(trials: u32) -> Vec<CertRow> {
    let config = std_vm(REPRO_PROCESSORS);
    let mut rows = Vec::new();
    for bug in all_bugs() {
        let prog = bug.program();
        let Some(seed) = find_failing_seed(prog.as_ref(), &config) else {
            continue;
        };
        let run = record(prog.as_ref(), Mechanism::Sync, &config, seed);
        let rep = explore::reproduce(
            prog.as_ref(),
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig {
                max_attempts: ATTEMPT_CAP,
                ..ExploreConfig::default()
            },
        );
        let Some(cert) = rep.certificate else {
            continue;
        };
        let encoded = cert.encode();
        let decoded = Certificate::decode(&encoded).expect("certificate round-trips");
        let mut successes = 0;
        for _ in 0..trials {
            if decoded.replay(prog.as_ref()).is_ok() {
                successes += 1;
            }
        }
        rows.push(CertRow {
            bug: bug.id.to_string(),
            successes,
            trials,
            cert_bytes: encoded.len() as u64,
        });
    }
    rows
}

/// Renders the certificate-determinism table.
pub fn render_certificates(rows: &[CertRow]) -> String {
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bug.clone(),
                format!("{}/{}", r.successes, r.trials),
                bytes(r.cert_bytes),
            ]
        })
        .collect();
    let mut out = String::from(
        "E7. Reproduce once, reproduce every time (certificate replays)\n\n",
    );
    out.push_str(&table(&["bug", "deterministic replays", "cert size"], &trows));
    let all_perfect = rows.iter().all(|r| r.successes == r.trials);
    out.push_str(&format!(
        "\nheadline: {} — after one successful reproduction, PRES reproduces the bug every time\n",
        if all_perfect { "100% deterministic" } else { "NON-DETERMINISM DETECTED" }
    ));
    out
}

// ---------------------------------------------------------------------------
// E8 — BB-N granularity sweep.
// ---------------------------------------------------------------------------

/// One point of the BB-N sweep.
#[derive(Debug, Clone)]
pub struct BbnPoint {
    /// Sampling period (1 = full BB).
    pub n: u32,
    /// Recording overhead (%) on the bug-free workload.
    pub overhead_pct: f64,
    /// Log bytes.
    pub log_bytes: u64,
    /// Attempts to reproduce the sweep bug.
    pub attempts: Option<u32>,
}

/// Runs the BB-N sweep on the `lu` kernel and its reduction bug.
pub fn e8_bbn_sweep(ns: &[u32]) -> Vec<BbnPoint> {
    let config = std_vm(REPRO_PROCESSORS);
    let apps = all_apps();
    let bugs = all_bugs();
    let app = apps.iter().find(|a| a.id == "lu").expect("lu exists");
    let bug = bugs
        .iter()
        .find(|b| b.id == "lu-reduction-atomicity")
        .expect("bug exists");
    let workload = app.workload(WorkloadScale::Standard);
    let buggy = bug.program();
    let seed = find_failing_seed(buggy.as_ref(), &config).expect("failing seed");
    let mut points = Vec::new();
    for &n in ns {
        let mech = if n <= 1 { Mechanism::Bb } else { Mechanism::BbN(n) };
        let over = record(workload.as_ref(), mech, &config, 7);
        let run = record(buggy.as_ref(), mech, &config, seed);
        let rep = explore::reproduce(
            buggy.as_ref(),
            &run.sketch,
            &run.sketch.meta.failure_signature,
            &config,
            &ExploreConfig {
                max_attempts: ATTEMPT_CAP,
                ..ExploreConfig::default()
            },
        );
        points.push(BbnPoint {
            n,
            overhead_pct: over.overhead_pct(),
            log_bytes: over.log_bytes,
            attempts: rep.reproduced.then_some(rep.attempts),
        });
    }
    points
}

/// Renders the BB-N sweep.
pub fn render_bbn(points: &[BbnPoint]) -> String {
    let trows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                if p.n <= 1 { "BB".into() } else { format!("BB-{}", p.n) },
                pct(p.overhead_pct),
                bytes(p.log_bytes),
                p.attempts
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| format!(">{ATTEMPT_CAP}")),
            ]
        })
        .collect();
    let mut out = String::from(
        "E8. Sketch-granularity sweep on lu (recording cost vs. reproduction effort)\n\n",
    );
    out.push_str(&table(&["mechanism", "overhead", "log", "attempts"], &trows));
    out.push_str(
        "\nheadline: coarser sampling trades recording overhead for replay attempts — the spectrum that motivates PRES's mechanism menu\n",
    );
    out
}

// ---------------------------------------------------------------------------
// Sanity check used by `run_all` and the integration tests.
// ---------------------------------------------------------------------------

/// Quick cross-check that a representative pipeline works end to end.
pub fn smoke() -> Result<(), String> {
    let config = std_vm(REPRO_PROCESSORS);
    let bugs = all_bugs();
    let bug = &bugs[0];
    let prog = bug.program();
    let seed = find_failing_seed(prog.as_ref(), &config).ok_or("no failing seed")?;
    let run = record(prog.as_ref(), Mechanism::Sync, &config, seed);
    let rep = explore::reproduce(
        prog.as_ref(),
        &run.sketch,
        &run.sketch.meta.failure_signature,
        &config,
        &ExploreConfig::default(),
    );
    if !rep.reproduced {
        return Err(format!("{} not reproduced", bug.id));
    }
    let cert = rep.certificate.ok_or("no certificate")?;
    let out = cert.replay(prog.as_ref()).map_err(|e| e.to_string())?;
    match out.status {
        RunStatus::Failed(_) => Ok(()),
        other => Err(format!("certificate replay ended {other}")),
    }
}

// ---------------------------------------------------------------------------
// E9 — ablation of the feedback engine's design choices.
// ---------------------------------------------------------------------------

/// One ablation variant's results across the bug suite.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Attempts per bug (bug order as in [`all_bugs`]); `None` = cap hit.
    pub attempts: Vec<Option<u32>>,
}

/// The design-choice ablations DESIGN.md calls out: candidate ranking,
/// frontier discipline, and periodic restarts, each toggled independently
/// against the full configuration. Runs under SYNC sketching with a
/// reduced cap (each variant runs the entire suite).
pub fn e9_ablation(cap: u32, mechanism: Mechanism) -> Vec<AblationRow> {
    use pres_core::explore::SearchOrder;
    use pres_core::feedback::Ranking;
    let config = std_vm(REPRO_PROCESSORS);
    let variants: Vec<(String, ExploreConfig)> = vec![
        ("full (lockset+recency, bfs, restarts)".into(), ExploreConfig {
            max_attempts: cap,
            ..ExploreConfig::default()
        }),
        ("ranking: recency only".into(), ExploreConfig {
            max_attempts: cap,
            ranking: Ranking::RecencyOnly,
            ..ExploreConfig::default()
        }),
        ("ranking: oldest first".into(), ExploreConfig {
            max_attempts: cap,
            ranking: Ranking::Oldest,
            ..ExploreConfig::default()
        }),
        ("search: dfs".into(), ExploreConfig {
            max_attempts: cap,
            search: SearchOrder::Dfs,
            ..ExploreConfig::default()
        }),
        ("restarts: off".into(), ExploreConfig {
            max_attempts: cap,
            restart_period: 0,
            ..ExploreConfig::default()
        }),
    ];
    let mut rows = Vec::new();
    // Record each bug once; reuse across variants.
    let mut recorded = Vec::new();
    for bug in all_bugs() {
        let prog = bug.program();
        let seed = find_failing_seed(prog.as_ref(), &config)
            .unwrap_or_else(|| panic!("{}: no failing seed", bug.id));
        let run = record(prog.as_ref(), mechanism, &config, seed);
        recorded.push((prog, run));
    }
    for (label, explore_cfg) in variants {
        let mut attempts = Vec::new();
        for (prog, run) in &recorded {
            let rep = explore::reproduce(
                prog.as_ref(),
                &run.sketch,
                &run.sketch.meta.failure_signature,
                &config,
                &explore_cfg,
            );
            attempts.push(rep.reproduced.then_some(rep.attempts));
        }
        rows.push(AblationRow {
            variant: label,
            attempts,
        });
    }
    rows
}

/// Renders the ablation table: per-variant worst case and mean, plus the
/// count of bugs each variant reproduces within the cap.
pub fn render_ablation_for(rows: &[AblationRow], cap: u32, mechanism: Mechanism) -> String {
    let bugs = all_bugs();
    let mut trows = Vec::new();
    for r in rows {
        let solved = r.attempts.iter().filter(|a| a.is_some()).count();
        let max = r
            .attempts
            .iter()
            .map(|a| a.unwrap_or(cap + 1))
            .max()
            .unwrap_or(0);
        let mean: f64 = r
            .attempts
            .iter()
            .map(|a| f64::from(a.unwrap_or(cap + 1)))
            .sum::<f64>()
            / r.attempts.len().max(1) as f64;
        trows.push(vec![
            r.variant.clone(),
            format!("{solved}/{}", bugs.len()),
            format!("{mean:.1}"),
            if max > cap {
                format!(">{cap}")
            } else {
                max.to_string()
            },
        ]);
    }
    let mut out = format!(
        "E9. Feedback-engine ablation ({} sketch, cap {cap}; attempts across all 13 bugs)\n\n",
        mechanism.name()
    );
    out.push_str(&table(
        &["variant", "reproduced", "mean att", "worst att"],
        &trows,
    ));
    out.push_str(
        "\nheadline: each heuristic earns its keep — disabling ranking, breadth-first search, or restarts costs attempts on the hard bugs\n",
    );
    out
}

// ---------------------------------------------------------------------------
// E10 — attempt distribution across distinct failing production runs.
// ---------------------------------------------------------------------------

/// Attempt statistics for one bug across several failing production runs.
#[derive(Debug, Clone)]
pub struct DistributionRow {
    /// Bug id.
    pub bug: String,
    /// Attempts for each distinct failing production seed.
    pub attempts: Vec<u32>,
}

impl DistributionRow {
    /// (min, median, max) of the attempt counts.
    pub fn summary(&self) -> (u32, u32, u32) {
        let mut v = self.attempts.clone();
        v.sort_unstable();
        if v.is_empty() {
            return (0, 0, 0);
        }
        (v[0], v[v.len() / 2], v[v.len() - 1])
    }
}

/// For each bug, reproduces from `runs` *distinct* failing production runs
/// (different seeds → different sketches) and records the attempt counts —
/// robustness beyond the single-seed numbers of E4. SYNC sketching.
pub fn e10_distribution(runs: usize, cap: u32) -> Vec<DistributionRow> {
    let config = std_vm(REPRO_PROCESSORS);
    let mut rows = Vec::new();
    for bug in all_bugs() {
        let prog = bug.program();
        let mut attempts = Vec::new();
        let mut seed = 0u64;
        while attempts.len() < runs && seed < SEED_SEARCH {
            let body = prog.root();
            let out = vm::run(
                VmConfig {
                    world: prog.world(),
                    ..config.clone()
                },
                prog.resources(),
                &mut RandomScheduler::new(seed),
                &mut NullObserver,
                move |ctx| body(ctx),
            );
            if out.status.is_failed() {
                let run = record(prog.as_ref(), Mechanism::Sync, &config, seed);
                let rep = explore::reproduce(
                    prog.as_ref(),
                    &run.sketch,
                    &run.sketch.meta.failure_signature,
                    &config,
                    &ExploreConfig {
                        max_attempts: cap,
                        ..ExploreConfig::default()
                    },
                );
                attempts.push(if rep.reproduced { rep.attempts } else { cap + 1 });
            }
            seed += 1;
        }
        rows.push(DistributionRow {
            bug: bug.id.to_string(),
            attempts,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E11 — parallel reproduction: wall-clock speedup by worker count.
// ---------------------------------------------------------------------------

/// One bug's wall-clock measurements across worker counts.
#[derive(Debug, Clone)]
pub struct WorkerScalingRow {
    /// Bug id.
    pub bug: String,
    /// Serial attempt count (`None` = cap hit) — bugs with a large value
    /// are the ones parallelism can help.
    pub serial_attempts: Option<u32>,
    /// `(workers, wall_clock, reproduced)` per measured point, in the
    /// order of the `worker_counts` argument.
    pub points: Vec<(usize, std::time::Duration, bool)>,
}

impl WorkerScalingRow {
    /// Wall-clock time at a worker count, if measured.
    pub fn time_at(&self, workers: usize) -> Option<std::time::Duration> {
        self.points
            .iter()
            .find(|(w, _, _)| *w == workers)
            .map(|(_, t, _)| *t)
    }

    /// Speedup of `workers` relative to the serial (1-worker) point.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        let serial = self.time_at(1)?.as_secs_f64();
        let t = self.time_at(workers)?.as_secs_f64();
        (t > 0.0).then(|| serial / t)
    }
}

/// For each corpus bug, records one failing run under `mechanism` and
/// measures the reproduction wall-clock at each worker count. Attempts
/// race on OS threads; the outcome (reproduced or not) must not depend on
/// the worker count even though the attempt counts may. Coarse sketches
/// (SYS) are where the pool earns its keep: SYNC reproduces most bugs in
/// 1–3 attempts, leaving nothing to parallelize.
pub fn e11_worker_scaling(
    mechanism: Mechanism,
    worker_counts: &[usize],
    cap: u32,
) -> Vec<WorkerScalingRow> {
    let config = std_vm(REPRO_PROCESSORS);
    let mut rows = Vec::new();
    for bug in all_bugs() {
        let prog = bug.program();
        let Some(seed) = find_failing_seed(prog.as_ref(), &config) else {
            continue;
        };
        let run = record(prog.as_ref(), mechanism, &config, seed);
        let mut serial_attempts = None;
        let mut points = Vec::new();
        for &workers in worker_counts {
            let start = std::time::Instant::now();
            let rep = explore::reproduce(
                prog.as_ref(),
                &run.sketch,
                &run.sketch.meta.failure_signature,
                &config,
                &ExploreConfig {
                    max_attempts: cap,
                    workers,
                    ..ExploreConfig::default()
                },
            );
            let elapsed = start.elapsed();
            if workers == 1 {
                serial_attempts = rep.reproduced.then_some(rep.attempts);
            }
            points.push((workers, elapsed, rep.reproduced));
        }
        rows.push(WorkerScalingRow {
            bug: bug.id.to_string(),
            serial_attempts,
            points,
        });
    }
    rows
}

/// Renders the worker-scaling table: per-bug wall-clock at each worker
/// count plus speedup vs. serial, with a hard-bug aggregate (bugs needing
/// ≥ 10 serial attempts are where the pool pays off).
pub fn render_worker_scaling(
    rows: &[WorkerScalingRow],
    worker_counts: &[usize],
    mechanism: Mechanism,
) -> String {
    let mut header: Vec<String> = vec!["bug".into(), "serial att".into()];
    for &w in worker_counts {
        header.push(format!("{w}w time"));
        if w > 1 {
            header.push(format!("{w}w spd"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut trows = Vec::new();
    for r in rows {
        let mut row = vec![
            r.bug.clone(),
            r.serial_attempts
                .map(|a| a.to_string())
                .unwrap_or_else(|| "cap".into()),
        ];
        for &w in worker_counts {
            match r.time_at(w) {
                Some(t) => row.push(format!("{:.1}ms", t.as_secs_f64() * 1e3)),
                None => row.push("-".into()),
            }
            if w > 1 {
                match r.speedup_at(w) {
                    Some(s) => row.push(format!("{s:.2}x")),
                    None => row.push("-".into()),
                }
            }
        }
        trows.push(row);
    }
    let mut out = format!(
        "E11. Parallel reproduction: wall-clock by worker count ({} sketch)\n\n",
        mechanism.name()
    );
    out.push_str(&table(&header_refs, &trows));
    // Aggregate over hard bugs: mean speedup at the widest worker count.
    let widest = worker_counts.iter().copied().max().unwrap_or(1);
    let hard: Vec<f64> = rows
        .iter()
        .filter(|r| r.serial_attempts.is_none_or(|a| a >= 10))
        .filter_map(|r| r.speedup_at(widest))
        .collect();
    if hard.is_empty() {
        out.push_str("\nheadline: no hard bugs (>= 10 serial attempts) in this run\n");
    } else {
        let mean = hard.iter().sum::<f64>() / hard.len() as f64;
        out.push_str(&format!(
            "\nheadline: mean {mean:.2}x wall-clock speedup at {widest} workers on the {} hard bugs (>= 10 serial attempts)\n",
            hard.len()
        ));
    }
    out
}

/// Renders the distribution table.
pub fn render_distribution(rows: &[DistributionRow], cap: u32) -> String {
    let mut trows = Vec::new();
    for r in rows {
        let (min, med, max) = r.summary();
        trows.push(vec![
            r.bug.clone(),
            r.attempts.len().to_string(),
            min.to_string(),
            med.to_string(),
            if max > cap {
                format!(">{cap}")
            } else {
                max.to_string()
            },
        ]);
    }
    let mut out = format!(
        "E10. Attempts across distinct failing production runs (SYNC sketch, cap {cap})\n\n"
    );
    out.push_str(&table(&["bug", "runs", "min", "median", "max"], &trows));
    let all_small = rows
        .iter()
        .all(|r| r.summary().1 < 10);
    out.push_str(&format!(
        "\nheadline: median attempts below 10 for {} — reproduction effort is robust to which production run failed\n",
        if all_small { "every bug" } else { "most bugs" }
    ));
    out
}

// ---------------------------------------------------------------------------
// E12 — attempt throughput: streaming vs. buffered feedback, by workers.
// ---------------------------------------------------------------------------

/// One measured point of the throughput experiment: a feedback mode at a
/// worker count.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Feedback mode the explorer ran under.
    pub mode: FeedbackMode,
    /// Worker threads.
    pub workers: usize,
    /// Attempts executed (always the cap: the target is unmatchable).
    pub attempts: u32,
    /// Wall clock for the whole reproduction.
    pub wall_clock: std::time::Duration,
}

impl ThroughputPoint {
    /// Replay attempts per wall-clock second.
    pub fn attempts_per_sec(&self) -> f64 {
        let secs = self.wall_clock.as_secs_f64();
        if secs > 0.0 {
            f64::from(self.attempts) / secs
        } else {
            f64::INFINITY
        }
    }
}

/// One bug's throughput measurements.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Bug id.
    pub bug: String,
    /// All measured (mode × workers) points.
    pub points: Vec<ThroughputPoint>,
}

impl ThroughputRow {
    /// The point for a mode at a worker count, if measured.
    pub fn point(&self, mode: FeedbackMode, workers: usize) -> Option<&ThroughputPoint> {
        self.points
            .iter()
            .find(|p| p.mode == mode && p.workers == workers)
    }

    /// Streaming-over-buffered throughput ratio at a worker count.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        let streaming = self.point(FeedbackMode::Streaming, workers)?.attempts_per_sec();
        let buffered = self.point(FeedbackMode::Buffered, workers)?.attempts_per_sec();
        (buffered > 0.0).then(|| streaming / buffered)
    }
}

/// Measures pure attempt throughput for each bug in `bugs`: an unmatchable
/// target signature forces the explorer to spend exactly `cap` attempts
/// (every one a failed feedback attempt — the worst case the streaming
/// path optimizes), so attempts-per-second is `cap / wall-clock`. Each bug
/// is measured under both feedback modes at every worker count; the
/// buffered mode *is* the pre-streaming pipeline, so the ratio is a true
/// before/after comparison inside one binary.
pub fn e12_attempt_throughput(
    bugs: &[BugCase],
    mechanism: Mechanism,
    worker_counts: &[usize],
    cap: u32,
) -> Vec<ThroughputRow> {
    let config = std_vm(REPRO_PROCESSORS);
    let mut rows = Vec::new();
    for bug in bugs {
        let prog = bug.program();
        let Some(seed) = find_failing_seed(prog.as_ref(), &config) else {
            continue;
        };
        let run = record(prog.as_ref(), mechanism, &config, seed);
        let mut points = Vec::new();
        for &workers in worker_counts {
            for mode in [FeedbackMode::Buffered, FeedbackMode::Streaming] {
                let start = std::time::Instant::now();
                let rep = explore::reproduce(
                    prog.as_ref(),
                    &run.sketch,
                    "assert:__throughput_probe__",
                    &config,
                    &ExploreConfig {
                        max_attempts: cap,
                        workers,
                        feedback_mode: mode,
                        ..ExploreConfig::default()
                    },
                );
                assert!(!rep.reproduced, "probe target must be unmatchable");
                points.push(ThroughputPoint {
                    mode,
                    workers,
                    attempts: rep.attempts,
                    wall_clock: start.elapsed(),
                });
            }
        }
        rows.push(ThroughputRow {
            bug: bug.id.to_string(),
            points,
        });
    }
    rows
}

/// Renders the throughput table: per bug, buffered and streaming
/// attempts-per-second at each worker count plus the streaming speedup.
pub fn render_throughput(
    rows: &[ThroughputRow],
    worker_counts: &[usize],
    mechanism: Mechanism,
    cap: u32,
) -> String {
    let mut header: Vec<String> = vec!["bug".into()];
    for &w in worker_counts {
        header.push(format!("{w}w buf a/s"));
        header.push(format!("{w}w str a/s"));
        header.push(format!("{w}w spd"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut trows = Vec::new();
    for r in rows {
        let mut row = vec![r.bug.clone()];
        for &w in worker_counts {
            for mode in [FeedbackMode::Buffered, FeedbackMode::Streaming] {
                match r.point(mode, w) {
                    Some(p) => row.push(format!("{:.0}", p.attempts_per_sec())),
                    None => row.push("-".into()),
                }
            }
            match r.speedup_at(w) {
                Some(s) => row.push(format!("{s:.2}x")),
                None => row.push("-".into()),
            }
        }
        trows.push(row);
    }
    let mut out = format!(
        "E12. Attempt throughput: streaming vs. buffered feedback ({} sketch, cap {cap})\n\n",
        mechanism.name()
    );
    out.push_str(&table(&header_refs, &trows));
    for &w in worker_counts {
        let spds: Vec<f64> = rows.iter().filter_map(|r| r.speedup_at(w)).collect();
        if !spds.is_empty() {
            let mean = spds.iter().sum::<f64>() / spds.len() as f64;
            out.push_str(&format!(
                "\nheadline: mean {mean:.2}x streaming throughput at {w} workers over {} bugs",
                spds.len()
            ));
        }
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// E15 — executor pool: pooled vs. spawning attempt throughput.
// ---------------------------------------------------------------------------

/// One measured point of the pool experiment: an executor at a worker count.
#[derive(Debug, Clone)]
pub struct PoolPoint {
    /// Execution engine the attempts ran on.
    pub executor: ExecutorKind,
    /// Worker threads.
    pub workers: usize,
    /// Attempts executed (always the cap: the target is unmatchable).
    pub attempts: u32,
    /// Wall clock for the whole reproduction.
    pub wall_clock: std::time::Duration,
}

impl PoolPoint {
    /// Replay attempts per wall-clock second.
    pub fn attempts_per_sec(&self) -> f64 {
        let secs = self.wall_clock.as_secs_f64();
        if secs > 0.0 {
            f64::from(self.attempts) / secs
        } else {
            f64::INFINITY
        }
    }
}

/// One bug's pooled-vs-spawning measurements, plus the steady-state spawn
/// hygiene probe.
#[derive(Debug, Clone)]
pub struct PoolRow {
    /// Bug id.
    pub bug: String,
    /// All measured (executor × workers) points.
    pub points: Vec<PoolPoint>,
    /// `RunStats::os_spawns` of the first (cold) run on a fresh pool: the
    /// pool warming to the program's peak concurrent vthread count.
    pub cold_os_spawns: u64,
    /// `RunStats::os_spawns` of the second (warm) run on the same pool —
    /// **must be zero**: the steady-state invariant CI asserts.
    pub warm_os_spawns: u64,
}

impl PoolRow {
    /// The point for an executor at a worker count, if measured.
    pub fn point(&self, executor: ExecutorKind, workers: usize) -> Option<&PoolPoint> {
        self.points
            .iter()
            .find(|p| p.executor == executor && p.workers == workers)
    }

    /// Pooled-over-spawning throughput ratio at a worker count.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        let pooled = self.point(ExecutorKind::Pooled, workers)?.attempts_per_sec();
        let spawning = self
            .point(ExecutorKind::Spawning, workers)?
            .attempts_per_sec();
        (spawning > 0.0).then(|| pooled / spawning)
    }
}

/// Geometric mean of the pooled-over-spawning speedups at a worker count.
pub fn pool_speedup_geomean(rows: &[PoolRow], workers: usize) -> Option<f64> {
    let spds: Vec<f64> = rows.iter().filter_map(|r| r.speedup_at(workers)).collect();
    if spds.is_empty() {
        return None;
    }
    let log_sum: f64 = spds.iter().map(|s| s.ln()).sum();
    Some((log_sum / spds.len() as f64).exp())
}

/// Measures attempt throughput of the pooled executor against the spawning
/// engine, the same way E12 measures feedback modes: an unmatchable target
/// signature forces the explorer to spend exactly `cap` attempts, so
/// attempts-per-second is `cap / wall-clock`. Spawn cost is per *vthread*
/// per attempt, so the win scales with the bug's thread count and shrinks
/// with its attempt length — largest on the short-attempt bugs.
///
/// Each row also carries a direct two-run hygiene probe on a fresh pool:
/// the first run warms it (`cold_os_spawns` = peak concurrent vthreads),
/// the second must report **zero** OS spawns.
pub fn e15_pool_throughput(
    bugs: &[BugCase],
    mechanism: Mechanism,
    worker_counts: &[usize],
    cap: u32,
) -> Vec<PoolRow> {
    let config = std_vm(REPRO_PROCESSORS);
    let mut rows = Vec::new();
    for bug in bugs {
        let prog = bug.program();
        let Some(seed) = find_failing_seed(prog.as_ref(), &config) else {
            continue;
        };
        let run = record(prog.as_ref(), mechanism, &config, seed);
        let mut points = Vec::new();
        for &workers in worker_counts {
            for executor in [ExecutorKind::Spawning, ExecutorKind::Pooled] {
                let start = std::time::Instant::now();
                let rep = explore::reproduce(
                    prog.as_ref(),
                    &run.sketch,
                    "assert:__throughput_probe__",
                    &config,
                    &ExploreConfig {
                        max_attempts: cap,
                        workers,
                        executor,
                        ..ExploreConfig::default()
                    },
                );
                assert!(!rep.reproduced, "probe target must be unmatchable");
                points.push(PoolPoint {
                    executor,
                    workers,
                    attempts: rep.attempts,
                    wall_clock: start.elapsed(),
                });
            }
        }
        // Steady-state spawn hygiene: two identical runs on one pool; the
        // second must create no OS threads.
        let pool = VthreadPool::new(8);
        let probe = |pool: &VthreadPool| {
            let body = prog.root();
            let out = vm::run_with_pool(
                VmConfig {
                    world: prog.world(),
                    ..config.clone()
                },
                prog.resources(),
                &mut RandomScheduler::new(seed),
                &mut NullObserver,
                pool,
                move |ctx| body(ctx),
            );
            out.stats.os_spawns
        };
        let cold_os_spawns = probe(&pool);
        let warm_os_spawns = probe(&pool);
        rows.push(PoolRow {
            bug: bug.id.to_string(),
            points,
            cold_os_spawns,
            warm_os_spawns,
        });
    }
    rows
}

/// Renders the pool table: per bug, spawning and pooled attempts-per-second
/// at each worker count, the pooled speedup, and the spawn hygiene columns.
pub fn render_pool(
    rows: &[PoolRow],
    worker_counts: &[usize],
    mechanism: Mechanism,
    cap: u32,
) -> String {
    let mut header: Vec<String> = vec!["bug".into()];
    for &w in worker_counts {
        header.push(format!("{w}w spawn a/s"));
        header.push(format!("{w}w pool a/s"));
        header.push(format!("{w}w spd"));
    }
    header.push("cold os-spawns".into());
    header.push("warm os-spawns".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut trows = Vec::new();
    for r in rows {
        let mut row = vec![r.bug.clone()];
        for &w in worker_counts {
            for executor in [ExecutorKind::Spawning, ExecutorKind::Pooled] {
                match r.point(executor, w) {
                    Some(p) => row.push(format!("{:.0}", p.attempts_per_sec())),
                    None => row.push("-".into()),
                }
            }
            match r.speedup_at(w) {
                Some(s) => row.push(format!("{s:.2}x")),
                None => row.push("-".into()),
            }
        }
        row.push(r.cold_os_spawns.to_string());
        row.push(r.warm_os_spawns.to_string());
        trows.push(row);
    }
    let mut out = format!(
        "E15. Attempt throughput: pooled vs. spawning executors ({} sketch, cap {cap})\n\n",
        mechanism.name()
    );
    out.push_str(&table(&header_refs, &trows));
    for &w in worker_counts {
        if let Some(geomean) = pool_speedup_geomean(rows, w) {
            out.push_str(&format!(
                "\nheadline: geomean {geomean:.2}x pooled throughput at {w} worker(s) over {} bugs",
                rows.iter().filter(|r| r.speedup_at(w).is_some()).count()
            ));
        }
    }
    out.push('\n');
    out
}
