//! E8: BB-N sketch-granularity sweep.
use pres_bench::experiments::{e8_bbn_sweep, render_bbn};

fn main() {
    let points = e8_bbn_sweep(&[1, 2, 4, 8, 16, 64]);
    print!("{}", render_bbn(&points));
}
