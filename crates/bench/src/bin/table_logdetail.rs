//! E3b: sketch composition — which event class each mechanism's log bytes
//! go to, and the codec's density vs. a fixed-width encoding.
use pres_apps::registry::{all_apps, WorkloadScale};
use pres_bench::experiments::{standard_mechanisms, std_vm, OVERHEAD_PROCESSORS};
use pres_core::recorder::record;
use pres_core::stats::SketchStats;

fn main() {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.id == "httpd").expect("httpd");
    let prog = app.workload(WorkloadScale::Standard);
    let config = std_vm(OVERHEAD_PROCESSORS);
    println!("E3b. Sketch composition on httpd (standard workload)\n");
    for mech in standard_mechanisms() {
        let sketch = record(prog.as_ref(), mech, &config, 7).sketch;
        let stats = SketchStats::of(&sketch);
        println!("{}: {}", mech.name(), stats);
    }
}
