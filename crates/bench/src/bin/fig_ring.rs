//! E21: always-on ring recording — flush size vs. full-sketch size, and
//! reproduction from the retained window.
//!
//! Two arms:
//!
//! * **Corpus** — every bug recorded classically and under a bounded ring
//!   (two epochs of ~one third of the classic run each). Asserts the
//!   structural claims: retained entries never exceed the configured
//!   budget, the epoch directory accounts for the window exactly, and
//!   every bug reproduces from its flush. Corpus runs are short, so the
//!   embedded VM snapshot dominates the flush — the table reports that
//!   honestly rather than hiding it.
//! * **Soak** — the headline. A long synchronized production phase
//!   (three workers, R locked rounds each) ending in a racy finale, with
//!   a *fixed* ring budget. As R grows the classic sketch grows
//!   linearly while the flush stays flat (bounded window + constant-size
//!   state snapshot), so the flush/full ratio falls without bound. The
//!   binary asserts the largest soak point flushes at most a quarter of
//!   the full sketch and that every soak point reproduces from its
//!   window.
//!
//! ```text
//! fig_ring [--reduced] [--out FILE]
//! ```
//!
//! Prints the tables and writes the measurements as JSON (for the CI
//! artifact) to `BENCH_ring.json` unless `--out` overrides it.
use pres_apps::registry::all_bugs;
use pres_bench::render::{bytes, table};
use pres_core::codec::{checkpoint_segment_bytes, encode_sketch};
use pres_core::program::{ClosureProgram, Program};
use pres_core::recorder::RingConfig;
use pres_core::sketch::Mechanism;
use pres_core::Pres;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;
use pres_tvm::sys::WorldConfig;

/// One measured (program, ring budget) cell.
struct RingRow {
    program: String,
    full_entries: usize,
    retained_entries: usize,
    dropped_entries: u64,
    boundary: u64,
    full_bytes: usize,
    flush_bytes: usize,
    checkpoint_bytes: u64,
    classic_overhead_pct: f64,
    ring_overhead_pct: f64,
    attempts: u32,
}

impl RingRow {
    fn flush_ratio(&self) -> f64 {
        self.flush_bytes as f64 / self.full_bytes as f64
    }
}

/// The soak program: `workers` threads each run `rounds` correctly
/// locked increments (the long, boring production phase), then finish
/// with an unsynchronized read-compute-write on a shared flag — a lost
/// update the root thread's final check catches. Shared state is a
/// handful of scalars, so the checkpoint snapshot stays the same size
/// however long the production phase runs.
fn soak_program(rounds: u64) -> impl Program {
    const WORKERS: u32 = 3;
    let mut spec = ResourceSpec::new();
    let counter = spec.var("counter", 0);
    let flag = spec.var("flag", 0);
    let lock = spec.lock("lock");
    ClosureProgram::new(
        &format!("ring-soak-{rounds}"),
        spec,
        WorldConfig::default(),
        move || {
            Box::new(move |ctx: &mut Ctx| {
                let workers: Vec<ThreadId> = (0..WORKERS)
                    .map(|i| {
                        ctx.spawn(&format!("w{i}"), move |ctx| {
                            for _ in 0..rounds {
                                ctx.with_lock(lock, |ctx| {
                                    let v = ctx.read(counter);
                                    ctx.compute(2);
                                    ctx.write(counter, v + 1);
                                });
                            }
                            // Racy finale: check-then-act without the lock.
                            let v = ctx.read(flag);
                            ctx.compute(3);
                            ctx.write(flag, v + 1);
                        })
                    })
                    .collect();
                for w in workers {
                    ctx.join(w);
                }
                let v = ctx.read(flag);
                ctx.check(
                    v == u64::from(WORKERS),
                    "lost update in unsynchronized finale",
                );
            })
        },
    )
}

fn measure(prog: &dyn Program, ring_cfg: RingConfig, seed_cap: u64) -> RingRow {
    let classic = Pres::new(Mechanism::Sync)
        .record_until_failure(prog, 0..seed_cap)
        .unwrap_or_else(|| panic!("{}: no failing production run", prog.name()));
    let ring = Pres::new(Mechanism::Sync)
        .with_ring(ring_cfg.clone())
        .record_until_failure(prog, 0..seed_cap)
        .unwrap_or_else(|| panic!("{}: no failing ring run", prog.name()));
    let cp = ring
        .sketch
        .checkpoint
        .as_deref()
        .expect("ring mode attaches a checkpoint");

    // Bounded memory: the retained window never exceeds the budget, and
    // the epoch directory accounts for exactly the retained entries.
    let budget = ring_cfg.ring_epochs as u64 * ring_cfg.epoch_entries;
    assert!(
        ring.sketch.len() as u64 <= budget,
        "{}: {} retained entries exceed the budget {budget}",
        prog.name(),
        ring.sketch.len(),
    );
    assert_eq!(cp.retained_entries(), ring.sketch.len() as u64);

    let full_encoded = encode_sketch(&classic.sketch);
    let flush_encoded = encode_sketch(&ring.sketch);
    let checkpoint_bytes = checkpoint_segment_bytes(&flush_encoded)
        .expect("flush container parses")
        .expect("flush container carries a checkpoint segment");

    // Reproduction from the flush: fast-forward to the boundary, search
    // only the retained window.
    let result = Pres::new(Mechanism::Sync)
        .with_max_attempts(300)
        .reproduce(prog, &ring);
    assert!(
        result.reproduced,
        "{}: not reproduced from the retained window",
        prog.name()
    );
    let cert = result.certificate.expect("certificate exists on success");
    assert_eq!(cert.expected_signature, ring.sketch.meta.failure_signature);

    RingRow {
        program: prog.name(),
        full_entries: classic.sketch.len(),
        retained_entries: ring.sketch.len(),
        dropped_entries: cp.dropped_entries,
        boundary: cp.boundary,
        full_bytes: full_encoded.len(),
        flush_bytes: flush_encoded.len(),
        checkpoint_bytes,
        classic_overhead_pct: classic.overhead_pct(),
        ring_overhead_pct: ring.overhead_pct(),
        attempts: result.attempts,
    }
}

fn render(title: &str, rows: &[RingRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.clone(),
                r.full_entries.to_string(),
                format!("{}(-{})", r.retained_entries, r.dropped_entries),
                r.boundary.to_string(),
                bytes(r.full_bytes as u64),
                bytes(r.flush_bytes as u64),
                bytes(r.checkpoint_bytes),
                format!("{:.2}x", 1.0 / r.flush_ratio()),
                format!(
                    "{:.2}%/{:.2}%",
                    r.classic_overhead_pct, r.ring_overhead_pct
                ),
                r.attempts.to_string(),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        table(
            &[
                "program",
                "entries",
                "window",
                "boundary",
                "full",
                "flush",
                "ckpt",
                "shrink",
                "ovh cls/ring",
                "attempts",
            ],
            &body,
        )
    )
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(corpus: &[RingRow], soak: &[RingRow]) -> String {
    let arm = |rows: &[RingRow]| -> String {
        rows.iter()
            .map(|r| {
                format!(
                    "    {{\"program\": \"{}\", \"full_entries\": {}, \"retained_entries\": {}, \"dropped_entries\": {}, \"boundary\": {}, \"full_bytes\": {}, \"flush_bytes\": {}, \"checkpoint_bytes\": {}, \"shrink\": {:.3}, \"classic_overhead_pct\": {:.4}, \"ring_overhead_pct\": {:.4}, \"attempts\": {}}}",
                    json_escape(&r.program),
                    r.full_entries,
                    r.retained_entries,
                    r.dropped_entries,
                    r.boundary,
                    r.full_bytes,
                    r.flush_bytes,
                    r.checkpoint_bytes,
                    1.0 / r.flush_ratio(),
                    r.classic_overhead_pct,
                    r.ring_overhead_pct,
                    r.attempts,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    format!(
        "{{\n  \"experiment\": \"E21\",\n  \"corpus\": [\n{}\n  ],\n  \"soak\": [\n{}\n  ]\n}}\n",
        arm(corpus),
        arm(soak)
    )
}

fn main() {
    let mut reduced = false;
    let mut out_path = String::from("BENCH_ring.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }

    // Corpus arm: bounded ring sized off each bug's classic run.
    let mut bugs = all_bugs();
    if reduced {
        // CI smoke: three bugs keep the release-mode step fast while
        // still exercising rotation, flush, and window reproduction.
        bugs.truncate(3);
    }
    let mut corpus = Vec::new();
    for bug in &bugs {
        let prog = bug.program();
        let classic_len = Pres::new(Mechanism::Sync)
            .record_until_failure(prog.as_ref(), 0..5000)
            .unwrap_or_else(|| panic!("{}: no failing production run", bug.id))
            .sketch
            .len();
        let ring_cfg = RingConfig {
            epoch_entries: (classic_len as u64 / 3).max(8),
            epoch_cost: 0,
            ring_epochs: 2,
        };
        corpus.push(measure(prog.as_ref(), ring_cfg, 5000));
    }
    println!("{}", render("E21a: corpus, window = 2 epochs of len/3", &corpus));

    // Soak arm: fixed ring budget, growing production run.
    let rounds: &[u64] = if reduced {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    let soak_cfg = RingConfig {
        epoch_entries: 64,
        epoch_cost: 0,
        ring_epochs: 2,
    };
    let soak: Vec<RingRow> = rounds
        .iter()
        .map(|&r| measure(&soak_program(r), soak_cfg.clone(), 2000))
        .collect();
    println!(
        "{}",
        render("E21b: soak, fixed window = 2 epochs of 64 entries", &soak)
    );

    // The headline: with a fixed budget the flush stays flat while the
    // full sketch grows, so the largest soak point must flush at most a
    // quarter of its full sketch. (Corpus shrink ratios are reported,
    // not asserted — corpus runs are short enough that the constant
    // snapshot cost dominates, which the table shows honestly.)
    let largest = soak.last().expect("at least one soak point");
    assert!(
        largest.flush_bytes * 4 <= largest.full_bytes,
        "{}: flush {} not <= 1/4 of full {}",
        largest.program,
        largest.flush_bytes,
        largest.full_bytes,
    );
    // And the window really rotated everywhere in the soak arm.
    for r in &soak {
        assert!(
            r.dropped_entries > 0,
            "{}: soak point never rotated its ring",
            r.program
        );
    }
    println!(
        "headline: {} flushes {} of a {} full sketch ({:.1}x smaller)",
        largest.program,
        bytes(largest.flush_bytes as u64),
        bytes(largest.full_bytes as u64),
        1.0 / largest.flush_ratio(),
    );

    let json = to_json(&corpus, &soak);
    std::fs::write(&out_path, &json).expect("write ring JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
