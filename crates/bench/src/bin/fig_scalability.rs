//! E5: recording overhead and replay attempts vs. processor count.
use pres_bench::experiments::{e5_scalability, render_scalability};

fn main() {
    let points = e5_scalability(&[2, 4, 8, 16]);
    print!("{}", render_scalability(&points));
}
