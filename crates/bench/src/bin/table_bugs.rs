//! E1: the applications-and-bugs table.
fn main() {
    print!("{}", pres_bench::experiments::e1_table_bugs());
}
