//! E4: replay attempts until reproduction, per bug per mechanism.
use pres_bench::experiments::{e4_attempts, render_attempts, ATTEMPT_CAP};

fn main() {
    let rows = e4_attempts(ATTEMPT_CAP);
    print!("{}", render_attempts(&rows, ATTEMPT_CAP));
}
