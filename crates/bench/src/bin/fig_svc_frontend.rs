//! E18: the many-connection front end — request latency under ~1000
//! concurrent loopback clients, and the daemon's peak memory for large
//! submits, streamed vs monolithic.
//!
//! Two phases, each against a daemon running in a **separate process**
//! (this binary re-execs itself with `--daemon`), so the measuring
//! clients' own memory never pollutes the daemon's peak-RSS reading:
//!
//! 1. **Latency.** N client threads hammer one sharded daemon with a
//!    mixed workload — mostly STATUS polls, every tenth request a chunked
//!    streaming submit of a distinct blob — and every request's
//!    roundtrip latency lands in one merged distribution (p50/p95/p99 by
//!    nearest rank). Full mode runs 1000 clients; `--reduced` runs 256,
//!    sized for CI runners whose default fd limit is 1024.
//! 2. **Peak RSS.** For each front end (the PR 5 legacy thread-per-
//!    connection baseline, then the sharded workers), a fresh daemon
//!    ingests one large distinct blob per client — monolithic v1 SUBMIT
//!    frames on legacy, 256 KiB streamed chunks on sharded — and the
//!    daemon's `VmHWM` (peak resident set, from `/proc/<pid>/status`) is
//!    read before shutdown. The legacy front end must materialize every
//!    in-flight submit in full; the streaming path holds one chunk per
//!    connection.
//!
//! ```text
//! fig_svc_frontend [--reduced] [--clients N] [--max-p99-ms N] [--out FILE]
//! ```
//!
//! Prints both tables and writes `BENCH_svc_frontend.json` (or `--out`)
//! for the CI artifact. With `--max-p99-ms` the run fails if the latency
//! phase's p99 exceeds the bound — the CI regression tripwire.

use pres_svc::queue::QueueConfig;
use pres_svc::server::{FrontendKind, ServeOptions, Server};
use pres_svc::Client;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const STREAM_CHUNK: usize = 256 << 10;

// ---------------------------------------------------------------------------
// Daemon-in-a-child-process plumbing.
// ---------------------------------------------------------------------------

/// Child mode: start a daemon, print the bound address, serve until a
/// SHUTDOWN frame drains us.
fn run_daemon(frontend: FrontendKind, data_dir: String) -> ! {
    let server = Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.into(),
        queue: QueueConfig {
            workers: 1,
            max_attempts: 1,
            max_retries: 0,
            ..QueueConfig::default()
        },
        log_interval: None,
        frontend,
        // The latency phase holds every client connection open at once.
        max_connections: 8192,
        read_timeout: Duration::from_secs(120),
        ..ServeOptions::default()
    })
    .expect("daemon starts");
    println!("LISTEN {}", server.addr());
    server.join();
    std::process::exit(0);
}

struct Daemon {
    child: Child,
    addr: String,
    frontend: FrontendKind,
    data_dir: std::path::PathBuf,
}

impl Daemon {
    fn spawn(frontend: FrontendKind, tag: &str) -> Daemon {
        let data_dir = std::env::temp_dir().join(format!(
            "pres-fig-frontend-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        let exe = std::env::current_exe().expect("own path");
        let kind = match frontend {
            FrontendKind::Sharded => "sharded",
            FrontendKind::Legacy => "legacy",
        };
        let mut child = Command::new(exe)
            .args(["--daemon", kind, data_dir.to_str().unwrap()])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn daemon child");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon prints its address")
                .expect("read child stdout");
            if let Some(addr) = line.strip_prefix("LISTEN ") {
                break addr.to_string();
            }
        };
        Daemon {
            child,
            addr,
            frontend,
            data_dir,
        }
    }

    /// The daemon's peak resident set (KiB) so far, from `VmHWM`.
    fn peak_rss_kb(&self) -> u64 {
        let status = std::fs::read_to_string(format!("/proc/{}/status", self.child.id()))
            .expect("daemon /proc status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("VmHWM:"))
            .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
            .expect("VmHWM in /proc status")
    }

    fn shutdown(mut self) {
        if let Ok(mut c) = Client::connect(&self.addr) {
            // The legacy front end only speaks v1.
            if self.frontend == FrontendKind::Legacy {
                c.use_v1();
            }
            c.shutdown().expect("daemon acknowledges shutdown");
        }
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.data_dir);
    }
}

fn connect_retrying(addr: &str) -> Client {
    // A thousand simultaneous connects can transiently overflow the
    // accept backlog; back off and retry rather than counting that
    // against the daemon.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut pause = Duration::from_millis(5);
    loop {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) if Instant::now() < deadline => {
                std::thread::sleep(pause);
                pause = (pause * 2).min(Duration::from_millis(200));
                let _ = e;
            }
            Err(e) => panic!("cannot connect to {addr}: {e}"),
        }
    }
}

/// Deterministic filler so every (client, op) submits distinct bytes —
/// dedup must not collapse the workload.
fn blob(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect()
}

/// Best-effort `RLIMIT_NOFILE` raise toward the hard cap: the full run
/// holds >1000 sockets in this process alone.
#[cfg(target_os = "linux")]
fn raise_fd_limit() {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe {
        let mut r = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut r) == 0 && r.cur < r.max {
            r.cur = r.max;
            let _ = setrlimit(RLIMIT_NOFILE, &r);
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn raise_fd_limit() {}

// ---------------------------------------------------------------------------
// Phase 1: latency under many concurrent clients.
// ---------------------------------------------------------------------------

struct LatencyResult {
    clients: usize,
    ops: usize,
    submits: usize,
    wall_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

fn latency_phase(clients: usize, ops_per_client: usize) -> LatencyResult {
    let daemon = Daemon::spawn(FrontendKind::Sharded, "latency");
    let addr = daemon.addr.clone();

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::Builder::new()
                .stack_size(128 << 10)
                .spawn(move || {
                    let mut client = connect_retrying(&addr);
                    client.set_chunk_bytes(8 << 10);
                    let mut lats = Vec::with_capacity(ops_per_client);
                    let mut submits = 0usize;
                    for op in 0..ops_per_client {
                        let t = Instant::now();
                        if op % 10 == 9 {
                            // A streamed submit of a distinct 64 KiB blob.
                            // The sketch is garbage, so the job fails fast;
                            // the measured work is the front end's.
                            let bytes =
                                blob((id as u64) << 32 | op as u64, 64 << 10);
                            client
                                .submit("pbzip-order", &bytes)
                                .expect("streamed submit accepted");
                            submits += 1;
                        } else {
                            let _ = client
                                .status((id * ops_per_client + op) as u64)
                                .expect("status answered");
                        }
                        lats.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    (lats, submits)
                })
                .expect("spawn client thread")
        })
        .collect();

    let mut all = Vec::with_capacity(clients * ops_per_client);
    let mut submits = 0usize;
    for h in handles {
        let (lats, s) = h.join().expect("client thread");
        all.extend(lats);
        submits += s;
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    daemon.shutdown();

    all.sort_by(|a, b| a.total_cmp(b));
    LatencyResult {
        clients,
        ops: all.len(),
        submits,
        wall_ms,
        p50_ms: percentile(&all, 50.0),
        p95_ms: percentile(&all, 95.0),
        p99_ms: percentile(&all, 99.0),
        max_ms: *all.last().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Phase 2: daemon peak RSS, monolithic vs streamed large submits.
// ---------------------------------------------------------------------------

struct RssResult {
    frontend: &'static str,
    clients: usize,
    blob_bytes: usize,
    peak_rss_kb: u64,
}

fn rss_phase(frontend: FrontendKind, clients: usize, blob_bytes: usize) -> RssResult {
    let (name, tag) = match frontend {
        FrontendKind::Legacy => ("legacy-monolithic", "rss-legacy"),
        FrontendKind::Sharded => ("sharded-streaming", "rss-sharded"),
    };
    let daemon = Daemon::spawn(frontend, tag);
    let addr = daemon.addr.clone();

    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::Builder::new()
                .stack_size(128 << 10)
                .spawn(move || {
                    let mut client = connect_retrying(&addr);
                    let bytes = blob(0xAB00 + id as u64, blob_bytes);
                    match frontend {
                        // The baseline dialect: the whole blob in one
                        // frame, which the daemon must materialize.
                        FrontendKind::Legacy => {
                            client.use_v1();
                        }
                        FrontendKind::Sharded => {
                            client.set_chunk_bytes(STREAM_CHUNK);
                        }
                    }
                    client.submit("pbzip-order", &bytes).expect("submit accepted");
                })
                .expect("spawn client thread")
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // Read the high-water mark while the daemon is still alive.
    let peak_rss_kb = daemon.peak_rss_kb();
    daemon.shutdown();
    RssResult {
        frontend: name,
        clients,
        blob_bytes,
        peak_rss_kb,
    }
}

// ---------------------------------------------------------------------------
// Output.
// ---------------------------------------------------------------------------

fn to_json(lat: &LatencyResult, rss: &[RssResult]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"E18\",\n");
    out.push_str(&format!(
        "  \"latency\": {{\"clients\": {}, \"ops\": {}, \"streamed_submits\": {}, \"wall_ms\": {:.1}, \"ops_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}},\n",
        lat.clients,
        lat.ops,
        lat.submits,
        lat.wall_ms,
        lat.ops as f64 / (lat.wall_ms / 1e3),
        lat.p50_ms,
        lat.p95_ms,
        lat.p99_ms,
        lat.max_ms,
    ));
    out.push_str("  \"peak_rss\": [\n");
    for (i, r) in rss.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"frontend\": \"{}\", \"clients\": {}, \"blob_bytes\": {}, \"peak_rss_kb\": {}}}{}\n",
            r.frontend,
            r.clients,
            r.blob_bytes,
            r.peak_rss_kb,
            if i + 1 < rss.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut reduced = false;
    let mut clients: Option<usize> = None;
    let mut max_p99_ms: Option<f64> = None;
    let mut out_path = String::from("BENCH_svc_frontend.json");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--daemon" => {
                let kind = match args.next().expect("--daemon needs a kind").as_str() {
                    "sharded" => FrontendKind::Sharded,
                    "legacy" => FrontendKind::Legacy,
                    other => panic!("unknown front end '{other}'"),
                };
                let dir = args.next().expect("--daemon needs a data dir");
                run_daemon(kind, dir);
            }
            "--reduced" => reduced = true,
            "--clients" => {
                clients = Some(args.next().expect("--clients needs N").parse().unwrap())
            }
            "--max-p99-ms" => {
                max_p99_ms = Some(args.next().expect("--max-p99-ms needs N").parse().unwrap())
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    raise_fd_limit();

    // CI runners default to 1024 fds; the reduced shape stays well under
    // that even if the raise above was a no-op.
    let clients = clients.unwrap_or(if reduced { 256 } else { 1000 });
    let ops_per_client = if reduced { 20 } else { 30 };
    let (rss_clients, blob_bytes) = if reduced {
        (16, 4 << 20)
    } else {
        (32, 8 << 20)
    };

    println!(
        "E18: front-end latency with {clients} concurrent clients \
         ({ops_per_client} ops each, every 10th a streamed submit)\n"
    );
    let lat = latency_phase(clients, ops_per_client);
    println!(
        "{:>8} | {:>7} | {:>8} | {:>9} | {:>8} | {:>8} | {:>8} | {:>8}",
        "clients", "ops", "wall ms", "ops/s", "p50 ms", "p95 ms", "p99 ms", "max ms"
    );
    println!("{}", "-".repeat(84));
    println!(
        "{:>8} | {:>7} | {:>8.0} | {:>9.1} | {:>8.2} | {:>8.2} | {:>8.2} | {:>8.2}",
        lat.clients,
        lat.ops,
        lat.wall_ms,
        lat.ops as f64 / (lat.wall_ms / 1e3),
        lat.p50_ms,
        lat.p95_ms,
        lat.p99_ms,
        lat.max_ms,
    );

    println!(
        "\nE18: daemon peak RSS, {rss_clients} clients x {} MiB distinct blobs\n",
        blob_bytes >> 20
    );
    let rss = vec![
        rss_phase(FrontendKind::Legacy, rss_clients, blob_bytes),
        rss_phase(FrontendKind::Sharded, rss_clients, blob_bytes),
    ];
    println!(
        "{:>18} | {:>7} | {:>9} | {:>11}",
        "frontend", "clients", "blob MiB", "peak RSS MiB"
    );
    println!("{}", "-".repeat(56));
    for r in &rss {
        println!(
            "{:>18} | {:>7} | {:>9} | {:>11.1}",
            r.frontend,
            r.clients,
            r.blob_bytes >> 20,
            r.peak_rss_kb as f64 / 1024.0
        );
    }

    let json = to_json(&lat, &rss);
    std::fs::write(&out_path, &json).expect("write frontend JSON");
    println!("\nwrote {out_path} ({} bytes)", json.len());

    if let Some(bound) = max_p99_ms {
        assert!(
            lat.p99_ms <= bound,
            "p99 latency {:.2}ms exceeds the {bound}ms bound",
            lat.p99_ms
        );
        println!("p99 {:.2}ms within the {bound}ms bound", lat.p99_ms);
    }

    // The whole point of streaming: the daemon's peak memory must not
    // scale with sketch size times connection count. Allow generous slack
    // (allocator behavior, corpus tables) but fail loudly if the streamed
    // run ever materializes what the monolithic one does.
    let legacy = rss[0].peak_rss_kb as f64;
    let sharded = rss[1].peak_rss_kb as f64;
    assert!(
        sharded < legacy,
        "streaming front end used more memory ({sharded} kB) than the monolithic baseline ({legacy} kB)"
    );
}
