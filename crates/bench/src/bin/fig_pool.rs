//! E15: attempt throughput — pooled vs. spawning vthread executors.
//!
//! Every run targets an unmatchable failure signature so the explorer
//! spends exactly the attempt cap, making attempts-per-second a pure
//! measure of the attempt hot path. The spawning executor is the
//! pre-pooling engine (one OS thread per vthread per attempt), so each row
//! is a before/after comparison inside one binary. Each row also carries a
//! direct two-run probe on a fresh pool: the second (warm) run must report
//! zero OS spawns — CI fails if steady-state attempts still create
//! threads.
//!
//! ```text
//! fig_pool [--reduced-corpus] [--cap N] [--out FILE]
//! ```
//!
//! Prints the table and writes the measurements as JSON (for the CI
//! artifact) to `BENCH_pool.json` unless `--out` overrides it.
use pres_apps::registry::all_bugs;
use pres_bench::experiments::{
    e15_pool_throughput, pool_speedup_geomean, render_pool, PoolRow,
};
use pres_core::explore::ExecutorKind;
use pres_core::sketch::Mechanism;

const WORKER_COUNTS: [usize; 2] = [1, 2];

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(rows: &[PoolRow], mechanism: Mechanism, cap: u32) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"E15\",\n  \"mechanism\": \"{}\",\n  \"cap\": {cap},\n  \"rows\": [\n",
        json_escape(&mechanism.name())
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bug\": \"{}\", \"cold_os_spawns\": {}, \"warm_os_spawns\": {}, \"points\": [",
            json_escape(&r.bug),
            r.cold_os_spawns,
            r.warm_os_spawns
        ));
        for (j, p) in r.points.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"executor\": \"{}\", \"workers\": {}, \"attempts\": {}, \"wall_ms\": {:.3}, \"attempts_per_sec\": {:.1}}}",
                if j > 0 { ", " } else { "" },
                p.executor.name(),
                p.workers,
                p.attempts,
                p.wall_clock.as_secs_f64() * 1e3,
                p.attempts_per_sec()
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut reduced = false;
    let mut cap: u32 = 200;
    let mut out_path = String::from("BENCH_pool.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced-corpus" => reduced = true,
            "--cap" => {
                cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cap needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }

    let mut bugs = all_bugs();
    if reduced {
        // CI smoke: three bugs keep the release-mode step under a minute
        // while still exercising every (executor, workers) cell.
        bugs.truncate(3);
    }
    let mechanism = Mechanism::Sync;
    let rows = e15_pool_throughput(&bugs, mechanism, &WORKER_COUNTS, cap);
    println!("{}", render_pool(&rows, &WORKER_COUNTS, mechanism, cap));

    if let Some(geomean) = pool_speedup_geomean(&rows, 1) {
        println!("overall: geomean {geomean:.2}x pooled-over-spawning throughput at 1 worker");
    }
    // Sanity: every cell ran the full cap under both executors, and warm
    // pooled runs created zero OS threads. The speedup itself is reported,
    // not asserted — absolute ratios are host-dependent; the spawn counter
    // is not.
    for r in &rows {
        for p in &r.points {
            assert_eq!(p.attempts, cap, "bug {} did not spend the cap", r.bug);
        }
        assert_eq!(
            r.points.len(),
            WORKER_COUNTS.len() * 2,
            "bug {} missing (executor, workers) cells",
            r.bug
        );
        for w in WORKER_COUNTS {
            assert!(r.point(ExecutorKind::Pooled, w).is_some());
            assert!(r.point(ExecutorKind::Spawning, w).is_some());
        }
        assert!(
            r.cold_os_spawns > 0,
            "bug {}: cold run should warm the pool",
            r.bug
        );
        assert_eq!(
            r.warm_os_spawns, 0,
            "bug {}: warm pooled run spawned OS threads",
            r.bug
        );
    }

    let json = to_json(&rows, mechanism, cap);
    std::fs::write(&out_path, &json).expect("write pool JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
