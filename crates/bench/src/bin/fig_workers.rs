//! E11: parallel reproduction — wall-clock speedup by worker count.
//!
//! Runs under the coarse SYS sketch, where reproduction genuinely needs
//! many attempts: that is the regime the worker pool accelerates. (Under
//! SYNC most bugs reproduce in 1–3 attempts and the pool only adds
//! coordination overhead.)
use pres_bench::experiments::{e11_worker_scaling, render_worker_scaling, ATTEMPT_CAP};
use pres_core::sketch::Mechanism;

fn main() {
    let counts = [1usize, 2, 4, 8];
    for mechanism in [Mechanism::Sys, Mechanism::Sync] {
        let rows = e11_worker_scaling(mechanism, &counts, ATTEMPT_CAP);
        println!("{}", render_worker_scaling(&rows, &counts, mechanism));
    }
}
