//! E19: the daemon hot path — group-commit journal vs per-record fsync,
//! and the digest-keyed sketch decode cache, hot vs cold.
//!
//! Two phases:
//!
//! 1. **Submit-ack throughput.** 64 client threads hammer a daemon in a
//!    **separate process** (this binary re-execs itself with `--daemon`)
//!    with back-to-back submits. Every submit acks only after its SUBMIT
//!    journal record is durable, so the journal's sync discipline is the
//!    serial bottleneck: with `--journal-batch 1 --journal-batch-usecs 0`
//!    (the pre-group-commit baseline) each ack costs one `fdatasync`;
//!    grouped, concurrent appenders ride one leader's cohort and share
//!    it. Every submit carries a *distinct* blob (dedup must not collapse
//!    the workload), so both arms pay identical store-put costs — those
//!    overlap across connection workers, while the journal's sync
//!    discipline is the part that serializes. The daemon's STATS report
//!    proves the mechanism: grouped, `journal_syncs` must be a small
//!    fraction of `journal_records`.
//! 2. **Job throughput, cache-hot vs cache-cold.** In-process this time:
//!    a real recording tiled to production scale (the paper's sketches
//!    run to millions of events; the in-repo toy programs record a few
//!    hundred), in a handful of seed variants, each submitted under
//!    several *mismatched* bug ids — distinct `(bug, digest)` jobs that
//!    all fail the program-name check *after* loading the sketch, so
//!    each execution is exactly one sketch load (store read + SHA-256
//!    verify + decode + index build cold; an `Arc` clone hot).
//!    `--sketch-cache-bytes 0` vs the default budget is the cold/hot
//!    split.
//!
//! ```text
//! fig_svc_journal [--reduced] [--clients N] [--min-speedup X] [--out FILE]
//! ```
//!
//! Prints both tables and writes `BENCH_svc_journal.json` (or `--out`)
//! for the CI artifact. With `--min-speedup X` the run fails unless
//! grouped submit-ack throughput is at least X times the per-record
//! baseline — the CI regression tripwire.

use pres_apps::registry::all_bugs;
use pres_core::api::Pres;
use pres_core::codec::encode_sketch;
use pres_core::sketch::Mechanism;
use pres_svc::proto::{AnyFrame, Request, Response, DEFAULT_MAX_FRAME};
use pres_svc::queue::QueueConfig;
use pres_svc::server::{ServeOptions, Server};
use pres_svc::{Client, JobStatus};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Daemon-in-a-child-process plumbing (phase 1).
// ---------------------------------------------------------------------------

/// Child mode: start a daemon with the given journal discipline, print
/// the bound address, serve until a SHUTDOWN frame drains us.
fn run_daemon(batch: usize, hold_usecs: u64, data_dir: String) -> ! {
    let server = Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.into(),
        queue: QueueConfig {
            workers: 1,
            max_attempts: 1,
            max_retries: 0,
            journal_batch: batch,
            journal_hold: Duration::from_micros(hold_usecs),
            ..QueueConfig::default()
        },
        log_interval: None,
        max_connections: 8192,
        read_timeout: Duration::from_secs(120),
        // Journal appends run on connection-worker threads, so this is
        // the cap on how many appenders can share a cohort; the grouped
        // arm sets `--journal-batch` to match, so a full house of
        // appenders cuts the hold window short instead of sleeping it
        // out.
        conn_workers: 32,
        ..ServeOptions::default()
    })
    .expect("daemon starts");
    println!("LISTEN {}", server.addr());
    server.join();
    std::process::exit(0);
}

struct Daemon {
    child: Child,
    addr: String,
    data_dir: std::path::PathBuf,
}

impl Daemon {
    fn spawn(batch: usize, hold_usecs: u64, tag: &str) -> Daemon {
        let data_dir = std::env::temp_dir().join(format!(
            "pres-fig-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        let exe = std::env::current_exe().expect("own path");
        let mut child = Command::new(exe)
            .args([
                "--daemon",
                &batch.to_string(),
                &hold_usecs.to_string(),
                data_dir.to_str().unwrap(),
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn daemon child");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon prints its address")
                .expect("read child stdout");
            if let Some(addr) = line.strip_prefix("LISTEN ") {
                break addr.to_string();
            }
        };
        Daemon {
            child,
            addr,
            data_dir,
        }
    }

    fn shutdown(mut self) {
        if let Ok(mut c) = Client::connect(&self.addr) {
            c.shutdown().expect("daemon acknowledges shutdown");
        }
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.data_dir);
    }
}

fn connect_retrying(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut pause = Duration::from_millis(5);
    loop {
        match Client::connect(addr) {
            Ok(c) => return c,
            Err(e) if Instant::now() < deadline => {
                std::thread::sleep(pause);
                pause = (pause * 2).min(Duration::from_millis(200));
                let _ = e;
            }
            Err(e) => panic!("cannot connect to {addr}: {e}"),
        }
    }
}

/// A raw socket for frame-level pipelining (the [`Client`] API is one
/// request/response roundtrip at a time).
fn connect_raw_retrying(addr: &str) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut pause = Duration::from_millis(5);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).expect("nodelay");
                return s;
            }
            Err(e) if Instant::now() < deadline => {
                std::thread::sleep(pause);
                pause = (pause * 2).min(Duration::from_millis(200));
                let _ = e;
            }
            Err(e) => panic!("cannot connect to {addr}: {e}"),
        }
    }
}

/// Deterministic filler — the sketch is garbage (jobs fail fast in the
/// background); the measured work is the submit-ack path.
fn blob(seed: u64, len: usize) -> Vec<u8> {
    // `<< 1 | 1` keeps distinct seeds distinct (and nonzero) — `| 1`
    // alone would collapse even/odd neighbors into the same stream.
    let mut x = (seed << 1) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

/// Pulls one counter out of the daemon's STATS text.
fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| {
            let mut it = l.split_whitespace();
            (it.next() == Some(key)).then(|| it.next())?
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no '{key}' in STATS:\n{stats}"))
}

// ---------------------------------------------------------------------------
// Phase 1: submit-ack throughput, per-record fsync vs group commit.
// ---------------------------------------------------------------------------

struct JournalResult {
    mode: &'static str,
    clients: usize,
    submits: usize,
    wall_ms: f64,
    submits_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    journal_records: u64,
    journal_syncs: u64,
    mean_cohort: f64,
}

fn journal_phase(
    mode: &'static str,
    batch: usize,
    hold_usecs: u64,
    clients: usize,
    ops_per_client: usize,
) -> JournalResult {
    let daemon = Daemon::spawn(batch, hold_usecs, mode);
    let addr = daemon.addr.clone();
    let bugs: Vec<&'static str> = all_bugs().iter().map(|b| b.id).collect();

    // Every submit must create a fresh job (dedup must not skip the
    // journal append), but a fresh *object* per submit would bury the
    // journal under per-submit store fsyncs paid identically by both
    // arms. So submits draw from a payload pool just big enough that
    // `(bug id, payload)` pairs never repeat: the store dedups all but
    // the pool's first puts, and the journal append is the dominant
    // durable write per ack — as it is for a daemon whose clients mostly
    // resubmit known sketches.
    let total = clients * ops_per_client;
    let pool = total.div_ceil(bugs.len());

    // Pipelined v2 submits, well inside the daemon's default 128-frame
    // inflight window: a recording host drains a backlog of sketches as
    // fast as the daemon acks them, not one lock-step roundtrip at a
    // time. Each response's latency is measured from its batch's send.
    const DEPTH: usize = 32;
    assert_eq!(ops_per_client % DEPTH, 0);

    // All clients connect before the clock starts: the accept storm is
    // setup, not submit-ack work, and it is identical in both arms.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|id| {
            let addr = addr.clone();
            let bugs = bugs.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::Builder::new()
                .stack_size(128 << 10)
                .spawn(move || {
                    let mut s = connect_raw_retrying(&addr);
                    barrier.wait();
                    // Buffer the read half: one syscall drains many
                    // pipelined responses instead of two per frame.
                    let mut rx = BufReader::with_capacity(
                        64 << 10,
                        s.try_clone().expect("clone socket"),
                    );
                    let mut lats = Vec::with_capacity(ops_per_client);
                    for batch in 0..ops_per_client / DEPTH {
                        let mut frames = Vec::new();
                        for d in 0..DEPTH {
                            let k = id * ops_per_client + batch * DEPTH + d;
                            // Garbage payloads: the jobs fail fast in the
                            // background once decode rejects them.
                            let req = Request::Submit {
                                bug: bugs[k / pool].to_string(),
                                sketch: blob((k % pool) as u64, 512),
                            };
                            frames
                                .extend(req.to_frame2(k as u32).unwrap().encode());
                        }
                        let sent = Instant::now();
                        s.write_all(&frames).expect("submits written");
                        for _ in 0..DEPTH {
                            let frame = AnyFrame::read_from(&mut rx, DEFAULT_MAX_FRAME)
                                .expect("response read")
                                .expect("connection open");
                            match Response::from_any(&frame).expect("response decodes")
                            {
                                Response::Submitted { .. } => {
                                    lats.push(sent.elapsed().as_secs_f64() * 1e3)
                                }
                                other => panic!("submit refused: {other:?}"),
                            }
                        }
                    }
                    lats
                })
                .expect("spawn client thread")
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let mut all = Vec::with_capacity(clients * ops_per_client);
    for h in handles {
        all.extend(h.join().expect("client thread"));
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let stats = connect_retrying(&daemon.addr)
        .stats()
        .expect("daemon STATS");
    let journal_records = stat(&stats, "journal_records");
    let journal_syncs = stat(&stats, "journal_syncs");
    daemon.shutdown();

    all.sort_by(|a, b| a.total_cmp(b));
    JournalResult {
        mode,
        clients,
        submits: all.len(),
        wall_ms,
        submits_per_sec: all.len() as f64 / (wall_ms / 1e3),
        p50_ms: percentile(&all, 50.0),
        p99_ms: percentile(&all, 99.0),
        journal_records,
        journal_syncs,
        mean_cohort: if journal_syncs == 0 {
            0.0
        } else {
            journal_records as f64 / journal_syncs as f64
        },
    }
}

// ---------------------------------------------------------------------------
// Phase 2: job throughput, sketch cache hot vs cold.
// ---------------------------------------------------------------------------

struct CacheResult {
    mode: &'static str,
    jobs: usize,
    wall_ms: f64,
    jobs_per_sec: f64,
    hits: u64,
    misses: u64,
}

fn cache_phase(
    mode: &'static str,
    cache_bytes: u64,
    sketches: &[Vec<u8>],
    wrong_bugs: &[&'static str],
) -> CacheResult {
    let dir = std::env::temp_dir().join(format!(
        "pres-fig-journal-cache-{mode}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        data_dir: dir.clone(),
        queue: QueueConfig {
            workers: 1,
            sketch_cache_bytes: cache_bytes,
            // No artificial cohort hold: the one submitting thread would
            // pay it in full on every append, identically in both arms.
            journal_hold: Duration::ZERO,
            ..QueueConfig::default()
        },
        log_interval: None,
        ..ServeOptions::default()
    })
    .expect("server starts");
    let queue = server.queue();

    let started = Instant::now();
    let mut jobs = Vec::new();
    for bytes in sketches {
        let (digest, _) = queue.store().put(bytes).expect("sketch stored");
        // Every mismatched bug id: a fresh (bug, digest) job whose
        // execution loads this digest's sketch, then fails the
        // program-name check.
        for bug in wrong_bugs {
            let (id, fresh) = queue.submit(bug, digest).expect("job accepted");
            assert!(fresh, "every (bug, digest) pair is distinct");
            jobs.push(id);
        }
    }
    for &id in &jobs {
        loop {
            match queue.status(id).expect("job exists") {
                JobStatus::Failed { message } => {
                    assert!(
                        message.contains("recorded from"),
                        "expected a program-name mismatch, got: {message}"
                    );
                    break;
                }
                status if status.is_terminal() => panic!("unexpected {status:?}"),
                _ => std::thread::sleep(Duration::from_micros(200)),
            }
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let metrics = server.metrics();
    let hits = metrics.sketch_cache_hits.load(Ordering::Relaxed);
    let misses = metrics.sketch_cache_misses.load(Ordering::Relaxed);
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    CacheResult {
        mode,
        jobs: jobs.len(),
        wall_ms,
        jobs_per_sec: jobs.len() as f64 / (wall_ms / 1e3),
        hits,
        misses,
    }
}

// ---------------------------------------------------------------------------
// Output.
// ---------------------------------------------------------------------------

fn to_json(journal: &[JournalResult], speedup: f64, cache: &[CacheResult]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"E19\",\n  \"journal\": [\n");
    for (i, r) in journal.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \"submits\": {}, \"wall_ms\": {:.1}, \"submits_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"journal_records\": {}, \"journal_syncs\": {}, \"mean_cohort\": {:.1}}}{}\n",
            r.mode,
            r.clients,
            r.submits,
            r.wall_ms,
            r.submits_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.journal_records,
            r.journal_syncs,
            r.mean_cohort,
            if i + 1 < journal.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"journal_speedup\": {speedup:.2},\n  \"cache\": [\n"
    ));
    for (i, r) in cache.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"jobs\": {}, \"wall_ms\": {:.1}, \"jobs_per_sec\": {:.1}, \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
            r.mode,
            r.jobs,
            r.wall_ms,
            r.jobs_per_sec,
            r.hits,
            r.misses,
            if i + 1 < cache.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"cache_speedup\": {:.2}\n}}\n",
        cache[1].jobs_per_sec / cache[0].jobs_per_sec
    ));
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut reduced = false;
    let mut clients: Option<usize> = None;
    let mut min_speedup: Option<f64> = None;
    let mut out_path = String::from("BENCH_svc_journal.json");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--daemon" => {
                let batch: usize = args
                    .next()
                    .expect("--daemon needs a batch size")
                    .parse()
                    .unwrap();
                let hold: u64 = args
                    .next()
                    .expect("--daemon needs a hold (usecs)")
                    .parse()
                    .unwrap();
                let dir = args.next().expect("--daemon needs a data dir");
                run_daemon(batch, hold, dir);
            }
            "--reduced" => reduced = true,
            "--clients" => {
                clients = Some(args.next().expect("--clients needs N").parse().unwrap())
            }
            "--min-speedup" => {
                min_speedup =
                    Some(args.next().expect("--min-speedup needs X").parse().unwrap())
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }

    // The ISSUE's acceptance shape is 64 concurrent clients; `--reduced`
    // keeps the concurrency (that *is* the experiment) and trims ops.
    let clients = clients.unwrap_or(64);
    let ops_per_client = if reduced { 32 } else { 64 };

    println!(
        "E19: submit-ack throughput, {clients} concurrent clients x \
         {ops_per_client} submits, per-record fsync vs group commit\n"
    );
    let journal = vec![
        journal_phase("per-record", 1, 0, clients, ops_per_client),
        journal_phase("grouped", 32, 2000, clients, ops_per_client),
    ];
    println!(
        "{:>10} | {:>7} | {:>8} | {:>9} | {:>8} | {:>8} | {:>8} | {:>6} | {:>7}",
        "mode", "submits", "wall ms", "subs/s", "p50 ms", "p99 ms", "records", "syncs", "cohort"
    );
    println!("{}", "-".repeat(92));
    for r in &journal {
        println!(
            "{:>10} | {:>7} | {:>8.0} | {:>9.1} | {:>8.2} | {:>8.2} | {:>8} | {:>6} | {:>7.1}",
            r.mode,
            r.submits,
            r.wall_ms,
            r.submits_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.journal_records,
            r.journal_syncs,
            r.mean_cohort,
        );
    }
    let speedup = journal[1].submits_per_sec / journal[0].submits_per_sec;
    println!("\ngroup-commit speedup: {speedup:.2}x");

    // The mechanism, not just the effect: grouped, one fdatasync covers
    // many records. (Per-record syncs once per record by construction.)
    assert!(
        journal[1].journal_syncs * 4 <= journal[1].journal_records,
        "grouped journal did not batch: {} syncs for {} records",
        journal[1].journal_syncs,
        journal[1].journal_records
    );

    // Phase 2 corpus: one real recording, its entry stream tiled to
    // production scale (PRES sketches run to millions of events), in a
    // few seed variants so the cache holds several distinct digests.
    let case = all_bugs().into_iter().find(|b| b.id == "pbzip-order").unwrap();
    let program = case.program();
    let base = Pres::new(Mechanism::Sync)
        .record_until_failure(program.as_ref(), 0..5000)
        .expect("bug manifests in production")
        .sketch;
    let (tile, variants, wrong_n) = if reduced { (400, 3, 5) } else { (2000, 4, 12) };
    let sketches: Vec<Vec<u8>> = (0..variants)
        .map(|i| {
            let mut big = base.clone();
            big.entries = base
                .entries
                .iter()
                .cycle()
                .take(base.entries.len() * tile)
                .cloned()
                .collect();
            big.meta.seed = i as u64;
            encode_sketch(&big)
        })
        .collect();
    let wrong_bugs: Vec<&'static str> = all_bugs()
        .iter()
        .filter(|b| b.program().name() != base.meta.program)
        .map(|b| b.id)
        .take(wrong_n)
        .collect();
    println!(
        "\nE19: job throughput over {} production-scale sketches ({} KiB \
         each), every digest loaded {} times, cache cold vs hot\n",
        sketches.len(),
        sketches[0].len() >> 10,
        wrong_bugs.len()
    );
    let cache = vec![
        cache_phase("cold", 0, &sketches, &wrong_bugs),
        cache_phase("hot", 64 << 20, &sketches, &wrong_bugs),
    ];
    println!(
        "{:>6} | {:>6} | {:>8} | {:>9} | {:>6} | {:>7}",
        "mode", "jobs", "wall ms", "jobs/s", "hits", "misses"
    );
    println!("{}", "-".repeat(56));
    for r in &cache {
        println!(
            "{:>6} | {:>6} | {:>8.0} | {:>9.1} | {:>6} | {:>7}",
            r.mode, r.jobs, r.wall_ms, r.jobs_per_sec, r.hits, r.misses,
        );
    }
    println!(
        "cache speedup: {:.2}x",
        cache[1].jobs_per_sec / cache[0].jobs_per_sec
    );
    assert_eq!(cache[0].hits, 0, "a disabled cache must never hit");
    assert!(
        cache[1].hits > 0 && cache[1].misses as usize <= sketches.len(),
        "hot arm should decode each digest once: {} hits, {} misses",
        cache[1].hits,
        cache[1].misses
    );

    let json = to_json(&journal, speedup, &cache);
    std::fs::write(&out_path, &json).expect("write journal JSON");
    println!("\nwrote {out_path} ({} bytes)", json.len());

    if let Some(bound) = min_speedup {
        assert!(
            speedup >= bound,
            "group-commit speedup {speedup:.2}x below the {bound}x bound"
        );
        println!("speedup {speedup:.2}x clears the {bound}x bound");
    }
}
