//! Regenerates the complete evaluation, in EXPERIMENTS.md order.
use pres_apps::WorkloadScale;
use pres_bench::experiments::{self, ABLATION_CAP, ATTEMPT_CAP, OVERHEAD_PROCESSORS};

fn main() {
    experiments::smoke().expect("pipeline smoke test");
    println!("{}", experiments::e1_table_bugs());
    let m = experiments::RecordingMatrix::run(OVERHEAD_PROCESSORS, WorkloadScale::Standard);
    println!("{}", m.render_overhead());
    println!("{}", m.render_logsize());
    let rows = experiments::e4_attempts(ATTEMPT_CAP);
    println!("{}", experiments::render_attempts(&rows, ATTEMPT_CAP));
    let points = experiments::e5_scalability(&[2, 4, 8, 16]);
    println!("{}", experiments::render_scalability(&points));
    let fb = experiments::e6_feedback(ABLATION_CAP);
    println!("{}", experiments::render_feedback(&fb, ABLATION_CAP));
    let certs = experiments::e7_certificates(100);
    println!("{}", experiments::render_certificates(&certs));
    let bbn = experiments::e8_bbn_sweep(&[1, 2, 4, 8, 16, 64]);
    println!("{}", experiments::render_bbn(&bbn));
    for mech in [
        pres_core::sketch::Mechanism::Sync,
        pres_core::sketch::Mechanism::Sys,
    ] {
        let rows = experiments::e9_ablation(200, mech);
        println!("{}", experiments::render_ablation_for(&rows, 200, mech));
    }
    let dist = experiments::e10_distribution(8, 300);
    println!("{}", experiments::render_distribution(&dist, 300));
    let counts = [1usize, 2, 4, 8];
    let mech = pres_core::sketch::Mechanism::Sys;
    let scaling = experiments::e11_worker_scaling(mech, &counts, ATTEMPT_CAP);
    println!(
        "{}",
        experiments::render_worker_scaling(&scaling, &counts, mech)
    );
}
