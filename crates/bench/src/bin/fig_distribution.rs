//! E10: attempt distribution across distinct failing production runs.
use pres_bench::experiments::{e10_distribution, render_distribution};

fn main() {
    let rows = e10_distribution(8, 300);
    print!("{}", render_distribution(&rows, 300));
}
