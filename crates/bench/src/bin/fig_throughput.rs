//! E12: attempt throughput — streaming vs. buffered feedback.
//!
//! Every run targets an unmatchable failure signature so the explorer
//! spends exactly the attempt cap, making attempts-per-second a pure
//! measure of the attempt hot path (scheduler setup, VM stepping, feedback
//! extraction). The buffered mode is the pre-streaming pipeline, so each
//! row is a before/after comparison inside one binary.
//!
//! ```text
//! fig_throughput [--reduced-corpus] [--cap N] [--out FILE]
//! ```
//!
//! Prints the table and writes the measurements as JSON (for the CI
//! artifact) to `BENCH_throughput.json` unless `--out` overrides it.
use pres_apps::registry::all_bugs;
use pres_bench::experiments::{e12_attempt_throughput, render_throughput, ThroughputRow};
use pres_core::explore::FeedbackMode;
use pres_core::sketch::Mechanism;

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(rows: &[ThroughputRow], mechanism: Mechanism, cap: u32) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"E12\",\n  \"mechanism\": \"{}\",\n  \"cap\": {cap},\n  \"rows\": [\n",
        json_escape(&mechanism.name())
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bug\": \"{}\", \"points\": [",
            json_escape(&r.bug)
        ));
        for (j, p) in r.points.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"mode\": \"{}\", \"workers\": {}, \"attempts\": {}, \"wall_ms\": {:.3}, \"attempts_per_sec\": {:.1}}}",
                if j > 0 { ", " } else { "" },
                p.mode.name(),
                p.workers,
                p.attempts,
                p.wall_clock.as_secs_f64() * 1e3,
                p.attempts_per_sec()
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut reduced = false;
    let mut cap: u32 = 200;
    let mut out_path = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced-corpus" => reduced = true,
            "--cap" => {
                cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cap needs a number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }

    let mut bugs = all_bugs();
    if reduced {
        // CI smoke: three bugs keep the release-mode step under a minute
        // while still exercising every (mode, workers) cell.
        bugs.truncate(3);
    }
    let mechanism = Mechanism::Sync;
    let rows = e12_attempt_throughput(&bugs, mechanism, &WORKER_COUNTS, cap);
    println!("{}", render_throughput(&rows, &WORKER_COUNTS, mechanism, cap));

    // Overall headline at the widest worker count.
    let widest = *WORKER_COUNTS.last().unwrap();
    let spds: Vec<f64> = rows.iter().filter_map(|r| r.speedup_at(widest)).collect();
    if !spds.is_empty() {
        let mean = spds.iter().sum::<f64>() / spds.len() as f64;
        println!("overall: mean {mean:.2}x streaming-over-buffered throughput at {widest} workers");
    }
    // Sanity: every cell ran the full cap in both modes.
    for r in &rows {
        for p in &r.points {
            assert_eq!(p.attempts, cap, "bug {} did not spend the cap", r.bug);
        }
        assert_eq!(
            r.points.len(),
            WORKER_COUNTS.len() * 2,
            "bug {} missing (mode, workers) cells",
            r.bug
        );
        for w in WORKER_COUNTS {
            assert!(r.point(FeedbackMode::Streaming, w).is_some());
            assert!(r.point(FeedbackMode::Buffered, w).is_some());
        }
    }

    let json = to_json(&rows, mechanism, cap);
    std::fs::write(&out_path, &json).expect("write throughput JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
