//! E2: production-run recording overhead per app per mechanism, with the
//! sharded-vs-legacy recorder before/after comparison.
//!
//! ```text
//! fig_overhead [--reduced] [--out FILE]
//! ```
//!
//! Prints the tables and writes the measurements as JSON (for the CI
//! artifact) to `BENCH_overhead.json` unless `--out` overrides it.
//! `--reduced` runs the small workloads (CI smoke).
use pres_apps::WorkloadScale;
use pres_bench::experiments::{RecordingMatrix, OVERHEAD_PROCESSORS};
use pres_core::sketch::Mechanism;

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(m: &RecordingMatrix, processors: u32) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"E2\",\n  \"processors\": {processors},\n  \"rows\": [\n"
    ));
    for (i, r) in m.reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"mechanism\": \"{}\", \"overhead_pct\": {:.4}, \"legacy_overhead_pct\": {}, \"slowdown\": {:.4}, \"entries\": {}, \"implicit_events\": {}}}{}\n",
            json_escape(&r.program),
            json_escape(&r.mechanism.name()),
            r.overhead_pct,
            r.legacy_overhead_pct
                .map(|l| format!("{l:.4}"))
                .unwrap_or_else(|| "null".into()),
            r.slowdown,
            r.entries,
            r.implicit_events,
            if i + 1 < m.reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut reduced = false;
    let mut out_path = String::from("BENCH_overhead.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    let scale = if reduced {
        WorkloadScale::Small
    } else {
        WorkloadScale::Standard
    };

    let m = RecordingMatrix::run(OVERHEAD_PROCESSORS, scale);
    print!("{}", m.render_overhead());

    // Sanity: sharding never makes any mechanism slower, and strictly
    // helps at least one thread-local cell; the serialized classes are
    // exactly unchanged (their charges are identical by construction).
    let mut marker_wins = 0u32;
    for r in &m.reports {
        let legacy = r.legacy_overhead_pct.expect("matrix measures both");
        assert!(
            r.overhead_pct <= legacy + 1e-9,
            "{} {}: sharded {} worse than legacy {}",
            r.program,
            r.mechanism,
            r.overhead_pct,
            legacy
        );
        match r.mechanism {
            Mechanism::Sync | Mechanism::Sys => assert!(
                (r.overhead_pct - legacy).abs() < 1e-9,
                "{} {}: serialized class must be unchanged",
                r.program,
                r.mechanism
            ),
            Mechanism::Func | Mechanism::Bb | Mechanism::BbN(_) => {
                if r.overhead_pct < legacy - 1e-9 {
                    marker_wins += 1;
                }
            }
            Mechanism::Rw => {}
        }
    }
    assert!(
        marker_wins > 0,
        "sharding must strictly lower overhead on some thread-local cell"
    );

    let json = to_json(&m, OVERHEAD_PROCESSORS);
    std::fs::write(&out_path, &json).expect("write overhead JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
