//! E3: sketch log sizes per app per mechanism, with the v1-vs-v2 codec
//! container comparison.
//!
//! ```text
//! table_logsize [--reduced] [--out FILE]
//! ```
//!
//! Prints the tables and writes the measurements as JSON (for the CI
//! artifact) to `BENCH_logsize.json` unless `--out` overrides it.
//! `--reduced` runs the small workloads (CI smoke).
use pres_apps::WorkloadScale;
use pres_bench::experiments::{RecordingMatrix, OVERHEAD_PROCESSORS};

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(m: &RecordingMatrix) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"E3\",\n  \"codec_geomean_shrink_pct\": {:.2},\n  \"rows\": [\n",
        m.codec_geomean_shrink()
    ));
    for (i, r) in m.reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"mechanism\": \"{}\", \"entries\": {}, \"log_bytes\": {}, \"encoded_v1\": {}, \"encoded_v2\": {}, \"total_ops\": {}, \"bytes_per_kop\": {:.2}}}{}\n",
            json_escape(&r.program),
            json_escape(&r.mechanism.name()),
            r.entries,
            r.log_bytes,
            r.encoded_v1,
            r.encoded_v2,
            r.total_ops,
            r.bytes_per_kop(),
            if i + 1 < m.reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut reduced = false;
    let mut out_path = String::from("BENCH_logsize.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => reduced = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    let scale = if reduced {
        WorkloadScale::Small
    } else {
        WorkloadScale::Standard
    };

    let m = RecordingMatrix::run(OVERHEAD_PROCESSORS, scale);
    print!("{}", m.render_logsize());
    print!("{}", m.render_codec());

    // Sanity: v2 never grows a non-trivial log, and the matrix-wide
    // geomean shrink is substantial.
    for r in &m.reports {
        if r.entries >= 16 {
            assert!(
                r.encoded_v2 < r.encoded_v1,
                "{} {}: v2 {} not smaller than v1 {}",
                r.program,
                r.mechanism,
                r.encoded_v2,
                r.encoded_v1
            );
        }
    }
    let shrink = m.codec_geomean_shrink();
    assert!(
        shrink >= 15.0,
        "codec v2 geomean shrink {shrink:.1}% below the 15% floor"
    );

    let json = to_json(&m);
    std::fs::write(&out_path, &json).expect("write logsize JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
