//! E3: sketch log sizes per app per mechanism.
use pres_apps::WorkloadScale;
use pres_bench::experiments::{RecordingMatrix, OVERHEAD_PROCESSORS};

fn main() {
    let m = RecordingMatrix::run(OVERHEAD_PROCESSORS, WorkloadScale::Standard);
    print!("{}", m.render_logsize());
}
