//! E9: ablation of the feedback engine's design choices, under the
//! informative SYNC sketch and the coarse SYS sketch.
use pres_bench::experiments::{e9_ablation, render_ablation_for};
use pres_core::sketch::Mechanism;

fn main() {
    for mech in [Mechanism::Sync, Mechanism::Sys] {
        let rows = e9_ablation(200, mech);
        println!("{}", render_ablation_for(&rows, 200, mech));
    }
}
