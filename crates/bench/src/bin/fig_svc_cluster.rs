//! E20: cluster scale-out — aggregate jobs/s across 1→2→4 daemon
//! processes sharing one workload, with certificate byte-identity
//! checked through the replicated store.
//!
//! For each node count a fresh cluster is started: N `pres serve`
//! daemons in **separate processes** (this binary re-execs itself with
//! `--daemon`), wired together with static `--peer` lists and a shared
//! auth token, N=2 replication. The workload is the corpus: every bug
//! that records under SYNC, in several distinct seed variants so dedup
//! cannot collapse the run, submitted round-robin across the nodes by
//! one client thread per node. Every job must succeed; the row's score
//! is aggregate jobs completed per second of wall clock.
//!
//! Why this scales on a single-core host: a replay job's cost is part
//! CPU (decode + schedule exploration) and part durability I/O (the
//! sketch and certificate store publishes, the journal's SUBMIT and
//! terminal records — each an `fsync` on the ack path). One daemon
//! pays those fsyncs serially between executions; N daemons overlap
//! their durability waits with each other's CPU, so aggregate
//! throughput rises even with one core, exactly like E17's connection
//! sharding. Replication and peer routing push against that (every
//! object put also travels to its ring owners), which is why the
//! measured speedup — not an idealized N× — is the headline.
//!
//! Correctness rides along: for every unmodified base sketch the
//! minted certificate is fetched from every node that holds a replica
//! and compared byte-for-byte against an in-process
//! `Pres::reproduce` of the same recording — the cluster must mint
//! exactly the certificate a single local process would, no matter
//! which node ran the job.
//!
//! ```text
//! fig_svc_cluster [--reduced] [--min-speedup X] [--out FILE]
//! ```
//!
//! Prints the table and writes `BENCH_svc_cluster.json` (or `--out`).
//! With `--min-speedup X` the run fails unless the 3-node row clears
//! X times the 1-node row — the CI regression tripwire.

use pres_apps::registry::all_bugs;
use pres_core::api::Pres;
use pres_core::codec::encode_sketch;
use pres_core::sketch::Mechanism;
use pres_svc::queue::QueueConfig;
use pres_svc::server::{ServeOptions, Server};
use pres_svc::{Client, JobStatus};
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Peer links and clients share one secret: the bench measures the
/// authenticated path, because that is the only path a real cluster
/// serves.
const TOKEN: &str = "bench-cluster-secret";

// ---------------------------------------------------------------------------
// Daemon-in-a-child-process plumbing.
// ---------------------------------------------------------------------------

/// Child mode: serve one cluster member until SHUTDOWN drains us.
fn run_daemon(addr: String, data_dir: String, replicas: usize, peers: Vec<String>) -> ! {
    // The parent pre-allocated our port by binding and dropping an
    // ephemeral listener (every node needs every address before any
    // node starts); the kernel may hold it briefly, so retry the bind.
    let deadline = Instant::now() + Duration::from_secs(10);
    let server = loop {
        match Server::start(ServeOptions {
            addr: addr.clone(),
            data_dir: data_dir.clone().into(),
            queue: QueueConfig {
                workers: 1,
                ..QueueConfig::default()
            },
            log_interval: None,
            peers: peers.clone(),
            auth_token: Some(TOKEN.to_string()),
            replicas,
            ..ServeOptions::default()
        }) {
            Ok(s) => break s,
            Err(e) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
                let _ = e;
            }
            Err(e) => panic!("daemon cannot bind {addr}: {e}"),
        }
    };
    println!("LISTEN {}", server.addr());
    server.join();
    std::process::exit(0);
}

struct Daemon {
    child: Child,
    addr: String,
    data_dir: std::path::PathBuf,
}

/// Reserves `n` distinct loopback ports by binding ephemeral listeners
/// and dropping them — the static peer lists need every node's address
/// before any node starts.
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

fn spawn_cluster(nodes: usize, tag: &str) -> Vec<Daemon> {
    let addrs = free_addrs(nodes);
    let mut daemons = Vec::new();
    for (i, addr) in addrs.iter().enumerate() {
        let data_dir = std::env::temp_dir().join(format!(
            "pres-fig-cluster-{tag}-n{i}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&data_dir);
        let peers: Vec<&String> = addrs.iter().filter(|a| *a != addr).collect();
        let peer_arg = if peers.is_empty() {
            "-".to_string()
        } else {
            peers
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(",")
        };
        let exe = std::env::current_exe().expect("own path");
        let child = Command::new(exe)
            .args([
                "--daemon",
                addr,
                data_dir.to_str().unwrap(),
                "2", // replicas; Cluster clamps to the node count
                &peer_arg,
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn daemon child");
        daemons.push(Daemon {
            child,
            addr: addr.clone(),
            data_dir,
        });
    }
    // Only now wait for the LISTEN lines: the nodes come up
    // concurrently, and each one's startup repair pass may already be
    // probing its peers.
    for d in &mut daemons {
        let stdout = d.child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        loop {
            let line = lines
                .next()
                .expect("daemon prints its address")
                .expect("read child stdout");
            if line.strip_prefix("LISTEN ").is_some() {
                break;
            }
        }
    }
    daemons
}

fn connect(addr: &str) -> Client {
    let mut c = Client::connect_with_retry(addr, 60, Duration::from_millis(25))
        .unwrap_or_else(|e| panic!("cannot connect to {addr}: {e}"));
    c.hello(TOKEN.as_bytes()).expect("auth token accepted");
    c
}

fn shutdown_cluster(daemons: Vec<Daemon>) {
    // Ask every node to drain before reaping any: a node blocked on a
    // peer RPC to an already-dead sibling would stall its own drain.
    for d in &daemons {
        if let Ok(mut c) = Client::connect(&d.addr) {
            let _ = c.hello(TOKEN.as_bytes());
            let _ = c.shutdown();
        }
    }
    for mut d in daemons {
        let _ = d.child.wait();
        let _ = std::fs::remove_dir_all(&d.data_dir);
    }
}

/// Pulls one counter out of a daemon's STATS text.
fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| {
            let mut it = l.split_whitespace();
            (it.next() == Some(key)).then(|| it.next())?
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no '{key}' in STATS:\n{stats}"))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

// ---------------------------------------------------------------------------
// Workload.
// ---------------------------------------------------------------------------

/// One submittable job: a bug id and an encoded sketch. `base` marks
/// the unmodified recording whose certificate has an in-process
/// reference to compare against.
struct WorkItem {
    bug: String,
    sketch: Vec<u8>,
    base: bool,
}

/// Records the corpus once and fans each recording into `variants`
/// distinct-seed copies — distinct digests, so neither dedup nor the
/// sketch cache can collapse the cluster's store traffic.
fn build_workload(reduced: bool, variants: usize) -> (Vec<WorkItem>, Vec<(String, Vec<u8>)>) {
    let mut bugs = all_bugs();
    if reduced {
        bugs.truncate(3);
    }
    let mut items = Vec::new();
    let mut references = Vec::new();
    for case in bugs {
        let program = case.program();
        let pres = Pres::new(Mechanism::Sync);
        let Some(run) = pres.record_until_failure(program.as_ref(), 0..5000) else {
            continue;
        };
        // The reference certificate: what a single in-process replay
        // of this exact recording mints. The daemon's worker follows
        // the same path with the same seeds, so every cluster node
        // must reproduce these bytes exactly.
        let repro = pres.reproduce(program.as_ref(), &run);
        let reference = repro
            .certificate
            .unwrap_or_else(|| panic!("{}: reproduce fails locally", case.id))
            .encode();
        references.push((case.id.to_string(), reference));
        for v in 0..variants {
            let mut sketch = run.sketch.clone();
            if v > 0 {
                // A distinct replay seed: a new digest and a new job,
                // but the same recorded schedule to reproduce from.
                sketch.meta.seed = sketch.meta.seed.wrapping_add(v as u64);
            }
            items.push(WorkItem {
                bug: case.id.to_string(),
                sketch: encode_sketch(&sketch),
                base: v == 0,
            });
        }
    }
    (items, references)
}

// ---------------------------------------------------------------------------
// One cluster row.
// ---------------------------------------------------------------------------

struct Row {
    nodes: usize,
    jobs: usize,
    wall_ms: f64,
    jobs_per_sec: f64,
    p50_ms: f64,
    max_ms: f64,
    peer_rpcs: u64,
    steals: u64,
    replica_copies: usize,
}

fn measure(nodes: usize, items: &[WorkItem], references: &[(String, Vec<u8>)]) -> Row {
    let daemons = spawn_cluster(nodes, &format!("x{nodes}"));
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr.clone()).collect();

    // One client thread per node, jobs dealt round-robin: the cluster
    // front door as a load balancer would drive it. Submit the whole
    // share first (the queue overlaps execution with intake), then
    // wait each job to its terminal state.
    let started = Instant::now();
    let handles: Vec<_> = (0..nodes)
        .map(|n| {
            let addr = addrs[n].clone();
            let share: Vec<(usize, String, Vec<u8>)> = items
                .iter()
                .enumerate()
                .filter(|(i, _)| i % nodes == n)
                .map(|(i, w)| (i, w.bug.clone(), w.sketch.clone()))
                .collect();
            std::thread::spawn(move || {
                let mut client = connect(&addr);
                let submitted: Vec<(usize, u64, Instant)> = share
                    .iter()
                    .map(|(i, bug, sketch)| {
                        let receipt = client.submit(bug, sketch).expect("submit succeeds");
                        (*i, receipt.job, Instant::now())
                    })
                    .collect();
                submitted
                    .into_iter()
                    .map(|(i, job, at)| {
                        let status = client
                            .wait(job, Duration::from_secs(300))
                            .expect("job reaches a terminal status");
                        let JobStatus::Succeeded { certificate, .. } = status else {
                            panic!("job {job} on {addr}: expected success, got {status}");
                        };
                        (i, certificate, at.elapsed().as_secs_f64() * 1e3)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut done: Vec<(usize, pres_svc::Digest, f64)> = Vec::new();
    for h in handles {
        done.extend(h.join().expect("client thread"));
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(done.len(), items.len(), "{nodes} nodes: lost jobs");

    // Identity + replication check, off the clock: every base job's
    // certificate must sit on at least min(2, nodes) nodes, and every
    // copy must be byte-identical to the in-process reference.
    let mut peers: Vec<Client> = addrs.iter().map(|a| connect(a)).collect();
    let mut replica_copies = 0;
    for (i, cert_digest, _) in &done {
        if !items[*i].base {
            continue;
        }
        let reference = &references
            .iter()
            .find(|(bug, _)| *bug == items[*i].bug)
            .expect("reference recorded")
            .1;
        let mut copies = 0;
        for peer in peers.iter_mut() {
            if let Some(bytes) = peer.peer_get(cert_digest).expect("peer get") {
                assert_eq!(
                    &bytes, reference,
                    "{}: cluster certificate differs from in-process reproduce",
                    items[*i].bug
                );
                copies += 1;
            }
        }
        assert!(
            copies >= 2.min(nodes),
            "{}: certificate on {copies} node(s), replication owes {}",
            items[*i].bug,
            2.min(nodes)
        );
        replica_copies += copies;
    }

    let mut peer_rpcs = 0;
    let mut steals = 0;
    for peer in peers.iter_mut() {
        let stats = peer.stats().expect("node STATS");
        peer_rpcs += stat(&stats, "peer_rpcs");
        steals += stat(&stats, "steals");
    }
    drop(peers);
    shutdown_cluster(daemons);

    let mut lats: Vec<f64> = done.iter().map(|(_, _, l)| *l).collect();
    lats.sort_by(|a, b| a.total_cmp(b));
    Row {
        nodes,
        jobs: done.len(),
        wall_ms,
        jobs_per_sec: done.len() as f64 / (wall_ms / 1e3),
        p50_ms: percentile(&lats, 50.0),
        max_ms: lats.last().copied().unwrap_or(0.0),
        peer_rpcs,
        steals,
        replica_copies,
    }
}

// ---------------------------------------------------------------------------
// Output.
// ---------------------------------------------------------------------------

fn to_json(rows: &[Row], speedup_3v1: Option<f64>, cpus: usize) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"E20\",\n  \"host_cpus\": {cpus},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"jobs\": {}, \"wall_ms\": {:.1}, \"jobs_per_sec\": {:.2}, \"p50_ms\": {:.1}, \"max_ms\": {:.1}, \"peer_rpcs\": {}, \"steals\": {}, \"replica_copies\": {}}}{}\n",
            r.nodes,
            r.jobs,
            r.wall_ms,
            r.jobs_per_sec,
            r.p50_ms,
            r.max_ms,
            r.peer_rpcs,
            r.steals,
            r.replica_copies,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    match speedup_3v1 {
        Some(s) => out.push_str(&format!("  ],\n  \"speedup_3v1\": {s:.2}\n}}\n")),
        None => out.push_str("  ]\n}\n"),
    }
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut reduced = false;
    let mut min_speedup: Option<f64> = None;
    let mut out_path = String::from("BENCH_svc_cluster.json");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--daemon" => {
                let addr = args.next().expect("--daemon needs an address");
                let dir = args.next().expect("--daemon needs a data dir");
                let replicas: usize = args
                    .next()
                    .expect("--daemon needs a replica count")
                    .parse()
                    .unwrap();
                let peers: Vec<String> = match args.next().expect("--daemon needs peers").as_str() {
                    "-" => Vec::new(),
                    list => list.split(',').map(|s| s.to_string()).collect(),
                };
                run_daemon(addr, dir, replicas, peers);
            }
            "--reduced" => reduced = true,
            "--min-speedup" => {
                min_speedup =
                    Some(args.next().expect("--min-speedup needs X").parse().unwrap())
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }

    // Reduced keeps the acceptance shape — the 1-node baseline and the
    // 3-node acceptance point — and trims the corpus; the full run adds
    // the 2- and 4-node rows for the scaling curve.
    let node_counts: &[usize] = if reduced { &[1, 3] } else { &[1, 2, 3, 4] };
    let variants = if reduced { 4 } else { 8 };
    let (items, references) = build_workload(reduced, variants);
    assert!(
        references.len() >= 2,
        "need at least two recordable bugs for a cluster workload"
    );
    println!(
        "E20: {} jobs ({} corpus bugs x {} seed variants) over clusters of {:?} daemon process(es), N=2 replication\n",
        items.len(),
        references.len(),
        variants,
        node_counts
    );

    let rows: Vec<Row> = node_counts
        .iter()
        .map(|&n| measure(n, &items, &references))
        .collect();

    println!(
        "{:>5} | {:>5} | {:>8} | {:>8} | {:>8} | {:>8} | {:>9} | {:>6} | {:>8}",
        "nodes", "jobs", "wall ms", "jobs/s", "p50 ms", "max ms", "peer_rpcs", "steals", "replicas"
    );
    println!("{}", "-".repeat(86));
    for r in &rows {
        println!(
            "{:>5} | {:>5} | {:>8.0} | {:>8.2} | {:>8.1} | {:>8.1} | {:>9} | {:>6} | {:>8}",
            r.nodes,
            r.jobs,
            r.wall_ms,
            r.jobs_per_sec,
            r.p50_ms,
            r.max_ms,
            r.peer_rpcs,
            r.steals,
            r.replica_copies,
        );
    }

    let baseline = rows.iter().find(|r| r.nodes == 1).expect("1-node row");
    let speedup_3v1 = rows
        .iter()
        .find(|r| r.nodes == 3)
        .map(|r| r.jobs_per_sec / baseline.jobs_per_sec);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Some(s) = speedup_3v1 {
        println!("\n3-node speedup over 1 node: {s:.2}x on a {cpus}-cpu host");
        if cpus == 1 {
            // EXPERIMENTS.md "Deviations" 4 and 5: replay is CPU-bound,
            // so on one core N processes time-share the corpus and only
            // the durability waits overlap. The identity and
            // replication assertions above are the host-independent
            // claims; the ratio is reported, not asserted, here.
            println!(
                "note: single-cpu host — aggregate replay throughput cannot \
                 exceed one core's; the curve measures cluster overhead plus \
                 durability-overlap, not CPU scale-out"
            );
        }
    }

    let json = to_json(&rows, speedup_3v1, cpus);
    std::fs::write(&out_path, &json).expect("write cluster JSON");
    println!("wrote {out_path} ({} bytes)", json.len());

    if let Some(bound) = min_speedup {
        let s = speedup_3v1.expect("--min-speedup needs the 3-node row");
        assert!(
            s >= bound,
            "3-node speedup {s:.2}x below the {bound}x bound"
        );
        println!("speedup {s:.2}x clears the {bound}x bound");
    }
}
