//! E16: replay-as-a-service — submit→certificate latency and queue
//! throughput over loopback TCP.
//!
//! For each `--job-workers` setting a fresh daemon is started on an
//! ephemeral port with a scratch data directory; every corpus bug that
//! records under SYNC is submitted as one job (distinct bugs, so dedup
//! cannot collapse the workload), and the run measures each job's
//! submit→terminal latency plus the whole batch's wall-clock throughput.
//! Everything flows through the real client, protocol, store, journal,
//! and worker pool — the measured path is exactly what `pres submit`
//! exercises.
//!
//! ```text
//! fig_svc [--reduced-corpus] [--out FILE]
//! ```
//!
//! Prints the table and writes the measurements as JSON (for the CI
//! artifact) to `BENCH_svc.json` unless `--out` overrides it.
use pres_apps::registry::all_bugs;
use pres_core::api::Pres;
use pres_core::codec::encode_sketch;
use pres_core::sketch::Mechanism;
use pres_svc::queue::QueueConfig;
use pres_svc::server::{ServeOptions, Server};
use pres_svc::{Client, JobStatus};
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 2] = [1, 2];

struct JobPoint {
    bug: String,
    attempts: u32,
    latency_ms: f64,
}

struct WorkerRow {
    workers: usize,
    jobs: usize,
    wall_ms: f64,
    points: Vec<JobPoint>,
}

impl WorkerRow {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / (self.wall_ms / 1e3)
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn to_json(rows: &[WorkerRow], mechanism: Mechanism) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"E16\",\n  \"mechanism\": \"{}\",\n  \"rows\": [\n",
        json_escape(&mechanism.name())
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"job_workers\": {}, \"jobs\": {}, \"wall_ms\": {:.3}, \"jobs_per_sec\": {:.2}, \"points\": [",
            r.workers,
            r.jobs,
            r.wall_ms,
            r.jobs_per_sec()
        ));
        for (j, p) in r.points.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"bug\": \"{}\", \"attempts\": {}, \"latency_ms\": {:.3}}}",
                if j > 0 { ", " } else { "" },
                json_escape(&p.bug),
                p.attempts,
                p.latency_ms
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Records every corpus bug that fails under `mechanism`, returning
/// `(bug id, sketch container bytes)` pairs.
fn corpus_sketches(mechanism: Mechanism, reduced: bool) -> Vec<(String, Vec<u8>)> {
    let mut bugs = all_bugs();
    if reduced {
        // CI smoke: three bugs keep the step fast while still giving the
        // two-worker run something to overlap.
        bugs.truncate(3);
    }
    bugs.into_iter()
        .filter_map(|case| {
            let program = case.program();
            let pres = Pres::new(mechanism);
            let run = pres.record_until_failure(program.as_ref(), 0..5000)?;
            Some((case.id.to_string(), encode_sketch(&run.sketch)))
        })
        .collect()
}

fn measure(workers: usize, sketches: &[(String, Vec<u8>)]) -> WorkerRow {
    let data_dir = std::env::temp_dir().join(format!(
        "pres-fig-svc-{}-w{workers}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);
    let server = Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.clone(),
        queue: QueueConfig {
            workers,
            ..QueueConfig::default()
        },
        log_interval: None,
        ..ServeOptions::default()
    })
    .expect("daemon starts");

    let mut client = Client::connect(server.addr()).expect("client connects");
    let started = Instant::now();
    let submitted: Vec<(String, u64, Instant)> = sketches
        .iter()
        .map(|(bug, bytes)| {
            let receipt = client.submit(bug, bytes).expect("submit succeeds");
            (bug.clone(), receipt.job, Instant::now())
        })
        .collect();
    let mut points = Vec::new();
    for (bug, job, submit_time) in submitted {
        let status = client
            .wait(job, Duration::from_secs(300))
            .expect("job reaches a terminal status");
        let latency_ms = submit_time.elapsed().as_secs_f64() * 1e3;
        let JobStatus::Succeeded { attempts, .. } = status else {
            panic!("bug {bug}: expected success, got {status}");
        };
        assert!(
            !client.fetch_certificate(job).expect("certificate").is_empty(),
            "bug {bug}: empty certificate"
        );
        points.push(JobPoint {
            bug,
            attempts,
            latency_ms,
        });
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&data_dir);
    WorkerRow {
        workers,
        jobs: points.len(),
        wall_ms,
        points,
    }
}

fn main() {
    let mut reduced = false;
    let mut out_path = String::from("BENCH_svc.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced-corpus" => reduced = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }

    let mechanism = Mechanism::Sync;
    let sketches = corpus_sketches(mechanism, reduced);
    assert!(
        sketches.len() >= 2,
        "need at least two recordable bugs to measure queue overlap"
    );
    println!(
        "E16: {} jobs (distinct bugs under {}), job-workers {:?}\n",
        sketches.len(),
        mechanism.name(),
        WORKER_COUNTS
    );

    let rows: Vec<WorkerRow> = WORKER_COUNTS
        .iter()
        .map(|&w| measure(w, &sketches))
        .collect();

    println!(
        "{:>11} | {:>5} | {:>10} | {:>8} | {:>14} | {:>14}",
        "job-workers", "jobs", "wall ms", "jobs/s", "median lat ms", "max lat ms"
    );
    println!("{}", "-".repeat(78));
    for r in &rows {
        let mut lats: Vec<f64> = r.points.iter().map(|p| p.latency_ms).collect();
        lats.sort_by(|a, b| a.total_cmp(b));
        let median = lats[lats.len() / 2];
        let max = lats.last().copied().unwrap_or(0.0);
        println!(
            "{:>11} | {:>5} | {:>10.1} | {:>8.2} | {:>14.1} | {:>14.1}",
            r.workers,
            r.jobs,
            r.wall_ms,
            r.jobs_per_sec(),
            median,
            max
        );
    }

    // Sanity: every configuration finished every job with a certificate.
    for r in &rows {
        assert_eq!(r.jobs, sketches.len(), "job-workers {}: lost jobs", r.workers);
    }

    let json = to_json(&rows, mechanism);
    std::fs::write(&out_path, &json).expect("write svc JSON");
    println!("\nwrote {out_path} ({} bytes)", json.len());
}
