//! E6: feedback-guided vs. independent random exploration.
use pres_bench::experiments::{e6_feedback, render_feedback, ABLATION_CAP};

fn main() {
    let rows = e6_feedback(ABLATION_CAP);
    print!("{}", render_feedback(&rows, ABLATION_CAP));
}
