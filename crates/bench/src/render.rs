//! Plain-text table rendering for the experiment binaries.

/// Renders rows as a fixed-width table with a header rule.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an overhead percentage the way the paper's tables do.
pub fn pct(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.0}%", v)
    } else if v >= 10.0 {
        format!("{:.1}%", v)
    } else {
        format!("{:.2}%", v)
    }
}

/// Formats a byte count with a unit.
pub fn bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["app", "overhead"],
            &[
                vec!["httpd".into(), "1.2%".into()],
                vec!["fft".into(), "4416%".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn pct_scales_precision() {
        assert_eq!(pct(0.5), "0.50%");
        assert_eq!(pct(42.0), "42.0%");
        assert_eq!(pct(4416.0), "4416%");
    }

    #[test]
    fn bytes_units() {
        assert_eq!(bytes(10), "10 B");
        assert_eq!(bytes(2048), "2.0 KiB");
        assert_eq!(bytes(3 << 20), "3.0 MiB");
    }
}
