//! Shared helpers for the application corpus.

use pres_tvm::ids::FuncId;

/// Function-identity constants used by FUNC sketching across the corpus.
/// Each application uses a disjoint range so traces stay readable.
pub const FUNC_HANDLE: FuncId = FuncId(1);
/// Request-serving path.
pub const FUNC_SERVE: FuncId = FuncId(2);
/// Access-logging path.
pub const FUNC_LOG: FuncId = FuncId(3);
/// Transaction execution (sqld).
pub const FUNC_TXN: FuncId = FuncId(10);
/// Binlog flush (sqld).
pub const FUNC_FLUSH: FuncId = FuncId(11);
/// Directory operation (ldapd).
pub const FUNC_DIROP: FuncId = FuncId(20);
/// Block compression (pbzip).
pub const FUNC_COMPRESS: FuncId = FuncId(30);
/// Chunk download (aget).
pub const FUNC_DOWNLOAD: FuncId = FuncId(40);
/// Cache insert (browser).
pub const FUNC_CACHE_INSERT: FuncId = FuncId(50);
/// Cache evict (browser).
pub const FUNC_CACHE_EVICT: FuncId = FuncId(51);
/// Kernel phase (scientific apps).
pub const FUNC_PHASE: FuncId = FuncId(60);

/// Parses the numeric path id out of a `GET /<n>` request line; unknown
/// requests map to path 0.
pub fn parse_path(request: &[u8]) -> u32 {
    let s = String::from_utf8_lossy(request);
    s.trim()
        .strip_prefix("GET /")
        .and_then(|rest| {
            rest.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

/// Parses a simple `VERB arg1 arg2` command into (verb, numeric args).
pub fn parse_command(request: &[u8]) -> (String, Vec<u64>) {
    let s = String::from_utf8_lossy(request);
    let mut parts = s.split_whitespace();
    let verb = parts.next().unwrap_or("").to_uppercase();
    let args = parts.filter_map(|p| p.parse().ok()).collect();
    (verb, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_path_extracts_ids() {
        assert_eq!(parse_path(b"GET /3"), 3);
        assert_eq!(parse_path(b"GET /42 HTTP/1.0"), 42);
        assert_eq!(parse_path(b"GET /"), 0);
        assert_eq!(parse_path(b"POST /1"), 0);
        assert_eq!(parse_path(b""), 0);
    }

    #[test]
    fn parse_command_splits_verb_and_args() {
        let (verb, args) = parse_command(b"UPDATE 3 17");
        assert_eq!(verb, "UPDATE");
        assert_eq!(args, vec![3, 17]);
        let (verb, args) = parse_command(b"select 9");
        assert_eq!(verb, "SELECT");
        assert_eq!(args, vec![9]);
        let (verb, args) = parse_command(b"");
        assert_eq!(verb, "");
        assert!(args.is_empty());
    }
}
