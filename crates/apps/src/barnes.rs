//! `barnes` — a SPLASH-2-style Barnes-Hut tree-building kernel.
//!
//! Structure: worker threads insert their particles into a shared octree;
//! insertion descends the tree (virtual compute), claims the next free
//! child slot of the target node, and stores the particle there. The slot
//! claim is a two-variable protocol: bump the node's child count, then
//! fill the claimed slot.
//!
//! Seeded bug — [`BarnesBug::TreeAtomicity`], modeled after the SPLASH-2
//! Barnes tree-insertion races studied in the concurrency-bug literature:
//! the claim-then-fill sequence runs without the node lock, so two
//! inserters can claim the same slot; one particle overwrites the other
//! and the tree silently loses a body. Class: atomicity violation.

use crate::util::FUNC_PHASE;
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarnesBug {
    /// Slot claims hold the node lock.
    None,
    /// Lock-free claim-then-fill (slot collisions possible).
    TreeAtomicity,
}

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct BarnesConfig {
    /// Worker threads.
    pub workers: u32,
    /// Particles per worker.
    pub particles: u32,
    /// Tree nodes (particles hash onto nodes).
    pub nodes: u32,
    /// Virtual compute units per tree descent.
    pub work_per_insert: u64,
    /// Active bug.
    pub bug: BarnesBug,
}

impl Default for BarnesConfig {
    fn default() -> Self {
        BarnesConfig {
            workers: 4,
            particles: 4,
            nodes: 2,
            work_per_insert: 50,
            bug: BarnesBug::TreeAtomicity,
        }
    }
}

/// Maximum children per node (slots array size per node).
const NODE_SLOTS: u32 = 16;

#[derive(Debug, Clone, Copy)]
struct Resources {
    /// Per-node child counts (contiguous).
    counts0: VarId,
    /// Per-node slot arrays (contiguous, `nodes * NODE_SLOTS`).
    slots0: VarId,
    /// Per-node locks.
    locks0: LockId,
    inserted: VarId,
}

/// The Barnes-Hut kernel program.
#[derive(Debug, Clone)]
pub struct Barnes {
    cfg: BarnesConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Barnes {
    /// Builds the kernel with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration could overflow a node's slot array.
    pub fn new(cfg: BarnesConfig) -> Self {
        assert!(
            cfg.workers * cfg.particles <= cfg.nodes * NODE_SLOTS,
            "too many particles for the slot arrays"
        );
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            counts0: spec.var_array("node_count", cfg.nodes, 0),
            slots0: spec.var_array("node_slot", cfg.nodes * NODE_SLOTS, 0),
            locks0: spec.lock_array("node_lock", cfg.nodes),
            inserted: spec.var("inserted", 0),
        };
        Barnes { cfg, spec, rs }
    }
}

fn insert(ctx: &mut Ctx, cfg: &BarnesConfig, rs: Resources, node: u32, particle_id: u64) {
    let count_var = VarId(rs.counts0.0 + node);
    // The lock-free path is the cell-splitting insert, a fraction of all
    // insertions (as in the original kernel's racy body-loading phase).
    let splitting = particle_id.is_multiple_of(4);
    match cfg.bug {
        BarnesBug::TreeAtomicity if splitting => {
            // BUG: claim-then-fill without the node lock.
            ctx.bb(100);
            let idx = ctx.read(count_var);
            ctx.write(count_var, idx + 1);
            let slot = VarId(rs.slots0.0 + node * NODE_SLOTS + idx as u32 % NODE_SLOTS);
            ctx.write(slot, particle_id);
        }
        _ => {
            ctx.bb(101);
            ctx.with_lock(LockId(rs.locks0.0 + node), |ctx| {
                let idx = ctx.read(count_var);
                ctx.write(count_var, idx + 1);
                let slot = VarId(rs.slots0.0 + node * NODE_SLOTS + idx as u32 % NODE_SLOTS);
                ctx.write(slot, particle_id);
            });
        }
    }
    ctx.fetch_add(rs.inserted, 1);
}

fn worker_body(ctx: &mut Ctx, cfg: &BarnesConfig, rs: Resources, w: u32) {
    ctx.func(FUNC_PHASE);
    for p in 0..cfg.particles {
        // Tree descent: depth (and op count) varies per particle.
        let depth = 2 + (w + 3 * p) % 6;
        for level in 0..depth {
            ctx.bb(102 + level);
            ctx.compute(cfg.work_per_insert / u64::from(depth));
        }
        let particle_id = u64::from(w) * u64::from(cfg.particles) + u64::from(p) + 1;
        let node = (w + p) % cfg.nodes;
        insert(ctx, cfg, rs, node, particle_id);
    }
}

impl Program for Barnes {
    fn name(&self) -> String {
        match self.cfg.bug {
            BarnesBug::None => "barnes".to_string(),
            BarnesBug::TreeAtomicity => "barnes-tree-atomicity".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        WorldConfig::default()
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        Box::new(move |ctx| {
            let workers: Vec<ThreadId> = (0..cfg.workers)
                .map(|w| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("barnes{w}"), move |ctx| {
                        worker_body(ctx, &cfg, rs, w)
                    })
                })
                .collect();
            for t in workers {
                ctx.join(t);
            }
            // Validate: every particle is in the tree exactly once.
            let inserted = ctx.read(rs.inserted);
            let total = u64::from(cfg.workers) * u64::from(cfg.particles);
            ctx.check(inserted == total, "insert bookkeeping lost a particle");
            let mut count_sum = 0u64;
            for n in 0..cfg.nodes {
                count_sum += ctx.read(VarId(rs.counts0.0 + n));
            }
            ctx.check(count_sum == total, "tree counts lost an insertion");
            let mut filled = 0u64;
            for n in 0..cfg.nodes {
                let count = ctx.read(VarId(rs.counts0.0 + n)).min(u64::from(NODE_SLOTS));
                for s in 0..count as u32 {
                    let v = ctx.read(VarId(rs.slots0.0 + n * NODE_SLOTS + s));
                    if v != 0 {
                        filled += 1;
                    }
                }
            }
            ctx.check(filled == total, "a body vanished from the tree (slot collision)");
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::never_fails;

    #[test]
    fn locked_tree_build_completes_under_many_schedules() {
        never_fails(
            || {
                Barnes::new(BarnesConfig {
                    bug: BarnesBug::None,
                    ..BarnesConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn slot_collision_manifests_under_some_schedule() {
        // The racy claim can fail two ways: a count RMW lost (counts short)
        // or two fills on one slot (a body vanishes). Accept either.
        let mut failing = None;
        let mut clean = false;
        for seed in 0..500 {
            let prog = Barnes::new(BarnesConfig::default());
            match crate::testutil::run_seed(&prog, seed) {
                RunStatus::Failed(Failure::Assertion { message, .. }) => {
                    assert!(
                        message.contains("lost an insertion") || message.contains("vanished"),
                        "unexpected failure: {message}"
                    );
                    failing.get_or_insert(seed);
                }
                RunStatus::Completed => clean = true,
                other => panic!("seed {seed}: {other}"),
            }
            if failing.is_some() && clean {
                break;
            }
        }
        assert!(failing.is_some(), "tree race never manifested");
        assert!(clean, "every schedule failed");
    }
}
