//! `sqld` — a MySQL-style storage server with a binary log.
//!
//! Structure: a dispatcher (root thread) accepts client connections and
//! hands them to a pool of transaction workers. Workers parse simple
//! `UPDATE <row> <delta>` / `SELECT <row>` / `FLUSH` commands, execute them
//! against an in-memory table protected by a table lock, and append every
//! committed update to a shared binary log ("binlog") protected by a log
//! lock. At shutdown the binlog is flushed to the simulated filesystem and
//! the server validates its own invariants.
//!
//! Seeded bugs:
//!
//! * [`SqldBug::BinlogAtomicity`] — modeled after **MySQL #791**: the
//!   table update (which assigns the commit sequence number) and the binlog
//!   append are supposed to be one atomic section; the buggy path releases
//!   the table lock before appending, so two committing transactions can
//!   write the binlog out of commit order. Class: multi-variable atomicity
//!   violation (table state vs. log state).
//! * [`SqldBug::Deadlock`] — a lock-order inversion: `FLUSH` acquires
//!   log-then-table while updates acquire table-then-log. Under the right
//!   interleaving the server deadlocks (the paper's deadlock class).

use crate::util::{parse_command, FUNC_FLUSH, FUNC_TXN};
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqldBug {
    /// Fully synchronized server.
    None,
    /// MySQL #791-style binlog atomicity violation.
    BinlogAtomicity,
    /// Lock-order-inversion deadlock between update and flush.
    Deadlock,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct SqldConfig {
    /// Transaction-worker pool size.
    pub workers: u32,
    /// Number of rows in the table.
    pub rows: u32,
    /// Scripted client transactions.
    pub txns: u32,
    /// Virtual compute units per transaction.
    pub work_per_txn: u64,
    /// Active bug.
    pub bug: SqldBug,
}

impl Default for SqldConfig {
    fn default() -> Self {
        SqldConfig {
            workers: 3,
            rows: 4,
            txns: 12,
            work_per_txn: 90,
            bug: SqldBug::None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    dispatch: ChanId,
    rows: VarId,
    table_lock: LockId,
    commit_seq: VarId,
    binlog: BufId,
    log_lock: LockId,
    flushes: VarId,
    committed: VarId,
}

/// The MySQL-style server program.
#[derive(Debug, Clone)]
pub struct Sqld {
    cfg: SqldConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Sqld {
    /// Builds the server with the given configuration.
    pub fn new(cfg: SqldConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            dispatch: spec.chan("dispatch"),
            rows: spec.var_array("row", cfg.rows, 0),
            table_lock: spec.lock("table_lock"),
            commit_seq: spec.var("commit_seq", 0),
            binlog: spec.buf("binlog"),
            log_lock: spec.lock("log_lock"),
            flushes: spec.var("flushes", 0),
            committed: spec.var("committed", 0),
        };
        Sqld { cfg, spec, rs }
    }

}

fn row_var(rs: &Resources, cfg: &SqldConfig, i: u64) -> VarId {
    VarId(rs.rows.0 + (i as u32 % cfg.rows))
}

/// Binlog record: `[seq:8][row:4][value:8]`.
const BINLOG_RECORD: usize = 20;

fn binlog_record(seq: u64, row: u32, value: u64) -> Vec<u8> {
    let mut rec = Vec::with_capacity(BINLOG_RECORD);
    rec.extend_from_slice(&seq.to_be_bytes());
    rec.extend_from_slice(&row.to_be_bytes());
    rec.extend_from_slice(&value.to_be_bytes());
    rec
}

fn exec_update(ctx: &mut Ctx, cfg: &SqldConfig, rs: Resources, row_idx: u64, delta: u64) {
    ctx.func(FUNC_TXN);
    let row = row_var(&rs, cfg, row_idx);
    match cfg.bug {
        SqldBug::BinlogAtomicity => {
            // BUG: commit section split — the table lock is dropped before
            // the binlog append, so commit order and log order can differ.
            ctx.bb(20);
            ctx.lock(rs.table_lock);
            let v = ctx.read(row);
            let newv = v + delta;
            ctx.write(row, newv);
            let seq = ctx.read(rs.commit_seq);
            ctx.write(rs.commit_seq, seq + 1);
            ctx.unlock(rs.table_lock);
            ctx.compute(cfg.work_per_txn / 8);
            ctx.with_lock(rs.log_lock, |ctx| {
                ctx.buf_append(rs.binlog, &binlog_record(seq, row.0, newv));
            });
        }
        _ => {
            // Correct: table lock covers both the update and the append
            // (acquiring the log lock inside, table -> log order).
            ctx.bb(21);
            ctx.lock(rs.table_lock);
            let v = ctx.read(row);
            let newv = v + delta;
            ctx.write(row, newv);
            let seq = ctx.read(rs.commit_seq);
            ctx.write(rs.commit_seq, seq + 1);
            ctx.with_lock(rs.log_lock, |ctx| {
                ctx.buf_append(rs.binlog, &binlog_record(seq, row.0, newv));
            });
            ctx.unlock(rs.table_lock);
        }
    }
    ctx.fetch_add(rs.committed, 1);
}

fn exec_flush(ctx: &mut Ctx, cfg: &SqldConfig, rs: Resources) {
    ctx.func(FUNC_FLUSH);
    match cfg.bug {
        SqldBug::Deadlock => {
            // BUG: lock-order inversion — flush takes log then table while
            // updates take table then log.
            ctx.bb(22);
            ctx.lock(rs.log_lock);
            let len = ctx.buf_len(rs.binlog);
            let mut seq = 0;
            if len >= 7 * BINLOG_RECORD {
                // Large flush: stamp it with the commit sequence — taken
                // in the inverted order.
                ctx.lock(rs.table_lock);
                seq = ctx.read(rs.commit_seq);
                ctx.unlock(rs.table_lock);
            }
            ctx.unlock(rs.log_lock);
            let fd = ctx.sys_open("/data/binlog");
            ctx.sys_write(fd, format!("flush len={len} seq={seq}\n").as_bytes());
            ctx.sys_close(fd);
        }
        _ => {
            // Correct: global order table -> log.
            ctx.bb(23);
            ctx.lock(rs.table_lock);
            let seq = ctx.read(rs.commit_seq);
            ctx.lock(rs.log_lock);
            let len = ctx.buf_len(rs.binlog);
            ctx.unlock(rs.log_lock);
            ctx.unlock(rs.table_lock);
            let fd = ctx.sys_open("/data/binlog");
            ctx.sys_write(fd, format!("flush len={len} seq={seq}\n").as_bytes());
            ctx.sys_close(fd);
        }
    }
    ctx.fetch_add(rs.flushes, 1);
}

fn worker_body(ctx: &mut Ctx, cfg: &SqldConfig, rs: Resources) {
    while let Some(conn_raw) = ctx.recv(rs.dispatch) {
        let conn = ConnId(conn_raw as u32);
        let request = ctx.sys_recv(conn, 64).unwrap_or_default();
        let (verb, args) = parse_command(&request);
        ctx.compute(cfg.work_per_txn);
        match verb.as_str() {
            "UPDATE" => {
                let row = args.first().copied().unwrap_or(0);
                let delta = args.get(1).copied().unwrap_or(1);
                exec_update(ctx, cfg, rs, row, delta);
                ctx.sys_send(conn, b"OK");
            }
            "SELECT" => {
                let row = row_var(&rs, cfg, args.first().copied().unwrap_or(0));
                let v = ctx.with_lock(rs.table_lock, |ctx| ctx.read(row));
                ctx.sys_send(conn, format!("VAL {v}").as_bytes());
            }
            "FLUSH" => {
                exec_flush(ctx, cfg, rs);
                ctx.sys_send(conn, b"FLUSHED");
            }
            _ => ctx.sys_send(conn, b"ERR"),
        }
        ctx.sys_net_close(conn);
    }
}

fn validate(ctx: &mut Ctx, cfg: &SqldConfig, rs: Resources, expected_sum: u64, updates: u64) {
    // Table invariant: total value equals the sum of applied deltas.
    let mut total = 0;
    for i in 0..cfg.rows {
        total += ctx.read(VarId(rs.rows.0 + i));
    }
    ctx.check(total == expected_sum, "table lost an update");
    // Binlog invariant: one record per commit, in commit-sequence order.
    let log = ctx.buf_read(rs.binlog);
    ctx.check(
        log.len() == updates as usize * BINLOG_RECORD,
        "binlog record count mismatch",
    );
    let mut prev: Option<u64> = None;
    for rec in log.chunks(BINLOG_RECORD) {
        let seq = u64::from_be_bytes(rec[0..8].try_into().expect("record width"));
        if let Some(p) = prev {
            ctx.check(seq > p, "binlog out of commit order");
        }
        prev = Some(seq);
    }
}

impl Program for Sqld {
    fn name(&self) -> String {
        match self.cfg.bug {
            SqldBug::None => "sqld".to_string(),
            SqldBug::BinlogAtomicity => "sqld-binlog-atomicity".to_string(),
            SqldBug::Deadlock => "sqld-deadlock".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        let mut world = WorldConfig::default();
        for i in 0..self.cfg.txns {
            // Mostly updates, periodic flushes, a few reads.
            let cmd = match (self.cfg.bug, i % 6) {
                (SqldBug::Deadlock, 3) => "FLUSH".to_string(),
                (_, 5) => format!("SELECT {}", i % self.cfg.rows),
                (SqldBug::None | SqldBug::BinlogAtomicity, 2) if i == 2 => "FLUSH".to_string(),
                _ => format!("UPDATE {} {}", i % self.cfg.rows, u64::from(i) + 1),
            };
            world = world.with_session(Session::new(u64::from(i) * 3, cmd.into_bytes()));
        }
        world.input_seed = 0x51d_5eedu64.wrapping_mul(u64::from(self.cfg.txns) + 1);
        world
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        let (expected_sum, updates) = self.expected();
        Box::new(move |ctx| {
            let workers: Vec<ThreadId> = (0..cfg.workers)
                .map(|i| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("txn{i}"), move |ctx| {
                        worker_body(ctx, &cfg, rs);
                    })
                })
                .collect();
            while let Some(conn) = ctx.sys_accept() {
                ctx.send(rs.dispatch, u64::from(conn.0));
            }
            ctx.chan_close(rs.dispatch);
            for w in workers {
                ctx.join(w);
            }
            // Final binlog flush to disk.
            let log = ctx.buf_read(rs.binlog);
            let fd = ctx.sys_open("/data/binlog");
            ctx.sys_write(fd, &log);
            ctx.sys_close(fd);
            validate(ctx, &cfg, rs, expected_sum, updates);
        })
    }
}

impl Sqld {
    /// (expected table sum, number of UPDATE transactions) for the scripted
    /// workload — mirrors the command generation in [`Program::world`].
    fn expected(&self) -> (u64, u64) {
        let mut sum = 0u64;
        let mut updates = 0u64;
        for i in 0..self.cfg.txns {
            let is_flush = matches!((self.cfg.bug, i % 6), (SqldBug::Deadlock, 3))
                || (matches!(self.cfg.bug, SqldBug::None | SqldBug::BinlogAtomicity) && i == 2);
            let is_select = i % 6 == 5 && !is_flush;
            if !is_flush && !is_select {
                sum += u64::from(i) + 1;
                updates += 1;
            }
        }
        (sum, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails, run_seed};

    #[test]
    fn bug_free_server_completes_under_many_schedules() {
        never_fails(|| Sqld::new(SqldConfig::default()), 40);
    }

    #[test]
    fn binlog_atomicity_bug_manifests() {
        fails_for_some_seed_t(
            || {
                Sqld::new(SqldConfig {
                    bug: SqldBug::BinlogAtomicity,
                    ..SqldConfig::default()
                })
            },
            500,
            "assert:binlog out of commit order",
        );
    }

    #[test]
    fn deadlock_bug_deadlocks_under_some_schedule() {
        let mut saw_deadlock = false;
        let mut saw_clean = false;
        for seed in 0..500 {
            let prog = Sqld::new(SqldConfig {
                bug: SqldBug::Deadlock,
                ..SqldConfig::default()
            });
            match run_seed(&prog, seed) {
                RunStatus::Failed(Failure::Deadlock { locks, .. }) => {
                    assert!(locks.len() >= 2);
                    saw_deadlock = true;
                }
                RunStatus::Completed => saw_clean = true,
                other => panic!("seed {seed}: {other}"),
            }
            if saw_deadlock && saw_clean {
                break;
            }
        }
        assert!(saw_deadlock, "lock inversion never deadlocked");
        assert!(saw_clean, "every schedule deadlocked");
    }

    #[test]
    fn expected_sum_matches_execution() {
        let app = Sqld::new(SqldConfig::default());
        let (sum, updates) = app.expected();
        assert!(sum > 0 && updates > 0);
        // A clean run agrees with the prediction (validated internally).
        assert_eq!(run_seed(&app, 7), RunStatus::Completed);

    }
}
