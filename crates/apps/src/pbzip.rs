//! `pbzip` — a PBZip2-style parallel block compressor.
//!
//! Structure: the main thread reads the input file in fixed-size blocks
//! and feeds them through a work queue to a pool of compressor threads;
//! each compressor "compresses" its block (checksums it under virtual
//! compute cost), appends the result to the output file, and reports
//! completion through a condition-variable-protected counter. When every
//! block is done, the main thread tears the queue down and exits.
//!
//! Seeded bug — [`PbzipBug::QueueFreeOrder`], modeled after the well-known
//! **PBZip2 queue teardown use-after-free** (the poster-child order
//! violation in the concurrency-bug literature): a compressor reports
//! completion *before* its final touch of the queue structure, so the main
//! thread — which frees the queue as soon as the count reaches the block
//! total — can free it under the compressor's feet.

use crate::util::FUNC_COMPRESS;
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbzipBug {
    /// Correct teardown order.
    None,
    /// Completion reported before the final queue touch.
    QueueFreeOrder,
}

/// Compressor configuration.
#[derive(Debug, Clone)]
pub struct PbzipConfig {
    /// Compressor threads.
    pub workers: u32,
    /// Number of input blocks.
    pub blocks: u32,
    /// Block size in bytes.
    pub block_size: usize,
    /// Virtual compute units per block ("compression" cost).
    pub work_per_block: u64,
    /// Active bug.
    pub bug: PbzipBug,
}

impl Default for PbzipConfig {
    fn default() -> Self {
        PbzipConfig {
            workers: 3,
            blocks: 9,
            block_size: 24,
            work_per_block: 150,
            bug: PbzipBug::QueueFreeOrder,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    queue: ChanId,
    /// 1 while the queue structure is live; 0 after the main thread frees it.
    queue_alive: VarId,
    /// Queue bookkeeping the workers touch (models fifo->mut state).
    queue_stat: VarId,
    done_lock: LockId,
    done_cond: CondId,
    done: VarId,
    checksum: VarId,
    out_lock: LockId,
}

/// The PBZip2-style compressor program.
#[derive(Debug, Clone)]
pub struct Pbzip {
    cfg: PbzipConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Pbzip {
    /// Builds the compressor with the given configuration.
    pub fn new(cfg: PbzipConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            queue: spec.chan("queue"),
            queue_alive: spec.var("queue_alive", 1),
            queue_stat: spec.var("queue_stat", 0),
            done_lock: spec.lock("done_lock"),
            done_cond: spec.cond("done_cond"),
            done: spec.var("done", 0),
            checksum: spec.var("checksum", 0),
            out_lock: spec.lock("out_lock"),
        };
        Pbzip { cfg, spec, rs }
    }

    fn input_bytes(&self) -> Vec<u8> {
        // Block-periodic content: every block has the same byte sum, so the
        // archive checksum is independent of which worker compressed which
        // block (workers read their own file cursors sequentially).
        (0..self.cfg.blocks as usize * self.cfg.block_size)
            .map(|i| ((i % self.cfg.block_size) * 7 + 13) as u8)
            .collect()
    }

    /// The checksum a correct run must produce.
    fn expected_checksum(&self) -> u64 {
        self.input_bytes()
            .chunks(self.cfg.block_size)
            .map(|b| b.iter().map(|x| u64::from(*x)).sum::<u64>())
            .sum()
    }
}

fn touch_queue(ctx: &mut Ctx, rs: Resources) {
    // The queue-structure access that must precede teardown. The stat
    // update itself is atomic (the real queue's internal mutex); what races
    // with teardown is touching the structure at all.
    let alive = ctx.read(rs.queue_alive);
    ctx.check(alive == 1, "compressor touched freed work queue");
    ctx.fetch_add(rs.queue_stat, 1);
}

fn compressor_body(ctx: &mut Ctx, cfg: &PbzipConfig, rs: Resources, fd: FdId) {
    while let Some(block_id) = ctx.recv(rs.queue) {
        ctx.func(FUNC_COMPRESS);
        ctx.bb(50);
        // "Read" the block from the input file at its offset. (The fd
        // cursor model is append/sequential, so compressors re-open.)
        let data = ctx.sys_read(fd, cfg.block_size);
        let local_sum: u64 = data.iter().map(|b| u64::from(*b)).sum();
        ctx.compute(cfg.work_per_block);
        ctx.fetch_add(rs.checksum, local_sum as i64);
        ctx.with_lock(rs.out_lock, |ctx| {
            let out = ctx.sys_open("/out/archive.bz2");
            ctx.sys_write(out, &local_sum.to_be_bytes());
            ctx.sys_close(out);
        });

        match cfg.bug {
            PbzipBug::QueueFreeOrder => {
                // BUG: completion is reported first; the final queue touch
                // races with the main thread's teardown.
                ctx.bb(51);
                ctx.lock(rs.done_lock);
                let d = ctx.read(rs.done);
                ctx.write(rs.done, d + 1);
                ctx.notify_one(rs.done_cond);
                ctx.unlock(rs.done_lock);
                ctx.compute(6);
                touch_queue(ctx, rs);
            }
            PbzipBug::None => {
                // Correct: last queue touch strictly before reporting.
                ctx.bb(52);
                touch_queue(ctx, rs);
                ctx.lock(rs.done_lock);
                let d = ctx.read(rs.done);
                ctx.write(rs.done, d + 1);
                ctx.notify_one(rs.done_cond);
                ctx.unlock(rs.done_lock);
            }
        }
        let _ = block_id;
    }
}

impl Program for Pbzip {
    fn name(&self) -> String {
        match self.cfg.bug {
            PbzipBug::None => "pbzip".to_string(),
            PbzipBug::QueueFreeOrder => "pbzip-order".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        WorldConfig::default().with_file("/in/data", self.input_bytes())
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        let expected = self.expected_checksum();
        Box::new(move |ctx| {
            let workers: Vec<ThreadId> = (0..cfg.workers)
                .map(|i| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("compress{i}"), move |ctx| {
                        let fd = ctx.sys_open("/in/data");
                        compressor_body(ctx, &cfg, rs, fd);
                        ctx.sys_close(fd);
                    })
                })
                .collect();
            // Producer: enqueue block ids.
            for b in 0..u64::from(cfg.blocks) {
                ctx.send(rs.queue, b);
            }
            ctx.chan_close(rs.queue);

            // Wait for completion via the counter (this is the PBZip2
            // pattern: the main thread does NOT join before teardown).
            ctx.lock(rs.done_lock);
            while ctx.read(rs.done) < u64::from(cfg.blocks) {
                ctx.cond_wait(rs.done_cond, rs.done_lock);
            }
            ctx.unlock(rs.done_lock);

            // Tear the queue down.
            ctx.write(rs.queue_alive, 0);

            for w in workers {
                ctx.join(w);
            }
            let sum = ctx.read(rs.checksum);
            ctx.check(sum == expected, "archive checksum mismatch");
            let stat = ctx.read(rs.queue_stat);
            ctx.check(
                stat == u64::from(cfg.blocks),
                "queue bookkeeping lost a block",
            );
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails, run_seed};

    #[test]
    fn bug_free_compressor_completes_under_many_schedules() {
        never_fails(
            || {
                Pbzip::new(PbzipConfig {
                    bug: PbzipBug::None,
                    ..PbzipConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn queue_teardown_bug_manifests_under_some_schedule() {
        fails_for_some_seed_t(
            || Pbzip::new(PbzipConfig::default()),
            600,
            "assert:compressor touched freed work queue",
        );
    }

    #[test]
    fn compressed_output_reaches_disk() {
        let prog = Pbzip::new(PbzipConfig {
            bug: PbzipBug::None,
            ..PbzipConfig::default()
        });
        let body = prog.root();
        let out = pres_tvm::vm::run(
            pres_tvm::vm::VmConfig {
                world: prog.world(),
                ..Default::default()
            },
            prog.resources(),
            &mut RandomScheduler::new(5),
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
        let archive = out.files.get("/out/archive.bz2").expect("archive written");
        assert_eq!(archive.len(), 9 * 8);
        let _ = run_seed(&prog, 0);
    }
}
