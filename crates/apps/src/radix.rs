//! `radix` — a SPLASH-2-style parallel radix sort (rank phase).
//!
//! Structure: each worker computes a local histogram of its key partition
//! into its own row of a shared histogram matrix, publishes it, and then
//! every worker reads *all* rows to compute the global rank prefix for its
//! digit range. The publish/consume boundary is a barrier in the correct
//! kernel.
//!
//! Seeded bug — [`RadixBug::RankOrder`]: the barrier between histogram
//! publication and rank computation is missing, so a fast worker can sum
//! rows its peers have not written yet, producing short ranks. Class:
//! order violation.

use crate::util::FUNC_PHASE;
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadixBug {
    /// Barrier between publish and rank.
    None,
    /// Missing publish barrier.
    RankOrder,
}

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct RadixConfig {
    /// Worker threads.
    pub workers: u32,
    /// Radix buckets (digits).
    pub buckets: u32,
    /// Keys per worker.
    pub keys: u32,
    /// Virtual compute units per key.
    pub work_per_key: u64,
    /// Active bug.
    pub bug: RadixBug,
}

impl Default for RadixConfig {
    fn default() -> Self {
        RadixConfig {
            workers: 4,
            buckets: 4,
            keys: 8,
            work_per_key: 20,
            bug: RadixBug::RankOrder,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    /// Histogram matrix, `workers * buckets`, row-major by worker.
    hist0: VarId,
    /// Global ranks per worker (disjoint outputs).
    rank0: VarId,
    publish_barrier: BarrierId,
}

/// The radix-sort kernel program.
#[derive(Debug, Clone)]
pub struct Radix {
    cfg: RadixConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Radix {
    /// Builds the kernel with the given configuration.
    pub fn new(cfg: RadixConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            hist0: spec.var_array("hist", cfg.workers * cfg.buckets, 0),
            rank0: spec.var_array("rank", cfg.workers, 0),
            publish_barrier: spec.barrier("publish", cfg.workers),
        };
        Radix { cfg, spec, rs }
    }

    /// The key stream of worker `w` (deterministic).
    fn key(cfg: &RadixConfig, w: u32, i: u32) -> u32 {
        (w * 7 + i * 13 + 3) % cfg.buckets
    }

    /// Expected total across the full histogram.
    fn expected_total(cfg: &RadixConfig) -> u64 {
        u64::from(cfg.workers) * u64::from(cfg.keys)
    }
}

fn worker_body(ctx: &mut Ctx, cfg: &RadixConfig, rs: Resources, w: u32) {
    // Phase 1: local histogram into this worker's own row.
    ctx.func(FUNC_PHASE);
    ctx.bb(110);
    for i in 0..cfg.keys {
        ctx.compute(cfg.work_per_key);
        let bucket = Radix::key(cfg, w, i);
        let cell = VarId(rs.hist0.0 + w * cfg.buckets + bucket);
        let v = ctx.read(cell);
        ctx.write(cell, v + 1);
    }

    if cfg.bug == RadixBug::None {
        ctx.barrier_wait(rs.publish_barrier);
    }
    // BUG: without the barrier the rank sum below can read unpublished
    // histogram rows.

    // Local post-processing (sorting the worker's own bucket list) gives
    // stragglers time; only an unlucky preemption exposes the race.
    for _ in 0..8 {
        ctx.compute(cfg.work_per_key);
        ctx.bb(112);
    }

    // Phase 2: global rank — sum every worker's row.
    ctx.func(FUNC_PHASE);
    ctx.bb(111);
    let mut total = 0u64;
    for other in 0..cfg.workers {
        for b in 0..cfg.buckets {
            total += ctx.read(VarId(rs.hist0.0 + other * cfg.buckets + b));
        }
        ctx.compute(cfg.work_per_key);
    }
    ctx.write(VarId(rs.rank0.0 + w), total);
    ctx.check(
        total == Radix::expected_total(cfg),
        "rank computed from unpublished histograms",
    );
}

impl Program for Radix {
    fn name(&self) -> String {
        match self.cfg.bug {
            RadixBug::None => "radix".to_string(),
            RadixBug::RankOrder => "radix-rank-order".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        WorldConfig::default()
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        Box::new(move |ctx| {
            let workers: Vec<ThreadId> = (0..cfg.workers)
                .map(|w| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("radix{w}"), move |ctx| {
                        worker_body(ctx, &cfg, rs, w)
                    })
                })
                .collect();
            for t in workers {
                ctx.join(t);
            }
            for w in 0..cfg.workers {
                let r = ctx.read(VarId(rs.rank0.0 + w));
                ctx.check(r == Radix::expected_total(&cfg), "final ranks inconsistent");
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails};

    #[test]
    fn barriered_sort_completes_under_many_schedules() {
        never_fails(
            || {
                Radix::new(RadixConfig {
                    bug: RadixBug::None,
                    ..RadixConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn missing_publish_barrier_manifests_under_some_schedule() {
        fails_for_some_seed_t(
            || Radix::new(RadixConfig::default()),
            500,
            "assert:rank computed from unpublished histograms",
        );
    }
}
