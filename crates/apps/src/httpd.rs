//! `httpd` — an Apache-style multi-threaded web server.
//!
//! Structure (a faithful miniature of the worker-MPM path): the main thread
//! accepts connections and dispatches them to a pool of worker threads over
//! a channel; workers parse the request line, serve either a cached object
//! or a file from the simulated filesystem, append an access-log record to
//! a shared in-memory log buffer (flushed to disk at shutdown), and manage
//! a reference-counted cached object.
//!
//! Seeded bugs:
//!
//! * [`HttpdBug::LogAtomicity`] — modeled after **Apache #25520**: the
//!   buffered-log append reads the buffer length and then writes the
//!   record in a separate step. Two workers interleaving in that window
//!   corrupt the log (records land at different offsets than reserved).
//!   Class: single-variable atomicity violation.
//! * [`HttpdBug::RefcountOrder`] — modeled after **Apache #21287**: a
//!   worker drops its reference on the cached object *before* its last
//!   use. If the other worker's drop lands in between and frees the
//!   object, the late use hits freed memory. Class: order violation.

use crate::util::{parse_path, FUNC_HANDLE, FUNC_LOG, FUNC_SERVE};
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpdBug {
    /// No bug: fully synchronized server.
    None,
    /// Apache #25520-style buffered-log atomicity violation.
    LogAtomicity,
    /// Apache #21287-style refcount order violation.
    RefcountOrder,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct HttpdConfig {
    /// Worker-pool size.
    pub workers: u32,
    /// Number of scripted client requests.
    pub requests: u32,
    /// Virtual compute units per request (request handling work).
    pub work_per_request: u64,
    /// Active bug.
    pub bug: HttpdBug,
}

impl Default for HttpdConfig {
    fn default() -> Self {
        HttpdConfig {
            workers: 3,
            requests: 12,
            work_per_request: 120,
            bug: HttpdBug::None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    /// Dispatch channel carrying accepted connection ids.
    dispatch: ChanId,
    /// The shared access-log buffer.
    access_log: BufId,
    /// Protects the access log (held correctly when the bug is off).
    log_lock: LockId,
    /// Cache object: reference count.
    obj_refcount: VarId,
    /// Cache object: freed flag.
    obj_freed: VarId,
    /// Cache object: payload version (regular locked shared state).
    obj_version: VarId,
    /// Protects obj_version.
    obj_lock: LockId,
    /// Served-request counter.
    served: VarId,
}

/// The Apache-style server program.
#[derive(Debug, Clone)]
pub struct Httpd {
    cfg: HttpdConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Httpd {
    /// Builds the server with the given configuration.
    pub fn new(cfg: HttpdConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            dispatch: spec.chan("dispatch"),
            access_log: spec.buf("access_log"),
            log_lock: spec.lock("log_lock"),
            obj_refcount: spec.var("obj_refcount", 0),
            obj_freed: spec.var("obj_freed", 0),
            obj_version: spec.var("obj_version", 0),
            obj_lock: spec.lock("obj_lock"),
            served: spec.var("served", 0),
        };
        Httpd { cfg, spec, rs }
    }
}

/// One fixed-width access-log record: `[reserved_offset:8][conn:4][path:4]`.
const LOG_RECORD: usize = 16;

fn log_record(offset: u64, conn: u32, path: u32) -> Vec<u8> {
    let mut rec = Vec::with_capacity(LOG_RECORD);
    rec.extend_from_slice(&offset.to_be_bytes());
    rec.extend_from_slice(&conn.to_be_bytes());
    rec.extend_from_slice(&path.to_be_bytes());
    rec
}

fn worker_body(ctx: &mut Ctx, cfg: &HttpdConfig, rs: Resources) {
    while let Some(conn_raw) = ctx.recv(rs.dispatch) {
        ctx.func(FUNC_HANDLE);
        let conn = ConnId(conn_raw as u32);
        let request = ctx.sys_recv(conn, 128).unwrap_or_default();
        let path = parse_path(&request);
        ctx.bb(10);

        // Serve: cached object for /obj, filesystem otherwise.
        ctx.func(FUNC_SERVE);
        if path == 1 {
            // Acquire a reference to the cached object.
            if cfg.bug == HttpdBug::RefcountOrder {
                // BUG (Apache #21287 pattern): the reference is dropped
                // *before* the final use of the object.
                ctx.bb(11);
                let prev = ctx.fetch_add(rs.obj_refcount, -1);
                if prev == 1 {
                    // Last reference: free the object and take the fast
                    // path out (the freeing thread itself is done).
                    ctx.write(rs.obj_freed, 1);
                } else {
                    ctx.compute(cfg.work_per_request / 4);
                    // Late use of the (possibly freed) object: if the final
                    // drop landed inside our window, this is a use after
                    // free.
                    let freed = ctx.read(rs.obj_freed);
                    ctx.check(freed == 0, "use-after-free of cached object");
                    ctx.with_lock(rs.obj_lock, |ctx| {
                        let v = ctx.read(rs.obj_version);
                        ctx.write(rs.obj_version, v);
                    });
                }
            } else {
                // Correct: use, then drop.
                ctx.bb(12);
                ctx.with_lock(rs.obj_lock, |ctx| {
                    let v = ctx.read(rs.obj_version);
                    ctx.write(rs.obj_version, v);
                });
                let freed = ctx.read(rs.obj_freed);
                ctx.check(freed == 0, "use-after-free of cached object");
                let prev = ctx.fetch_add(rs.obj_refcount, -1);
                if prev == 1 {
                    ctx.write(rs.obj_freed, 1);
                }
            }
        } else {
            ctx.bb(13);
            let fd = ctx.sys_open(&format!("/www/page{}", path % 3));
            let body = ctx.sys_read(fd, 64);
            ctx.sys_close(fd);
            ctx.compute(body.len() as u64);
        }
        // Heterogeneous handling (templating, compression …) keeps the
        // worker pool out of lockstep: the number of instrumentation
        // points varies per request.
        let pieces = 3 + (path + conn_raw as u32) % 5;
        for piece in 0..pieces {
            ctx.bb(17 + piece);
            ctx.compute(cfg.work_per_request / u64::from(pieces));
        }

        // Respond.
        ctx.sys_send(conn, format!("200 path={path}").as_bytes());
        ctx.sys_net_close(conn);

        // Access logging.
        ctx.func(FUNC_LOG);
        match cfg.bug {
            // BUG (Apache #25520 pattern): the "fast" logging path taken
            // for static-file responses reads the buffer length and
            // appends in two steps, without the log lock.
            HttpdBug::LogAtomicity if path % 4 == 2 => {
                ctx.bb(14);
                let offset = ctx.buf_len(rs.access_log) as u64;
                ctx.buf_append(rs.access_log, &log_record(offset, conn_raw as u32, path));
            }
            _ => {
                ctx.bb(15);
                ctx.with_lock(rs.log_lock, |ctx| {
                    let offset = ctx.buf_len(rs.access_log) as u64;
                    ctx.buf_append(rs.access_log, &log_record(offset, conn_raw as u32, path));
                });
            }
        }
        ctx.fetch_add(rs.served, 1);
        ctx.bb(16);
    }
}

fn validate(ctx: &mut Ctx, cfg: &HttpdConfig, rs: Resources) {
    // Log integrity: every record must sit at the offset it reserved.
    let log = ctx.buf_read(rs.access_log);
    ctx.check(
        log.len().is_multiple_of(LOG_RECORD),
        "access log corrupted: partial record",
    );
    for (i, rec) in log.chunks(LOG_RECORD).enumerate() {
        let reserved = u64::from_be_bytes(rec[0..8].try_into().expect("record width"));
        let actual = (i * LOG_RECORD) as u64;
        ctx.check(
            reserved == actual,
            "access log corrupted: record landed at wrong offset",
        );
    }
    let served = ctx.read(rs.served);
    ctx.check(
        served == u64::from(cfg.requests),
        "not every request was served",
    );
}

impl Program for Httpd {
    fn name(&self) -> String {
        match self.cfg.bug {
            HttpdBug::None => "httpd".to_string(),
            HttpdBug::LogAtomicity => "httpd-log-atomicity".to_string(),
            HttpdBug::RefcountOrder => "httpd-refcount-order".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        let mut world = WorldConfig::default()
            .with_file("/www/page0", b"<html>index</html>".to_vec())
            .with_file("/www/page1", b"<html>about</html>".to_vec())
            .with_file("/www/page2", b"<html>news</html>".to_vec());
        for i in 0..self.cfg.requests {
            // The refcount bug needs requests for /obj (path id 1); mix
            // object hits with plain file requests.
            let path = if self.cfg.bug == HttpdBug::RefcountOrder {
                1
            } else {
                i % 4
            };
            world = world.with_session(Session::new(
                u64::from(i) * 6,
                format!("GET /{path}").into_bytes(),
            ));
        }
        world.input_seed = 0x9e37_79b9u64.wrapping_mul(u64::from(self.cfg.requests) + 1);
        world
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        Box::new(move |ctx| {
            // The cached object starts with one reference per request that
            // will touch it.
            let obj_requests = if cfg.bug == HttpdBug::RefcountOrder {
                u64::from(cfg.requests)
            } else {
                // Exactly the requests whose path id is 1 (i % 4 == 1).
                (0..cfg.requests).filter(|i| i % 4 == 1).count() as u64
            };
            ctx.write(rs.obj_refcount, obj_requests);

            let workers: Vec<ThreadId> = (0..cfg.workers)
                .map(|i| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("worker{i}"), move |ctx| {
                        worker_body(ctx, &cfg, rs);
                    })
                })
                .collect();

            // Accept loop: dispatch connections to the pool.
            while let Some(conn) = ctx.sys_accept() {
                ctx.send(rs.dispatch, u64::from(conn.0));
            }
            ctx.chan_close(rs.dispatch);
            for w in workers {
                ctx.join(w);
            }

            // Flush the access log to disk and validate.
            let log = ctx.buf_read(rs.access_log);
            let fd = ctx.sys_open("/var/log/access.log");
            ctx.sys_write(fd, &log);
            ctx.sys_close(fd);
            validate(ctx, &cfg, rs);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails};

    #[test]
    fn bug_free_server_completes_under_many_schedules() {
        never_fails(
            || Httpd::new(HttpdConfig::default()),
            40,
        );
    }

    #[test]
    fn log_atomicity_bug_manifests_under_some_schedule() {
        fails_for_some_seed_t(
            || {
                Httpd::new(HttpdConfig {
                    bug: HttpdBug::LogAtomicity,
                    ..HttpdConfig::default()
                })
            },
            400,
            "assert:access log corrupted: record landed at wrong offset",
        );
    }

    #[test]
    fn refcount_order_bug_manifests_under_some_schedule() {
        fails_for_some_seed_t(
            || {
                Httpd::new(HttpdConfig {
                    bug: HttpdBug::RefcountOrder,
                    workers: 3,
                    requests: 8,
                    ..HttpdConfig::default()
                })
            },
            400,
            "assert:use-after-free of cached object",
        );
    }

    #[test]
    fn responses_match_requests() {
        let prog = Httpd::new(HttpdConfig::default());
        let run = pres_core::recorder::run_traced(
            &prog,
            &pres_tvm::vm::VmConfig::default(),
            3,
        );
        assert_eq!(run.status, RunStatus::Completed, "{}", run.status);
        assert_eq!(run.conn_outputs.len(), 12);
        for out in &run.conn_outputs {
            assert!(out.starts_with(b"200 "), "{:?}", out);
        }
        // The access log reached disk.
        assert!(run.files.contains_key("/var/log/access.log"));
        assert_eq!(
            run.files["/var/log/access.log"].len(),
            12 * super::LOG_RECORD
        );
    }
}
