//! The machine-readable corpus index: 11 applications, 13 bugs.
//!
//! This is the source of truth the benchmark harness iterates over — the
//! reproduction of the paper's Table 1 (applications) and Table 2 (bugs).

use crate::aget::{Aget, AgetBug, AgetConfig};
use crate::barnes::{Barnes, BarnesBug, BarnesConfig};
use crate::browser::{Browser, BrowserBug, BrowserConfig};
use crate::cherokee::{Cherokee, CherokeeBug, CherokeeConfig};
use crate::fft::{Fft, FftBug, FftConfig};
use crate::httpd::{Httpd, HttpdBug, HttpdConfig};
use crate::ldapd::{Ldapd, LdapdBug, LdapdConfig};
use crate::lu::{Lu, LuBug, LuConfig};
use crate::pbzip::{Pbzip, PbzipBug, PbzipConfig};
use crate::radix::{Radix, RadixBug, RadixConfig};
use crate::sqld::{Sqld, SqldBug, SqldConfig};
use pres_core::program::Program;

/// Application category, as grouped in the paper ("4 servers, 3
/// desktop/client applications, and 4 scientific/graphics applications").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppCategory {
    /// Server applications.
    Server,
    /// Desktop / client applications.
    Desktop,
    /// Scientific / graphics kernels.
    Scientific,
}

impl AppCategory {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            AppCategory::Server => "server",
            AppCategory::Desktop => "desktop/client",
            AppCategory::Scientific => "scientific",
        }
    }
}

/// Bug class, per the paper's taxonomy ("atomicity violations, order
/// violations and deadlocks").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugClass {
    /// Single-variable atomicity violation.
    Atomicity,
    /// Multi-variable atomicity violation.
    AtomicityMultiVar,
    /// Order violation.
    Order,
    /// Deadlock.
    Deadlock,
}

impl BugClass {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BugClass::Atomicity => "atomicity",
            BugClass::AtomicityMultiVar => "atomicity (multi-var)",
            BugClass::Order => "order",
            BugClass::Deadlock => "deadlock",
        }
    }
}

/// One of the 13 evaluated bugs.
#[derive(Debug, Clone, Copy)]
pub struct BugCase {
    /// Stable identifier (matches DESIGN.md §3.3).
    pub id: &'static str,
    /// Hosting application.
    pub app: &'static str,
    /// Category of the hosting application.
    pub category: AppCategory,
    /// Bug class.
    pub class: BugClass,
    /// The real-world bug the miniature is modeled after.
    pub modeled_after: &'static str,
    build: fn() -> Box<dyn Program>,
}

impl BugCase {
    /// Instantiates the buggy program with its standard evaluation
    /// parameters.
    pub fn program(&self) -> Box<dyn Program> {
        (self.build)()
    }
}

/// One of the 11 evaluated applications (bug-free build).
#[derive(Debug, Clone, Copy)]
pub struct AppCase {
    /// Application name.
    pub id: &'static str,
    /// Category.
    pub category: AppCategory,
    /// Default thread/worker count.
    pub default_threads: u32,
    build: fn(WorkloadScale, u32) -> Box<dyn Program>,
}

/// Workload sizing for the overhead experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadScale {
    /// Quick (unit tests, smoke benches).
    Small,
    /// The standard evaluation size.
    Standard,
}

impl AppCase {
    /// Instantiates the bug-free workload with its default thread count.
    pub fn workload(&self, scale: WorkloadScale) -> Box<dyn Program> {
        (self.build)(scale, self.default_threads)
    }

    /// Instantiates the workload with an explicit thread count (used by the
    /// scalability experiment, which sizes the program to the machine).
    /// Applications with a fixed thread structure (cherokee's single
    /// worker) ignore the hint.
    pub fn workload_with_threads(&self, scale: WorkloadScale, threads: u32) -> Box<dyn Program> {
        (self.build)(scale, threads.max(1))
    }
}

fn scale(scale: WorkloadScale, small: u32, standard: u32) -> u32 {
    match scale {
        WorkloadScale::Small => small,
        WorkloadScale::Standard => standard,
    }
}

/// The 13 evaluated bugs (paper Table 2 analogue).
pub fn all_bugs() -> Vec<BugCase> {
    vec![
        BugCase {
            id: "httpd-log-atomicity",
            app: "httpd",
            category: AppCategory::Server,
            class: BugClass::Atomicity,
            modeled_after: "Apache #25520 (buffered log corruption)",
            build: || {
                Box::new(Httpd::new(HttpdConfig {
                    bug: HttpdBug::LogAtomicity,
                    ..HttpdConfig::default()
                }))
            },
        },
        BugCase {
            id: "httpd-refcount-order",
            app: "httpd",
            category: AppCategory::Server,
            class: BugClass::Order,
            modeled_after: "Apache #21287 (refcount decrement race)",
            build: || {
                Box::new(Httpd::new(HttpdConfig {
                    bug: HttpdBug::RefcountOrder,
                    requests: 8,
                    ..HttpdConfig::default()
                }))
            },
        },
        BugCase {
            id: "sqld-binlog-atomicity",
            app: "sqld",
            category: AppCategory::Server,
            class: BugClass::AtomicityMultiVar,
            modeled_after: "MySQL #791 (binlog vs. table order)",
            build: || {
                Box::new(Sqld::new(SqldConfig {
                    bug: SqldBug::BinlogAtomicity,
                    ..SqldConfig::default()
                }))
            },
        },
        BugCase {
            id: "sqld-deadlock",
            app: "sqld",
            category: AppCategory::Server,
            class: BugClass::Deadlock,
            modeled_after: "MySQL lock-order inversion (update vs. flush)",
            build: || {
                Box::new(Sqld::new(SqldConfig {
                    bug: SqldBug::Deadlock,
                    ..SqldConfig::default()
                }))
            },
        },
        BugCase {
            id: "cherokee-conn-order",
            app: "cherokee",
            category: AppCategory::Server,
            class: BugClass::Order,
            modeled_after: "Cherokee #326 (connection init race)",
            build: || Box::new(Cherokee::new(CherokeeConfig::default())),
        },
        BugCase {
            id: "ldapd-deadlock",
            app: "ldapd",
            category: AppCategory::Server,
            class: BugClass::Deadlock,
            modeled_after: "OpenLDAP ITS #3494 (three-lock cycle)",
            build: || Box::new(Ldapd::new(LdapdConfig::default())),
        },
        BugCase {
            id: "pbzip-order",
            app: "pbzip",
            category: AppCategory::Desktop,
            class: BugClass::Order,
            modeled_after: "PBZip2 queue teardown use-after-free",
            build: || Box::new(Pbzip::new(PbzipConfig::default())),
        },
        BugCase {
            id: "aget-progress-atomicity",
            app: "aget",
            category: AppCategory::Desktop,
            class: BugClass::Atomicity,
            modeled_after: "aget shared bwritten counter race",
            build: || Box::new(Aget::new(AgetConfig::default())),
        },
        BugCase {
            id: "browser-multivar-atomicity",
            app: "browser",
            category: AppCategory::Desktop,
            class: BugClass::AtomicityMultiVar,
            modeled_after: "Mozilla cache count/size race (MUVI corpus)",
            build: || Box::new(Browser::new(BrowserConfig::default())),
        },
        BugCase {
            id: "fft-barrier-order",
            app: "fft",
            category: AppCategory::Scientific,
            class: BugClass::Order,
            modeled_after: "SPLASH-2 FFT missing inter-stage barrier",
            build: || Box::new(Fft::new(FftConfig::default())),
        },
        BugCase {
            id: "lu-reduction-atomicity",
            app: "lu",
            category: AppCategory::Scientific,
            class: BugClass::Atomicity,
            modeled_after: "SPLASH-2 LU racy residual reduction",
            build: || Box::new(Lu::new(LuConfig::default())),
        },
        BugCase {
            id: "barnes-tree-atomicity",
            app: "barnes",
            category: AppCategory::Scientific,
            class: BugClass::Atomicity,
            modeled_after: "SPLASH-2 Barnes tree-insertion race",
            build: || Box::new(Barnes::new(BarnesConfig::default())),
        },
        BugCase {
            id: "radix-rank-order",
            app: "radix",
            category: AppCategory::Scientific,
            class: BugClass::Order,
            modeled_after: "SPLASH-2 Radix missing publish barrier",
            build: || Box::new(Radix::new(RadixConfig::default())),
        },
    ]
}

/// The 11 evaluated applications, bug-free builds (paper Table 1 analogue).
///
/// `work_per_*` values are calibrated so that realistic instruction-stream
/// densities hold (thousands of instruction units between synchronization
/// operations — see the implicit-recording model in `pres-core`).
pub fn all_apps() -> Vec<AppCase> {
    vec![
        AppCase {
            id: "httpd",
            category: AppCategory::Server,
            default_threads: 3,
            build: |s, t| {
                Box::new(Httpd::new(HttpdConfig {
                    bug: HttpdBug::None,
                    workers: t,
                    requests: scale(s, 8, 24),
                    work_per_request: 30_000,
                }))
            },
        },
        AppCase {
            id: "sqld",
            category: AppCategory::Server,
            default_threads: 3,
            build: |s, t| {
                Box::new(Sqld::new(SqldConfig {
                    bug: SqldBug::None,
                    workers: t,
                    txns: scale(s, 8, 24),
                    work_per_txn: 25_000,
                    ..SqldConfig::default()
                }))
            },
        },
        AppCase {
            id: "cherokee",
            category: AppCategory::Server,
            default_threads: 1,
            build: |s, _| {
                Box::new(Cherokee::new(CherokeeConfig {
                    bug: CherokeeBug::None,
                    requests: scale(s, 6, 20),
                    work_per_request: 20_000,
                }))
            },
        },
        AppCase {
            id: "ldapd",
            category: AppCategory::Server,
            default_threads: 3,
            build: |s, t| {
                Box::new(Ldapd::new(LdapdConfig {
                    bug: LdapdBug::None,
                    workers: t,
                    ops: scale(s, 8, 24),
                    work_per_op: 15_000,
                }))
            },
        },
        AppCase {
            id: "pbzip",
            category: AppCategory::Desktop,
            default_threads: 3,
            build: |s, t| {
                Box::new(Pbzip::new(PbzipConfig {
                    bug: PbzipBug::None,
                    workers: t,
                    blocks: scale(s, 6, 18),
                    work_per_block: 40_000,
                    ..PbzipConfig::default()
                }))
            },
        },
        AppCase {
            id: "aget",
            category: AppCategory::Desktop,
            default_threads: 4,
            build: |s, t| {
                Box::new(Aget::new(AgetConfig {
                    bug: AgetBug::None,
                    connections: t,
                    chunks: scale(s, 3, 10),
                    work_per_chunk: 8_000,
                    ..AgetConfig::default()
                }))
            },
        },
        AppCase {
            id: "browser",
            category: AppCategory::Desktop,
            default_threads: 3,
            build: |s, t| {
                Box::new(Browser::new(BrowserConfig {
                    bug: BrowserBug::None,
                    net_threads: t,
                    fetches: scale(s, 4, 12),
                    work_per_fetch: 10_000,
                    ..BrowserConfig::default()
                }))
            },
        },
        AppCase {
            id: "fft",
            category: AppCategory::Scientific,
            default_threads: 4,
            build: |s, t| {
                Box::new(Fft::new(FftConfig {
                    bug: FftBug::None,
                    workers: t,
                    points: scale(s, 4, 16),
                    work_per_point: 10_000,
                }))
            },
        },
        AppCase {
            id: "lu",
            category: AppCategory::Scientific,
            default_threads: 4,
            build: |s, t| {
                Box::new(Lu::new(LuConfig {
                    bug: LuBug::None,
                    workers: t,
                    blocks_per_step: scale(s, 4, 12),
                    work_per_block: 4_000,
                    ..LuConfig::default()
                }))
            },
        },
        AppCase {
            id: "barnes",
            category: AppCategory::Scientific,
            default_threads: 4,
            build: |s, t| {
                Box::new(Barnes::new(BarnesConfig {
                    bug: BarnesBug::None,
                    workers: t,
                    particles: scale(s, 3, 8),
                    nodes: t.max(2),
                    work_per_insert: 25_000,
                }))
            },
        },
        AppCase {
            id: "radix",
            category: AppCategory::Scientific,
            default_threads: 4,
            build: |s, t| {
                Box::new(Radix::new(RadixConfig {
                    bug: RadixBug::None,
                    workers: t,
                    keys: scale(s, 6, 20),
                    work_per_key: 6_000,
                    ..RadixConfig::default()
                }))
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_seed;
    use pres_tvm::error::RunStatus;

    #[test]
    fn corpus_has_eleven_apps_and_thirteen_bugs() {
        assert_eq!(all_apps().len(), 11);
        assert_eq!(all_bugs().len(), 13);
    }

    #[test]
    fn category_split_matches_the_paper() {
        let apps = all_apps();
        let count = |c: AppCategory| apps.iter().filter(|a| a.category == c).count();
        assert_eq!(count(AppCategory::Server), 4);
        assert_eq!(count(AppCategory::Desktop), 3);
        assert_eq!(count(AppCategory::Scientific), 4);
    }

    #[test]
    fn bug_class_split_covers_the_taxonomy() {
        let bugs = all_bugs();
        let count = |c: BugClass| bugs.iter().filter(|b| b.class == c).count();
        assert_eq!(count(BugClass::Deadlock), 2);
        assert!(count(BugClass::Order) >= 4);
        assert!(count(BugClass::Atomicity) >= 4);
        assert_eq!(count(BugClass::AtomicityMultiVar), 2);
    }

    #[test]
    fn bug_ids_are_unique_and_programs_carry_them() {
        let bugs = all_bugs();
        let mut ids: Vec<&str> = bugs.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13);
        for bug in &bugs {
            assert_eq!(bug.program().name(), bug.id);
        }
    }

    #[test]
    fn every_bugfree_workload_completes() {
        for app in all_apps() {
            let prog = app.workload(WorkloadScale::Small);
            assert_eq!(prog.name(), app.id);
            let status = run_seed(prog.as_ref(), 1);
            assert_eq!(status, RunStatus::Completed, "{}: {status}", app.id);
        }
    }
}
