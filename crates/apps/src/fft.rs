//! `fft` — a SPLASH-2-style staged FFT kernel.
//!
//! Structure: the six-step FFT of SPLASH-2 alternates local butterfly
//! computation with an all-to-all transpose; correctness depends on a
//! barrier between writing one's own partition and reading everyone
//! else's. Each worker owns a contiguous partition of the (shared) signal
//! array: stage 1 writes the partition, the barrier ends the stage, stage
//! 2 (the transpose) reads the *partner's* partition and accumulates.
//!
//! Seeded bug — [`FftBug::BarrierOrder`]: the inter-stage barrier is
//! missing, so a fast worker's transpose can read partition elements its
//! partner has not written yet. Class: order violation.

use crate::util::FUNC_PHASE;
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftBug {
    /// Barrier between stages.
    None,
    /// Missing inter-stage barrier.
    BarrierOrder,
}

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct FftConfig {
    /// Worker threads (partitions).
    pub workers: u32,
    /// Elements per partition.
    pub points: u32,
    /// Virtual compute units per butterfly.
    pub work_per_point: u64,
    /// Active bug.
    pub bug: FftBug,
}

impl Default for FftConfig {
    fn default() -> Self {
        FftConfig {
            workers: 4,
            points: 6,
            work_per_point: 30,
            bug: FftBug::BarrierOrder,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    /// The signal array, `workers * points` elements, initialized to 0.
    signal0: VarId,
    stage_barrier: BarrierId,
    /// Per-worker transpose accumulators (disjoint).
    accum0: VarId,
}

/// The FFT kernel program.
#[derive(Debug, Clone)]
pub struct Fft {
    cfg: FftConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Fft {
    /// Builds the kernel with the given configuration.
    pub fn new(cfg: FftConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            signal0: spec.var_array("signal", cfg.workers * cfg.points, 0),
            stage_barrier: spec.barrier("stage", cfg.workers),
            accum0: spec.var_array("accum", cfg.workers, 0),
        };
        Fft { cfg, spec, rs }
    }

    /// The stage-1 value of element `i` of worker `w` (never zero).
    fn element(w: u32, i: u32) -> u64 {
        u64::from(w + 1) * 1000 + u64::from(i) + 1
    }

    /// The transpose sum each worker must observe from its partner.
    fn expected_accum(cfg: &FftConfig, partner: u32) -> u64 {
        (0..cfg.points).map(|i| Self::element(partner, i)).sum()
    }
}

fn worker_body(ctx: &mut Ctx, cfg: &FftConfig, rs: Resources, w: u32) {
    // Stage 1: butterfly computation over the worker's own partition.
    ctx.func(FUNC_PHASE);
    ctx.bb(80);
    for i in 0..cfg.points {
        ctx.compute(cfg.work_per_point);
        let idx = VarId(rs.signal0.0 + w * cfg.points + i);
        ctx.write(idx, Fft::element(w, i));
    }

    if cfg.bug == FftBug::None {
        ctx.barrier_wait(rs.stage_barrier);
    }
    // BUG: without the barrier, the transpose below can run ahead of the
    // partner's stage-1 writes.

    // Stage 2: transpose — read the partner's partition.
    ctx.func(FUNC_PHASE);
    ctx.bb(81);
    let partner = (w + 1) % cfg.workers;
    let mut sum = 0u64;
    for i in 0..cfg.points {
        let idx = VarId(rs.signal0.0 + partner * cfg.points + i);
        sum += ctx.read(idx);
        ctx.compute(cfg.work_per_point / 2);
    }
    ctx.write(VarId(rs.accum0.0 + w), sum);
    ctx.check(
        sum == Fft::expected_accum(cfg, partner),
        "transpose read a stale stage-1 partition",
    );
}

impl Program for Fft {
    fn name(&self) -> String {
        match self.cfg.bug {
            FftBug::None => "fft".to_string(),
            FftBug::BarrierOrder => "fft-barrier-order".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        WorldConfig::default()
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        Box::new(move |ctx| {
            let workers: Vec<ThreadId> = (0..cfg.workers)
                .map(|w| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("fft{w}"), move |ctx| worker_body(ctx, &cfg, rs, w))
                })
                .collect();
            for t in workers {
                ctx.join(t);
            }
            // Global validation: all accumulators correct.
            for w in 0..cfg.workers {
                let a = ctx.read(VarId(rs.accum0.0 + w));
                let partner = (w + 1) % cfg.workers;
                ctx.check(
                    a == Fft::expected_accum(&cfg, partner),
                    "final transform inconsistent",
                );
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails};

    #[test]
    fn barriered_kernel_completes_under_many_schedules() {
        never_fails(
            || {
                Fft::new(FftConfig {
                    bug: FftBug::None,
                    ..FftConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn missing_barrier_manifests_under_some_schedule() {
        fails_for_some_seed_t(
            || Fft::new(FftConfig::default()),
            500,
            "assert:transpose read a stale stage-1 partition",
        );
    }
}
