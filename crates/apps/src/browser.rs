//! `browser` — a Mozilla-style client with a shared document cache.
//!
//! Structure: the extract mirrors Mozilla's network cache as exercised by
//! its UI: several network threads fetch documents and insert them into a
//! shared cache whose bookkeeping spans *two correlated variables* — the
//! entry count and the total cached size — while the UI thread
//! periodically inspects the cache to drive eviction decisions and its
//! "cache statistics" page.
//!
//! Seeded bug — [`BrowserBug::MultiVarAtomicity`], modeled after the
//! Mozilla multi-variable cache races reported in the MUVI study (the same
//! group's earlier work, which PRES draws its Mozilla bugs from): the
//! insert path updates `count` and `size` without holding the cache lock,
//! so a reader serializing the statistics can observe `count` already
//! advanced but `size` not yet — the correlated invariant is broken.
//! Class: multi-variable atomicity violation.

use crate::util::{FUNC_CACHE_EVICT, FUNC_CACHE_INSERT};
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrowserBug {
    /// Inserts hold the cache lock across both updates.
    None,
    /// Inserts update the correlated pair without the lock.
    MultiVarAtomicity,
}

/// Browser configuration.
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// Network (fetch) threads.
    pub net_threads: u32,
    /// Documents fetched per network thread.
    pub fetches: u32,
    /// Bytes accounted per cached document.
    pub doc_size: u64,
    /// UI statistics inspections.
    pub ui_checks: u32,
    /// Virtual compute units per fetch (parse, layout…).
    pub work_per_fetch: u64,
    /// Active bug.
    pub bug: BrowserBug,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            net_threads: 3,
            fetches: 6,
            doc_size: 10,
            ui_checks: 12,
            work_per_fetch: 70,
            bug: BrowserBug::MultiVarAtomicity,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    cache_lock: LockId,
    /// Correlated pair: entry count and total size.
    count: VarId,
    size: VarId,
    /// Regular locked state: the LRU clock hand.
    lru_hand: VarId,
    fetched: VarId,
}

/// The Mozilla-style browser program.
#[derive(Debug, Clone)]
pub struct Browser {
    cfg: BrowserConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Browser {
    /// Builds the browser with the given configuration.
    pub fn new(cfg: BrowserConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            cache_lock: spec.lock("cache_lock"),
            count: spec.var("cache_count", 0),
            size: spec.var("cache_size", 0),
            lru_hand: spec.var("lru_hand", 0),
            fetched: spec.var("fetched", 0),
        };
        Browser { cfg, spec, rs }
    }
}

fn net_body(ctx: &mut Ctx, cfg: &BrowserConfig, rs: Resources, idx: u32) {
    for f in 0..cfg.fetches {
        // "Fetch": read a document from the simulated filesystem.
        let fd = ctx.sys_open(&format!("/docs/site{}", (idx + f) % 3));
        let _doc = ctx.sys_read(fd, 32);
        ctx.sys_close(fd);
        // Parse/layout cost varies per document.
        let pieces = 2 + (idx + 3 * f) % 6;
        for piece in 0..pieces {
            ctx.bb(74 + piece);
            ctx.compute(cfg.work_per_fetch / u64::from(pieces));
        }

        ctx.func(FUNC_CACHE_INSERT);
        let revalidation = (idx + 2 * f).is_multiple_of(6);
        match cfg.bug {
            BrowserBug::MultiVarAtomicity if revalidation => {
                // BUG: each variable is updated atomically, but the *pair*
                // is not — a reader between the two updates observes the
                // correlated invariant broken (the MUVI multi-variable
                // pattern).
                ctx.bb(70);
                ctx.fetch_add(rs.count, 1);
                ctx.fetch_add(rs.size, cfg.doc_size as i64);
            }
            _ => {
                ctx.bb(71);
                ctx.with_lock(rs.cache_lock, |ctx| {
                    let c = ctx.read(rs.count);
                    ctx.write(rs.count, c + 1);
                    let s = ctx.read(rs.size);
                    ctx.write(rs.size, s + cfg.doc_size);
                });
            }
        }
        // Properly locked LRU maintenance either way.
        ctx.with_lock(rs.cache_lock, |ctx| {
            let h = ctx.read(rs.lru_hand);
            ctx.write(rs.lru_hand, (h + 1) % 8);
        });
        ctx.fetch_add(rs.fetched, 1);
    }
}

fn ui_body(ctx: &mut Ctx, cfg: &BrowserConfig, rs: Resources) {
    for _ in 0..cfg.ui_checks {
        ctx.func(FUNC_CACHE_EVICT);
        ctx.bb(72);
        // The UI reads the statistics under the cache lock (it is the
        // insert path that is buggy, exactly as in the Mozilla reports).
        let (c, s) = ctx.with_lock(rs.cache_lock, |ctx| {
            let c = ctx.read(rs.count);
            let s = ctx.read(rs.size);
            (c, s)
        });
        ctx.check(
            s == c * cfg.doc_size,
            "cache statistics inconsistent (count/size split)",
        );
        ctx.compute(cfg.work_per_fetch / 2);
    }
}

impl Program for Browser {
    fn name(&self) -> String {
        match self.cfg.bug {
            BrowserBug::None => "browser".to_string(),
            BrowserBug::MultiVarAtomicity => "browser-multivar-atomicity".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        WorldConfig::default()
            .with_file("/docs/site0", vec![b'a'; 32])
            .with_file("/docs/site1", vec![b'b'; 32])
            .with_file("/docs/site2", vec![b'c'; 32])
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        Box::new(move |ctx| {
            let ui = {
                let cfg = cfg.clone();
                ctx.spawn("ui", move |ctx| ui_body(ctx, &cfg, rs))
            };
            let nets: Vec<ThreadId> = (0..cfg.net_threads)
                .map(|i| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("net{i}"), move |ctx| net_body(ctx, &cfg, rs, i))
                })
                .collect();
            for t in nets {
                ctx.join(t);
            }
            ctx.join(ui);
            let fetched = ctx.read(rs.fetched);
            let expected = u64::from(cfg.net_threads) * u64::from(cfg.fetches);
            ctx.check(fetched == expected, "fetches were lost");
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails};

    #[test]
    fn bug_free_browser_completes_under_many_schedules() {
        never_fails(
            || {
                Browser::new(BrowserConfig {
                    bug: BrowserBug::None,
                    ..BrowserConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn multivar_split_is_observed_under_some_schedule() {
        fails_for_some_seed_t(
            || Browser::new(BrowserConfig::default()),
            500,
            "assert:cache statistics inconsistent (count/size split)",
        );
    }
}
