//! # pres-apps — the evaluation application corpus
//!
//! Faithful miniatures of the eleven applications (4 servers, 3
//! desktop/client, 4 scientific) and thirteen real-world-style concurrency
//! bugs the paper evaluates PRES on. Each application is a
//! [`pres_core::program::Program`]: a realistic multi-threaded workload
//! over the `pres-tvm` instrumented API with an optional seeded bug whose
//! manifestation is interleaving-dependent and self-validating (the
//! program `check`s its own invariants, so a manifested bug surfaces as an
//! assertion, crash, or deadlock).
//!
//! See `DESIGN.md` §3.3 for the bug-by-bug provenance table and
//! [`registry`] for the machine-readable index used by the benchmarks.

pub mod fft;
pub mod httpd;
pub mod lu;
pub mod aget;
pub mod browser;
pub mod barnes;
pub mod cherokee;
pub mod ldapd;
pub mod pbzip;
pub mod radix;
pub mod registry;
pub mod sqld;
pub mod testutil;
pub mod util;

pub use registry::{all_apps, all_bugs, AppCase, AppCategory, BugCase, BugClass, WorkloadScale};
