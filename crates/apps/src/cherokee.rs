//! `cherokee` — a lightweight single-worker web server.
//!
//! Structure: Cherokee's event-loop architecture dispatches accepted
//! connections to a worker through a shared one-slot connection descriptor
//! (the miniature of its connection-reuse table). The acceptor publishes
//! the descriptor fields, then signals the worker through a
//! condition-variable handshake; the worker consumes the descriptor,
//! serves the request, and acknowledges the slot back to the acceptor.
//!
//! Seeded bug — [`CherokeeBug::ConnOrder`], modeled after Cherokee's
//! connection-initialization race (bug #326 class): the acceptor signals
//! the worker *before* the descriptor field is fully initialized. Most of
//! the time the acceptor wins the race anyway and nothing happens; under
//! the wrong interleaving the worker reads a stale descriptor. Class:
//! order violation.

use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CherokeeBug {
    /// Correct publish-then-signal ordering.
    None,
    /// Signal-before-publish order violation.
    ConnOrder,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct CherokeeConfig {
    /// Scripted client requests.
    pub requests: u32,
    /// Virtual compute units per request.
    pub work_per_request: u64,
    /// Active bug.
    pub bug: CherokeeBug,
}

impl Default for CherokeeConfig {
    fn default() -> Self {
        CherokeeConfig {
            requests: 10,
            work_per_request: 60,
            bug: CherokeeBug::ConnOrder,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    slot_lock: LockId,
    slot_ready: CondId,
    slot_free: CondId,
    /// 0 = empty; otherwise `conn_id + 1` of the published descriptor.
    conn_desc: VarId,
    /// Set when the descriptor slot holds an unconsumed connection.
    ready: VarId,
    /// Accept sequence number the descriptor belongs to (validation).
    conn_seq: VarId,
    served: VarId,
    shutdown: VarId,
}

/// The Cherokee-style server program.
#[derive(Debug, Clone)]
pub struct Cherokee {
    cfg: CherokeeConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Cherokee {
    /// Builds the server with the given configuration.
    pub fn new(cfg: CherokeeConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            slot_lock: spec.lock("slot_lock"),
            slot_ready: spec.cond("slot_ready"),
            slot_free: spec.cond("slot_free"),
            conn_desc: spec.var("conn_desc", 0),
            ready: spec.var("ready", 0),
            conn_seq: spec.var("conn_seq", 0),
            served: spec.var("served", 0),
            shutdown: spec.var("shutdown", 0),
        };
        Cherokee { cfg, spec, rs }
    }
}

fn worker_body(ctx: &mut Ctx, cfg: &CherokeeConfig, rs: Resources) {
    let mut n: u64 = 0;
    loop {
        ctx.lock(rs.slot_lock);
        while ctx.read(rs.ready) == 0 && ctx.read(rs.shutdown) == 0 {
            ctx.cond_wait(rs.slot_ready, rs.slot_lock);
        }
        if ctx.read(rs.ready) == 0 {
            // Shutdown with an empty slot.
            ctx.unlock(rs.slot_lock);
            break;
        }
        // Dequeue bookkeeping, then consume the descriptor.
        ctx.bb(32);
        ctx.compute(8);
        let desc = ctx.read(rs.conn_desc);
        let seq = ctx.read(rs.conn_seq);
        ctx.write(rs.ready, 0);
        ctx.notify_one(rs.slot_free);
        ctx.unlock(rs.slot_lock);

        // The descriptor published for accept #n must be conn n.
        ctx.check(
            desc == n + 1 && seq == n,
            "worker consumed an uninitialized connection descriptor",
        );
        let conn = ConnId((desc - 1) as u32);
        let request = ctx.sys_recv(conn, 64).unwrap_or_default();
        ctx.compute(cfg.work_per_request);
        ctx.sys_send(conn, &[b"200 ".as_ref(), &request].concat());
        ctx.sys_net_close(conn);
        ctx.fetch_add(rs.served, 1);
        n += 1;
    }
}

impl Program for Cherokee {
    fn name(&self) -> String {
        match self.cfg.bug {
            CherokeeBug::None => "cherokee".to_string(),
            CherokeeBug::ConnOrder => "cherokee-conn-order".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        let mut world = WorldConfig::default();
        for i in 0..self.cfg.requests {
            world = world.with_session(Session::new(
                u64::from(i) * 2,
                format!("GET /{i}").into_bytes(),
            ));
        }
        world
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        Box::new(move |ctx| {
            let worker = {
                let cfg = cfg.clone();
                ctx.spawn("worker", move |ctx| worker_body(ctx, &cfg, rs))
            };
            let mut seq: u64 = 0;
            while let Some(conn) = ctx.sys_accept() {
                match cfg.bug {
                    CherokeeBug::ConnOrder => {
                        // BUG: the ready flag and wakeup are issued before
                        // the descriptor fields are written; the worker can
                        // observe a half-initialized slot.
                        ctx.bb(30);
                        ctx.lock(rs.slot_lock);
                        while ctx.read(rs.ready) == 1 {
                            ctx.cond_wait(rs.slot_free, rs.slot_lock);
                        }
                        ctx.write(rs.ready, 1);
                        ctx.notify_one(rs.slot_ready);
                        ctx.unlock(rs.slot_lock);
                        // Late initialization, outside the critical section.
                        ctx.write(rs.conn_desc, u64::from(conn.0) + 1);
                        ctx.write(rs.conn_seq, seq);
                    }
                    CherokeeBug::None => {
                        ctx.bb(31);
                        ctx.lock(rs.slot_lock);
                        while ctx.read(rs.ready) == 1 {
                            ctx.cond_wait(rs.slot_free, rs.slot_lock);
                        }
                        ctx.write(rs.conn_desc, u64::from(conn.0) + 1);
                        ctx.write(rs.conn_seq, seq);
                        ctx.write(rs.ready, 1);
                        ctx.notify_one(rs.slot_ready);
                        ctx.unlock(rs.slot_lock);
                    }
                }
                seq += 1;
            }
            // Shutdown: wait until the last descriptor is consumed, then
            // wake the worker with the shutdown flag.
            ctx.lock(rs.slot_lock);
            while ctx.read(rs.ready) == 1 {
                ctx.cond_wait(rs.slot_free, rs.slot_lock);
            }
            ctx.write(rs.shutdown, 1);
            ctx.notify_one(rs.slot_ready);
            ctx.unlock(rs.slot_lock);
            ctx.join(worker);
            let served = ctx.read(rs.served);
            ctx.check(
                served == u64::from(cfg.requests),
                "not every connection was served",
            );
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails, run_seed};

    #[test]
    fn bug_free_server_completes_under_many_schedules() {
        never_fails(
            || {
                Cherokee::new(CherokeeConfig {
                    bug: CherokeeBug::None,
                    ..CherokeeConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn conn_order_bug_manifests_under_some_schedule() {
        fails_for_some_seed_t(
            || Cherokee::new(CherokeeConfig::default()),
            500,
            "assert:worker consumed an uninitialized connection descriptor",
        );
    }

    #[test]
    fn responses_echo_requests() {
        let prog = Cherokee::new(CherokeeConfig {
            bug: CherokeeBug::None,
            requests: 4,
            ..CherokeeConfig::default()
        });
        for seed in 0..20 {
            if run_seed(&prog, seed) == RunStatus::Completed {
                return;
            }
        }
        panic!("no clean run");
    }
}
