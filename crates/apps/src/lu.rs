//! `lu` — a SPLASH-2-style blocked LU factorization kernel.
//!
//! Structure: elimination proceeds in steps; within a step, workers pull
//! block indices from a shared work counter (atomic — the correct dynamic
//! scheduling idiom), reduce their blocks (pure compute plus writes to the
//! block's own elements), and accumulate each block's contribution into a
//! global residual used for the convergence check. Barriers separate
//! elimination steps.
//!
//! Seeded bug — [`LuBug::ReductionAtomicity`]: the global-residual
//! accumulation is a plain read-compute-write instead of an atomic add;
//! concurrent blocks lose contributions and the convergence check fails.
//! Class: single-variable atomicity violation.

use crate::util::FUNC_PHASE;
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuBug {
    /// Atomic residual accumulation.
    None,
    /// Racy residual accumulation.
    ReductionAtomicity,
}

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct LuConfig {
    /// Worker threads.
    pub workers: u32,
    /// Elimination steps.
    pub steps: u32,
    /// Blocks per step.
    pub blocks_per_step: u32,
    /// Virtual compute units per block reduction.
    pub work_per_block: u64,
    /// Active bug.
    pub bug: LuBug,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig {
            workers: 4,
            steps: 2,
            blocks_per_step: 8,
            work_per_block: 60,
            bug: LuBug::ReductionAtomicity,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    /// Next block to claim, one counter per step (overshooting claims at a
    /// step's end must not consume the next step's blocks).
    next_block0: VarId,
    /// Global residual accumulator.
    residual: VarId,
    /// Per-block storage (one representative element per block).
    blocks0: VarId,
    step_barrier: BarrierId,
}

/// The LU kernel program.
#[derive(Debug, Clone)]
pub struct Lu {
    cfg: LuConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Lu {
    /// Builds the kernel with the given configuration.
    pub fn new(cfg: LuConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            next_block0: spec.var_array("next_block", cfg.steps, 0),
            residual: spec.var("residual", 0),
            blocks0: spec.var_array("block", cfg.blocks_per_step, 0),
            step_barrier: spec.barrier("step", cfg.workers),
        };
        Lu { cfg, spec, rs }
    }

    /// The contribution of block `b` in step `s`.
    fn contribution(s: u32, b: u64) -> u64 {
        u64::from(s + 1) * 100 + b + 1
    }

    /// The residual a correct run must produce.
    fn expected_residual(cfg: &LuConfig) -> u64 {
        (0..cfg.steps)
            .flat_map(|s| (0..u64::from(cfg.blocks_per_step)).map(move |b| Self::contribution(s, b)))
            .sum()
    }
}

fn worker_body(ctx: &mut Ctx, cfg: &LuConfig, rs: Resources, _w: u32) {
    for s in 0..cfg.steps {
        ctx.func(FUNC_PHASE);
        let step_counter = VarId(rs.next_block0.0 + s);
        loop {
            // Claim the next block (correct dynamic scheduling).
            let b = ctx.fetch_add(step_counter, 1);
            if b >= u64::from(cfg.blocks_per_step) {
                break;
            }
            ctx.bb(90);
            // Reduce the block: the inner elimination loop dominates the
            // block's lifetime (keeps the racy window at the end narrow).
            // Block cost varies with position in the matrix; the
            // workers drift out of lockstep.
            let inner = 6 + 5 * (b % 3);
            for _ in 0..inner {
                ctx.compute(cfg.work_per_block);
                ctx.bb(93);
            }
            let block_var = VarId(rs.blocks0.0 + b as u32);
            let v = ctx.read(block_var);
            ctx.write(block_var, v + 1);
            let contribution = Lu::contribution(s, b);
            match cfg.bug {
                // BUG: the diagonal-block path still uses the legacy racy
                // accumulation into the global residual.
                LuBug::ReductionAtomicity if b.is_multiple_of(4) => {
                    ctx.bb(91);
                    let r = ctx.read(rs.residual);
                    ctx.write(rs.residual, r + contribution);
                }
                _ => {
                    ctx.bb(92);
                    ctx.fetch_add(rs.residual, contribution as i64);
                }
            }
        }
        ctx.barrier_wait(rs.step_barrier);
    }
}

impl Program for Lu {
    fn name(&self) -> String {
        match self.cfg.bug {
            LuBug::None => "lu".to_string(),
            LuBug::ReductionAtomicity => "lu-reduction-atomicity".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        WorldConfig::default()
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        let expected = Lu::expected_residual(&cfg);
        Box::new(move |ctx| {
            let workers: Vec<ThreadId> = (0..cfg.workers)
                .map(|w| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("lu{w}"), move |ctx| worker_body(ctx, &cfg, rs, w))
                })
                .collect();
            for t in workers {
                ctx.join(t);
            }
            let residual = ctx.read(rs.residual);
            ctx.check(residual == expected, "residual lost a block contribution");
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails};

    #[test]
    fn atomic_reduction_completes_under_many_schedules() {
        never_fails(
            || {
                Lu::new(LuConfig {
                    bug: LuBug::None,
                    ..LuConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn racy_reduction_manifests_under_some_schedule() {
        fails_for_some_seed_t(
            || Lu::new(LuConfig::default()),
            500,
            "assert:residual lost a block contribution",
        );
    }
}
