//! `ldapd` — an OpenLDAP-style directory server.
//!
//! Structure: the directory is partitioned into three subtrees (`ou=users`,
//! `ou=groups`, `ou=acls`), each protected by its own lock. A pool of
//! operation threads serves scripted requests: searches lock one subtree;
//! modifies that span two subtrees (a user change that also updates group
//! membership, a group change that touches ACLs) lock both, and a
//! rebalance/reindex maintenance operation locks ACLs together with users.
//!
//! Seeded bug — [`LdapdBug::Deadlock`], modeled after OpenLDAP's
//! lock-cycle hangs (ITS #3494 class): the three two-lock operations each
//! acquire their pair in a *locally* sensible order that is globally
//! cyclic (users→groups, groups→acls, acls→users). Three operations in
//! flight at the wrong moment form a 3-cycle and the server hangs. The
//! correct build acquires every pair in the global subtree order.

use crate::util::FUNC_DIROP;
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdapdBug {
    /// Global lock order everywhere.
    None,
    /// Cyclic pairwise lock orders (3-way deadlock).
    Deadlock,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct LdapdConfig {
    /// Operation threads (3 keeps one of each op kind in flight).
    pub workers: u32,
    /// Scripted operations.
    pub ops: u32,
    /// Virtual compute units per operation.
    pub work_per_op: u64,
    /// Active bug.
    pub bug: LdapdBug,
}

impl Default for LdapdConfig {
    fn default() -> Self {
        LdapdConfig {
            workers: 3,
            ops: 12,
            work_per_op: 50,
            bug: LdapdBug::Deadlock,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    dispatch: ChanId,
    /// Subtree locks: users, groups, acls (contiguous).
    subtree0: LockId,
    /// Subtree entry counts (contiguous).
    count0: VarId,
    applied: VarId,
}

const USERS: u32 = 0;
const GROUPS: u32 = 1;
const ACLS: u32 = 2;

/// The OpenLDAP-style server program.
#[derive(Debug, Clone)]
pub struct Ldapd {
    cfg: LdapdConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Ldapd {
    /// Builds the server with the given configuration.
    pub fn new(cfg: LdapdConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            dispatch: spec.chan("dispatch"),
            subtree0: spec.lock_array("subtree", 3),
            count0: spec.var_array("count", 3, 0),
            applied: spec.var("applied", 0),
        };
        Ldapd { cfg, spec, rs }
    }
}

fn lock_of(rs: &Resources, subtree: u32) -> LockId {
    LockId(rs.subtree0.0 + subtree)
}

fn count_of(rs: &Resources, subtree: u32) -> VarId {
    VarId(rs.count0.0 + subtree)
}

/// A two-subtree modify: bump both counts under both locks.
fn modify_pair(ctx: &mut Ctx, cfg: &LdapdConfig, rs: Resources, first: u32, second: u32) {
    ctx.func(FUNC_DIROP);
    let (a, b) = match cfg.bug {
        // BUG: use the op's "natural" order, which is cyclic across ops.
        LdapdBug::Deadlock => (first, second),
        // Correct: global subtree order.
        LdapdBug::None => (first.min(second), first.max(second)),
    };
    ctx.lock(lock_of(&rs, a));
    ctx.compute(cfg.work_per_op / 4);
    ctx.lock(lock_of(&rs, b));
    for s in [first, second] {
        let c = count_of(&rs, s);
        let v = ctx.read(c);
        ctx.write(c, v + 1);
    }
    ctx.compute(cfg.work_per_op);
    ctx.unlock(lock_of(&rs, b));
    ctx.unlock(lock_of(&rs, a));
    ctx.fetch_add(rs.applied, 1);
}

fn search(ctx: &mut Ctx, cfg: &LdapdConfig, rs: Resources, subtree: u32) {
    ctx.func(FUNC_DIROP);
    ctx.lock(lock_of(&rs, subtree));
    let _n = ctx.read(count_of(&rs, subtree));
    ctx.compute(cfg.work_per_op);
    ctx.unlock(lock_of(&rs, subtree));
    ctx.fetch_add(rs.applied, 1);
}

fn worker_body(ctx: &mut Ctx, cfg: &LdapdConfig, rs: Resources) {
    while let Some(op) = ctx.recv(rs.dispatch) {
        ctx.bb(40 + (op % 4) as u32);
        match op % 4 {
            // modify user+group: users -> groups
            0 => modify_pair(ctx, cfg, rs, USERS, GROUPS),
            // modify group+acl: groups -> acls
            1 => modify_pair(ctx, cfg, rs, GROUPS, ACLS),
            // reindex acl+user: acls -> users (closes the cycle when buggy)
            2 => modify_pair(ctx, cfg, rs, ACLS, USERS),
            _ => search(ctx, cfg, rs, (op / 4) as u32 % 3),
        }
    }
}

impl Program for Ldapd {
    fn name(&self) -> String {
        match self.cfg.bug {
            LdapdBug::None => "ldapd".to_string(),
            LdapdBug::Deadlock => "ldapd-deadlock".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        WorldConfig::default()
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        Box::new(move |ctx| {
            let workers: Vec<ThreadId> = (0..cfg.workers)
                .map(|i| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("op{i}"), move |ctx| worker_body(ctx, &cfg, rs))
                })
                .collect();
            for op in 0..u64::from(cfg.ops) {
                ctx.send(rs.dispatch, op);
            }
            ctx.chan_close(rs.dispatch);
            for w in workers {
                ctx.join(w);
            }
            let applied = ctx.read(rs.applied);
            ctx.check(applied == u64::from(cfg.ops), "operations were lost");
            // Count consistency: every modify bumped exactly two counts.
            let mut total = 0;
            for s in 0..3 {
                total += ctx.read(count_of(&rs, s));
            }
            let modifies = (0..u64::from(cfg.ops)).filter(|op| op % 4 != 3).count() as u64;
            ctx.check(total == modifies * 2, "directory counts inconsistent");
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{never_fails, run_seed};

    #[test]
    fn bug_free_server_completes_under_many_schedules() {
        never_fails(
            || {
                Ldapd::new(LdapdConfig {
                    bug: LdapdBug::None,
                    ..LdapdConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn cyclic_lock_orders_deadlock_under_some_schedule() {
        let mut saw_deadlock = false;
        let mut saw_clean = false;
        for seed in 0..500 {
            let prog = Ldapd::new(LdapdConfig::default());
            match run_seed(&prog, seed) {
                RunStatus::Failed(Failure::Deadlock { threads, .. }) => {
                    assert!(threads.len() >= 2, "cycle has at least two threads");
                    saw_deadlock = true;
                }
                RunStatus::Completed => saw_clean = true,
                other => panic!("seed {seed}: {other}"),
            }
            if saw_deadlock && saw_clean {
                break;
            }
        }
        assert!(saw_deadlock, "cycle never formed in 500 schedules");
        assert!(saw_clean, "every schedule deadlocked");
    }
}
