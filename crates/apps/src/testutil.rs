//! Test support: schedule-sweep helpers shared by every application's
//! bug-manifests / bug-free-is-clean tests.

use pres_core::program::Program;
use pres_tvm::error::RunStatus;
use pres_tvm::sched::RandomScheduler;
use pres_tvm::trace::{NullObserver, TraceMode};
use pres_tvm::vm::{self, VmConfig};

/// Runs the program once under a random schedule.
pub fn run_seed(program: &dyn Program, seed: u64) -> RunStatus {
    let body = program.root();
    let out = vm::run(
        VmConfig {
            trace_mode: TraceMode::Off,
            world: program.world(),
            ..VmConfig::default()
        },
        program.resources(),
        &mut RandomScheduler::new(seed),
        &mut NullObserver,
        move |ctx| body(ctx),
    );
    out.status
}

/// Asserts the bug manifests with the expected signature for *some* seed in
/// `0..max_seeds`, and that at least one seed completes cleanly (the bug is
/// interleaving-dependent, not deterministic). Returns the failing seed.
pub fn fails_for_some_seed(
    make: impl Fn() -> Box<dyn Program>,
    max_seeds: u64,
    expected_signature: &str,
) -> u64 {
    let mut failing = None;
    let mut clean = false;
    for seed in 0..max_seeds {
        let prog = make();
        match run_seed(prog.as_ref(), seed) {
            RunStatus::Failed(f) => {
                assert_eq!(
                    f.signature(),
                    expected_signature,
                    "unexpected failure at seed {seed}: {f}"
                );
                if failing.is_none() {
                    failing = Some(seed);
                }
            }
            RunStatus::Completed => clean = true,
            other => panic!("seed {seed}: unexpected status {other}"),
        }
        if failing.is_some() && clean {
            break;
        }
    }
    let failing = failing.unwrap_or_else(|| {
        panic!("bug never manifested in {max_seeds} seeds (expected {expected_signature})")
    });
    assert!(clean, "every seed failed: the bug is not interleaving-dependent");
    failing
}

/// Convenience for boxed-program closures over concrete types.
pub fn fails_for_some_seed_t<P: Program + 'static>(
    make: impl Fn() -> P,
    max_seeds: u64,
    expected_signature: &str,
) -> u64 {
    fails_for_some_seed(|| Box::new(make()) as Box<dyn Program>, max_seeds, expected_signature)
}

/// Asserts the program completes cleanly for every seed in `0..seeds`.
pub fn never_fails<P: Program + 'static>(make: impl Fn() -> P, seeds: u64) {
    for seed in 0..seeds {
        let prog = make();
        let status = run_seed(&prog, seed);
        assert_eq!(
            status,
            RunStatus::Completed,
            "bug-free program failed at seed {seed}: {status}"
        );
    }
}
