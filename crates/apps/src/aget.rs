//! `aget` — an accelerated multi-connection downloader.
//!
//! Structure: like the real `aget`, the file is fetched over several
//! parallel connections, one per downloader thread; each thread receives
//! its byte range in chunks, writes them to its own region of the output
//! file, and advances a shared progress counter that the UI/resume logic
//! depends on (aget persists it to the `.aget` state file for resume).
//!
//! Seeded bug — [`AgetBug::ProgressAtomicity`], modeled after **aget's
//! shared `bwritten` counter race** (an unprotected read-modify-write
//! updated from every downloader's signal handler path). Lost updates make
//! the recorded progress fall short of the bytes actually downloaded; a
//! resume would then re-fetch or, worse, corrupt the tail. Class:
//! single-variable atomicity violation.

use crate::util::FUNC_DOWNLOAD;
use pres_core::program::Program;
use pres_tvm::prelude::*;
use pres_tvm::state::ResourceSpec;

/// Which (if any) seeded bug is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgetBug {
    /// Atomic progress accounting.
    None,
    /// Unprotected read-modify-write on the progress counter.
    ProgressAtomicity,
}

/// Downloader configuration.
#[derive(Debug, Clone)]
pub struct AgetConfig {
    /// Parallel connections (threads).
    pub connections: u32,
    /// Chunks per connection.
    pub chunks: u32,
    /// Chunk size in bytes.
    pub chunk_size: usize,
    /// Virtual compute units per chunk (TLS, buffer copies…).
    pub work_per_chunk: u64,
    /// Active bug.
    pub bug: AgetBug,
}

impl Default for AgetConfig {
    fn default() -> Self {
        AgetConfig {
            connections: 4,
            chunks: 5,
            chunk_size: 32,
            work_per_chunk: 60,
            bug: AgetBug::ProgressAtomicity,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Resources {
    /// Bytes downloaded so far (the racy counter).
    progress: VarId,
    out_lock: LockId,
}

/// The aget-style downloader program.
#[derive(Debug, Clone)]
pub struct Aget {
    cfg: AgetConfig,
    spec: ResourceSpec,
    rs: Resources,
}

impl Aget {
    /// Builds the downloader with the given configuration.
    pub fn new(cfg: AgetConfig) -> Self {
        let mut spec = ResourceSpec::new();
        let rs = Resources {
            progress: spec.var("progress", 0),
            out_lock: spec.lock("out_lock"),
        };
        Aget { cfg, spec, rs }
    }

    fn total_bytes(&self) -> u64 {
        u64::from(self.cfg.connections) * u64::from(self.cfg.chunks) * self.cfg.chunk_size as u64
    }
}

fn downloader_body(ctx: &mut Ctx, cfg: &AgetConfig, rs: Resources, idx: u32) {
    ctx.func(FUNC_DOWNLOAD);
    // Each downloader accepts its own server connection (range request).
    let Some(conn) = ctx.sys_accept() else {
        ctx.fail("server refused a range connection");
    };
    let mut received: u64 = 0;
    while let Some(data) = ctx.sys_recv(conn, cfg.chunk_size) {
        ctx.bb(60);
        // Heterogeneous per-chunk processing (TLS record sizes vary)
        // desynchronizes the connections.
        let pieces = 3 + (idx as u64 + received / cfg.chunk_size as u64 * 2) % 6;
        for piece in 0..pieces {
            ctx.bb(63 + piece as u32);
            ctx.compute(cfg.work_per_chunk / pieces);
        }
        // Write this connection's region of the output file.
        ctx.with_lock(rs.out_lock, |ctx| {
            let fd = ctx.sys_open(&format!("/dl/part{idx}"));
            ctx.sys_write(fd, &data);
            ctx.sys_close(fd);
        });
        received += data.len() as u64;
        let is_final_chunk =
            received >= u64::from(cfg.chunks) * cfg.chunk_size as u64;
        match cfg.bug {
            // BUG: the end-of-range progress flush (the path the signal
            // handler also takes) is an unprotected read-modify-write.
            AgetBug::ProgressAtomicity if is_final_chunk => {
                ctx.bb(61);
                let p = ctx.read(rs.progress);
                ctx.write(rs.progress, p + data.len() as u64);
            }
            _ => {
                ctx.bb(62);
                ctx.fetch_add(rs.progress, data.len() as i64);
            }
        }
    }
    ctx.sys_net_close(conn);
    ctx.check(
        received == u64::from(cfg.chunks) * cfg.chunk_size as u64,
        "connection delivered short range",
    );
}

impl Program for Aget {
    fn name(&self) -> String {
        match self.cfg.bug {
            AgetBug::None => "aget".to_string(),
            AgetBug::ProgressAtomicity => "aget-progress-atomicity".to_string(),
        }
    }

    fn resources(&self) -> ResourceSpec {
        self.spec.clone()
    }

    fn world(&self) -> WorldConfig {
        let mut world = WorldConfig::default();
        let range_len = self.cfg.chunks as usize * self.cfg.chunk_size;
        for c in 0..self.cfg.connections {
            // Each connection serves one byte range of the file.
            let payload: Vec<u8> = (0..range_len).map(|i| (i as u8).wrapping_add(c as u8)).collect();
            world = world.with_session(Session::new(u64::from(c), payload));
        }
        world
    }

    fn root(&self) -> Box<dyn FnOnce(&mut Ctx) + Send> {
        let cfg = self.cfg.clone();
        let rs = self.rs;
        let total = self.total_bytes();
        Box::new(move |ctx| {
            let downloaders: Vec<ThreadId> = (0..cfg.connections)
                .map(|i| {
                    let cfg = cfg.clone();
                    ctx.spawn(&format!("dl{i}"), move |ctx| {
                        downloader_body(ctx, &cfg, rs, i);
                    })
                })
                .collect();
            for d in downloaders {
                ctx.join(d);
            }
            // Persist the resume state and validate.
            let progress = ctx.read(rs.progress);
            let fd = ctx.sys_open("/dl/state.aget");
            ctx.sys_write(fd, &progress.to_be_bytes());
            ctx.sys_close(fd);
            ctx.check(
                progress == total,
                "progress counter lost an update (resume state corrupt)",
            );
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fails_for_some_seed_t, never_fails};

    #[test]
    fn bug_free_downloader_completes_under_many_schedules() {
        never_fails(
            || {
                Aget::new(AgetConfig {
                    bug: AgetBug::None,
                    ..AgetConfig::default()
                })
            },
            40,
        );
    }

    #[test]
    fn progress_race_manifests_under_some_schedule() {
        fails_for_some_seed_t(
            || Aget::new(AgetConfig::default()),
            500,
            "assert:progress counter lost an update (resume state corrupt)",
        );
    }

    #[test]
    fn all_parts_reach_disk() {
        let prog = Aget::new(AgetConfig {
            bug: AgetBug::None,
            ..AgetConfig::default()
        });
        let body = prog.root();
        let out = pres_tvm::vm::run(
            pres_tvm::vm::VmConfig {
                world: prog.world(),
                ..Default::default()
            },
            prog.resources(),
            &mut RandomScheduler::new(9),
            &mut NullObserver,
            move |ctx| body(ctx),
        );
        assert_eq!(out.status, RunStatus::Completed, "{}", out.status);
        for i in 0..4 {
            let part = out.files.get(&format!("/dl/part{i}")).expect("part file");
            assert_eq!(part.len(), 5 * 32);
        }
        assert!(out.files.contains_key("/dl/state.aget"));
    }
}
