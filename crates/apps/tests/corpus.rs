//! Corpus-wide behavioural validation: every application's *observable*
//! outputs (responses, files, stdout) are correct on clean runs, buggy
//! builds only ever fail with their documented signature, and workload
//! scaling behaves.

use pres_apps::registry::{all_apps, all_bugs, WorkloadScale};
use pres_apps::testutil::run_seed;
use pres_core::recorder::run_traced;
use pres_tvm::error::{Failure, RunStatus};
use pres_tvm::vm::VmConfig;

#[test]
fn server_apps_answer_every_scripted_session() {
    let config = VmConfig::default();
    for app in all_apps() {
        let prog = app.workload(WorkloadScale::Small);
        let sessions = prog.world().sessions.len();
        if sessions == 0 {
            continue; // non-networked app
        }
        let out = run_traced(prog.as_ref(), &config, 3);
        assert_eq!(out.status, RunStatus::Completed, "{}", app.id);
        assert_eq!(out.conn_outputs.len(), sessions, "{}", app.id);
        // Request/response servers must answer every session; client apps
        // (aget downloads) only consume.
        if app.category == pres_apps::AppCategory::Server {
            let answered = out
                .conn_outputs
                .iter()
                .filter(|o| !o.is_empty())
                .count();
            assert_eq!(answered, sessions, "{}: some session got no response", app.id);
        }
    }
}

#[test]
fn buggy_builds_fail_only_with_their_documented_signature() {
    for bug in all_bugs() {
        let prog = bug.program();
        let mut failures = std::collections::BTreeSet::new();
        for seed in 0..120 {
            if let RunStatus::Failed(f) = run_seed(prog.as_ref(), seed) {
                failures.insert(match f {
                    Failure::Deadlock { .. } => "deadlock".to_string(),
                    other => other.signature(),
                });
            }
        }
        assert!(
            failures.len() <= 2,
            "{}: too many distinct failure modes: {failures:?}",
            bug.id
        );
        if bug.id.contains("deadlock") {
            assert!(
                failures.iter().all(|f| f == "deadlock"),
                "{}: non-deadlock failure: {failures:?}",
                bug.id
            );
        }
    }
}

#[test]
fn standard_workloads_do_more_work_than_small_ones() {
    let config = VmConfig::default();
    for app in all_apps() {
        let small = run_traced(app.workload(WorkloadScale::Small).as_ref(), &config, 1);
        let standard = run_traced(app.workload(WorkloadScale::Standard).as_ref(), &config, 1);
        assert_eq!(small.status, RunStatus::Completed, "{}", app.id);
        assert_eq!(standard.status, RunStatus::Completed, "{}", app.id);
        assert!(
            standard.time.work > small.time.work,
            "{}: standard {} vs small {}",
            app.id,
            standard.time.work,
            small.time.work
        );
    }
}

#[test]
fn thread_scaling_spawns_the_requested_workers() {
    let config = VmConfig::default();
    for app in all_apps() {
        if app.id == "cherokee" {
            continue; // fixed single-worker architecture
        }
        let p2 = run_traced(
            app.workload_with_threads(WorkloadScale::Small, 2).as_ref(),
            &config,
            1,
        );
        let p6 = run_traced(
            app.workload_with_threads(WorkloadScale::Small, 6).as_ref(),
            &config,
            1,
        );
        assert!(
            p6.stats.spawns > p2.stats.spawns,
            "{}: spawns {} vs {}",
            app.id,
            p2.stats.spawns,
            p6.stats.spawns
        );
        assert_eq!(p6.status, RunStatus::Completed, "{}: {}", app.id, p6.status);
    }
}

#[test]
fn app_outputs_are_schedule_independent_when_bug_free() {
    // Not the interleaving — the final observable state. Clean builds are
    // properly synchronized, so files and response multisets must agree
    // across schedules.
    let config = VmConfig::default();
    for app in all_apps() {
        let prog = app.workload(WorkloadScale::Small);
        let base = run_traced(prog.as_ref(), &config, 0);
        assert_eq!(base.status, RunStatus::Completed, "{}", app.id);
        for seed in 1..6 {
            let out = run_traced(prog.as_ref(), &config, seed);
            assert_eq!(out.status, RunStatus::Completed, "{}", app.id);
            let mut a: Vec<&Vec<u8>> = base.conn_outputs.iter().collect();
            let mut b: Vec<&Vec<u8>> = out.conn_outputs.iter().collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{} seed {seed}: response multiset changed", app.id);
            assert_eq!(
                base.files.keys().collect::<Vec<_>>(),
                out.files.keys().collect::<Vec<_>>(),
                "{} seed {seed}: file set changed",
                app.id
            );
        }
    }
}
