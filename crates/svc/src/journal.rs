//! The append-only job journal.
//!
//! Every state transition the queue cares about across restarts is one
//! framed record appended — and `fdatasync`ed — before the transition is
//! acknowledged: SUBMIT when a job is accepted, RETRY when a job is
//! requeued after exhausting its attempt budget, RESULT when a job
//! reaches a terminal status. On startup the queue replays the journal
//! front to back; a crash can leave at most one partially-written record
//! at the tail, which replay tolerates by *truncating* it (the
//! corresponding transition was never acknowledged, so dropping it is
//! correct — and physically truncating means later appends land after the
//! last clean record instead of behind unreadable garbage).
//!
//! Record framing (format 2, header magic `PSJ2`):
//!
//! ```text
//! "PSJ2" | records…
//! record = u32 BE payload length | payload (kind u8 + fields) | u32 BE CRC-32(payload)
//! ```
//!
//! The CRC trailer is what lets replay tell a *torn* append from
//! *corruption*: a record whose checksum mismatches and which ends the
//! file is a crash signature (truncate and continue); a mismatching
//! record with more bytes behind it is real damage and a hard error.
//! Without it, a torn write that happens to leave a plausible length
//! prefix would replay garbage fields as a real transition.
//!
//! Format-1 journals (no magic, no CRC) are still decodable: they are
//! replayed with the legacy tolerant-tail walk and atomically rewritten
//! in format 2 on open, so every append after the upgrade is checksummed.

use crate::crc::crc32;
use crate::digest::Digest;
use crate::faultpoint::{FaultPoint, Faults};
use crate::queue::JobStatus;
use crate::wire::{self, LenOverflow, Reader};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Format-2 header magic.
pub const MAGIC: [u8; 4] = *b"PSJ2";

/// One durable queue transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A job was accepted: `job` reproduces `bug` from the stored sketch.
    Submit {
        job: u64,
        bug: String,
        sketch: Digest,
    },
    /// A job was requeued for its `retries`-th retry.
    Retry { job: u64, retries: u32 },
    /// A job reached a terminal status.
    Result { job: u64, status: JobStatus },
}

const KIND_SUBMIT: u8 = 1;
const KIND_RETRY: u8 = 2;
const KIND_RESULT: u8 = 3;

impl Record {
    fn encode(&self) -> Result<Vec<u8>, LenOverflow> {
        let mut out = Vec::new();
        match self {
            Record::Submit { job, bug, sketch } => {
                out.push(KIND_SUBMIT);
                wire::put_u64(&mut out, *job);
                wire::put_str(&mut out, bug)?;
                wire::put_digest(&mut out, sketch);
            }
            Record::Retry { job, retries } => {
                out.push(KIND_RETRY);
                wire::put_u64(&mut out, *job);
                wire::put_u32(&mut out, *retries);
            }
            Record::Result { job, status } => {
                out.push(KIND_RESULT);
                wire::put_u64(&mut out, *job);
                status.encode(&mut out)?;
            }
        }
        Ok(out)
    }

    fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = Reader(payload);
        let record = match r.u8()? {
            KIND_SUBMIT => Record::Submit {
                job: r.u64()?,
                bug: r.str()?.to_string(),
                sketch: r.digest()?,
            },
            KIND_RETRY => Record::Retry {
                job: r.u64()?,
                retries: r.u32()?,
            },
            KIND_RESULT => Record::Result {
                job: r.u64()?,
                status: JobStatus::decode(&mut r)?,
            },
            _ => return None,
        };
        r.is_done().then_some(record)
    }
}

fn corrupt(path: &Path, at: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed journal record at byte {at} of {}: {what}", path.display()),
    )
}

/// A parsed journal image: the records of the longest clean prefix and
/// that prefix's byte length (everything past it is tail damage).
struct Parsed {
    records: Vec<Record>,
    clean_len: u64,
}

/// Walks format-2 frames. Incomplete or checksum-mismatching data *at the
/// end of the file* is a torn append; a bad checksum or undecodable
/// payload with more bytes behind it is corruption.
fn parse_v2(data: &[u8], path: &Path) -> io::Result<Parsed> {
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    loop {
        let rest = &data[offset..];
        if rest.is_empty() {
            break;
        }
        let Some((head, after_len)) = rest.split_at_checked(4) else {
            break; // partial length prefix at the tail
        };
        let len = u32::from_be_bytes(head.try_into().unwrap()) as usize;
        let Some((payload, after_payload)) = after_len.split_at_checked(len) else {
            break; // partial payload at the tail
        };
        let Some((crc_bytes, after_crc)) = after_payload.split_at_checked(4) else {
            break; // partial checksum at the tail
        };
        let stored_crc = u32::from_be_bytes(crc_bytes.try_into().unwrap());
        if crc32(payload) != stored_crc {
            if after_crc.is_empty() {
                break; // torn final record: a plausible frame, wrong bytes
            }
            return Err(corrupt(path, offset, "checksum mismatch mid-file"));
        }
        let Some(record) = Record::decode(payload) else {
            // The checksum matched, so these bytes are what was written:
            // an undecodable payload is a writer bug or real corruption,
            // wherever it sits.
            return Err(corrupt(path, offset, "undecodable record payload"));
        };
        records.push(record);
        offset = data.len() - after_crc.len();
    }
    Ok(Parsed {
        records,
        clean_len: offset as u64,
    })
}

/// Walks legacy format-1 frames (`u32 len | payload`, no checksum).
fn parse_v1(data: &[u8], path: &Path) -> io::Result<Parsed> {
    let mut records = Vec::new();
    let mut cursor = data;
    while !cursor.is_empty() {
        let Some((head, rest)) = cursor.split_at_checked(4) else {
            break; // partial length prefix at the tail
        };
        let len = u32::from_be_bytes(head.try_into().unwrap()) as usize;
        let Some((payload, rest)) = rest.split_at_checked(len) else {
            break; // partial payload at the tail
        };
        match Record::decode(payload) {
            Some(record) => records.push(record),
            None => {
                return Err(corrupt(
                    path,
                    data.len() - cursor.len(),
                    "undecodable record payload",
                ))
            }
        }
        cursor = rest;
    }
    Ok(Parsed {
        records,
        clean_len: (data.len() - cursor.len()) as u64,
    })
}

/// An open journal, positioned for appends (always format 2).
#[derive(Debug)]
pub struct Journal {
    file: File,
    faults: Faults,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, replaying every
    /// complete record already present. A truncated or torn final record
    /// — the signature of a crash mid-append — is discarded and the file
    /// truncated back to its last clean record; a malformed record
    /// *before* the tail means real corruption and is an error. Legacy
    /// checksum-less journals are replayed and upgraded in place.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Vec<Record>)> {
        Journal::open_with_faults(path, Faults::none())
    }

    /// [`Journal::open`] with an injectable crash-point handle.
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        faults: Faults,
    ) -> io::Result<(Journal, Vec<Record>)> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        if data.is_empty() {
            // Fresh journal: stamp the format-2 header durably before any
            // record relies on it.
            file.write_all(&MAGIC)?;
            file.sync_data()?;
            if let Some(dir) = path.parent() {
                let _ = File::open(dir).and_then(|d| d.sync_all());
            }
            return Ok((Journal { file, faults }, Vec::new()));
        }

        if data.starts_with(&MAGIC) {
            let parsed = parse_v2(&data, path)?;
            if parsed.clean_len < data.len() as u64 {
                // Drop the torn tail so future appends extend the clean
                // prefix instead of hiding behind unreadable bytes.
                file.set_len(parsed.clean_len)?;
                file.sync_data()?;
            }
            return Ok((Journal { file, faults }, parsed.records));
        }

        // Legacy format 1: replay tolerantly, then upgrade the file to
        // format 2 atomically (tmp + rename, both synced) so every record
        // in front of future appends carries a checksum.
        let parsed = parse_v1(&data, path)?;
        drop(file);
        let upgrade = path.with_extension("upgrade");
        let mut out = Vec::with_capacity(data.len() + 4 + parsed.records.len() * 4);
        out.extend_from_slice(&MAGIC);
        for record in &parsed.records {
            let payload = record.encode().map_err(io::Error::from)?;
            frame_into(&mut out, &payload)?;
        }
        {
            let mut f = File::create(&upgrade)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        std::fs::rename(&upgrade, path)?;
        if let Some(dir) = path.parent() {
            let _ = File::open(dir).and_then(|d| d.sync_all());
        }
        let file = OpenOptions::new().read(true).append(true).open(path)?;
        Ok((Journal { file, faults }, parsed.records))
    }

    /// Appends one record and `fdatasync`s it before returning — callers
    /// may acknowledge the transition the moment this returns `Ok`.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let payload = record.encode().map_err(io::Error::from)?;
        let mut framed = Vec::with_capacity(8 + payload.len());
        frame_into(&mut framed, &payload)?;
        self.faults.check(FaultPoint::JournalWriteCrash)?;
        if let Some(keep) = self.faults.torn(FaultPoint::JournalWriteTorn, framed.len()) {
            self.file.write_all(&framed[..keep])?;
            let _ = self.file.sync_data();
            return Err(Faults::torn_error(FaultPoint::JournalWriteTorn));
        }
        self.file.write_all(&framed)?;
        self.faults.check(FaultPoint::JournalSyncCrash)?;
        // A buffered flush only reaches the kernel; the acknowledgement
        // contract is power-loss durability, which needs fdatasync.
        self.file.sync_data()
    }
}

/// Appends one format-2 frame (`len | payload | crc`) to `out`, with the
/// length conversion checked.
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
    let len = wire::check_len(payload.len()).map_err(io::Error::from)?;
    wire::put_u32(out, len);
    out.extend_from_slice(payload);
    wire::put_u32(out, crc32(payload));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pres-svc-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Submit {
                job: 1,
                bug: "pbzip-order".into(),
                sketch: sha256(b"sketch"),
            },
            Record::Retry { job: 1, retries: 1 },
            Record::Result {
                job: 1,
                status: JobStatus::Succeeded {
                    attempts: 17,
                    certificate: sha256(b"cert"),
                },
            },
            Record::Result {
                job: 2,
                status: JobStatus::Failed {
                    message: "unknown bug 'nope'".into(),
                },
            },
        ]
    }

    fn write_all(path: &Path, records: &[Record]) {
        let (mut j, _) = Journal::open(path).unwrap();
        for r in records {
            j.append(r).unwrap();
        }
    }

    /// A format-1 image of `records` (no magic, no checksums).
    fn v1_image(records: &[Record]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in records {
            let p = r.encode().unwrap();
            wire::put_u32(&mut out, p.len() as u32);
            out.extend_from_slice(&p);
        }
        out
    }

    #[test]
    fn append_then_replay() {
        let path = scratch("replay");
        let records = sample_records();
        write_all(&path, &records);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records);
        assert!(std::fs::read(&path).unwrap().starts_with(&MAGIC));
    }

    #[test]
    fn truncated_tail_is_dropped_and_physically_truncated() {
        let path = scratch("truncated");
        let records = sample_records();
        write_all(&path, &records);
        let full = std::fs::read(&path).unwrap();
        let without_last = {
            let mut out = MAGIC.to_vec();
            for r in &records[..records.len() - 1] {
                frame_into(&mut out, &r.encode().unwrap()).unwrap();
            }
            out
        };
        // Chop the file mid-final-record at every possible byte offset.
        for cut in 1..(full.len() - without_last.len()) {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let (_, replayed) = Journal::open(&path).unwrap();
            assert_eq!(replayed, records[..records.len() - 1], "cut {cut}");
            // The torn bytes are gone: the file ends at the clean prefix.
            assert_eq!(
                std::fs::read(&path).unwrap(),
                without_last,
                "cut {cut} left tail bytes behind"
            );
        }
    }

    #[test]
    fn appends_after_a_torn_tail_are_replayable() {
        let path = scratch("append-after-tear");
        let records = sample_records();
        write_all(&path, &records);
        let full = std::fs::read(&path).unwrap();
        // Tear the final record mid-frame, then append a new record
        // through a reopened journal.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let extra = Record::Retry { job: 9, retries: 2 };
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert_eq!(replayed, records[..records.len() - 1]);
            j.append(&extra).unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        let mut expected = records[..records.len() - 1].to_vec();
        expected.push(extra);
        assert_eq!(replayed, expected);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = scratch("corrupt");
        write_all(&path, &sample_records());
        let mut data = std::fs::read(&path).unwrap();
        // Clobber the first record's kind byte (magic 4 + length 4 = 8).
        data[8] = 0xee;
        std::fs::write(&path, &data).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn torn_final_record_with_plausible_length_is_detected_by_crc() {
        let path = scratch("plausible-tear");
        let records = sample_records();
        write_all(&path, &records);
        let mut data = std::fs::read(&path).unwrap();
        // Corrupt a payload byte of the FINAL record while keeping its
        // length prefix and total size intact: without the CRC this
        // replays as a (garbage) record; with it, it is a torn tail.
        let n = data.len();
        data[n - 6] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records[..records.len() - 1]);
    }

    #[test]
    fn legacy_v1_journal_is_replayed_and_upgraded() {
        let path = scratch("v1-upgrade");
        let records = sample_records();
        std::fs::write(&path, v1_image(&records)).unwrap();
        let (mut j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records);
        // The file is now format 2 and keeps working across appends.
        assert!(std::fs::read(&path).unwrap().starts_with(&MAGIC));
        let extra = Record::Retry { job: 5, retries: 1 };
        j.append(&extra).unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        let mut expected = records;
        expected.push(extra);
        assert_eq!(replayed, expected);
    }

    #[test]
    fn legacy_v1_truncated_tail_is_tolerated() {
        let path = scratch("v1-tail");
        let records = sample_records();
        let mut image = v1_image(&records);
        image.truncate(image.len() - 5);
        std::fs::write(&path, image).unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records[..records.len() - 1]);
    }

    #[test]
    fn legacy_v1_mid_file_corruption_is_an_error() {
        let path = scratch("v1-corrupt");
        let mut image = v1_image(&sample_records());
        image[4] = 0xee; // first record's kind byte
        std::fs::write(&path, &image).unwrap();
        assert!(Journal::open(&path).is_err());
    }

    #[test]
    fn bit_flips_never_yield_phantom_records() {
        // The safety property of the framing: whatever single bit is
        // flipped, replay returns an error or a strict prefix of the
        // true record sequence — never a record that was not appended.
        let path = scratch("flips");
        let records = sample_records();
        write_all(&path, &records);
        let pristine = std::fs::read(&path).unwrap();
        for offset in 0..pristine.len() {
            for bit in [0u8, 3, 7] {
                let mut mutant = pristine.clone();
                mutant[offset] ^= 1 << bit;
                std::fs::write(&path, &mutant).unwrap();
                match Journal::open(&path) {
                    Err(_) => {}
                    Ok((_, replayed)) => {
                        assert!(
                            replayed.len() <= records.len()
                                && replayed == records[..replayed.len()],
                            "offset {offset} bit {bit}: phantom or reordered records"
                        );
                    }
                }
            }
        }
    }
}
