//! The append-only job journal, group-committed.
//!
//! Every state transition the queue cares about across restarts is one
//! framed record appended — and covered by an `fdatasync` — before the
//! transition is acknowledged: SUBMIT when a job is accepted, RETRY when
//! a job is requeued after exhausting its attempt budget, RESULT when a
//! job reaches a terminal status. On startup the queue replays the
//! journal front to back; a crash can leave at most one partially-written
//! record at the tail, which replay tolerates by *truncating* it (the
//! corresponding transition was never acknowledged, so dropping it is
//! correct — and physically truncating means later appends land after the
//! last clean record instead of behind unreadable garbage).
//!
//! ## Group commit
//!
//! `fdatasync` is the most expensive instruction on the append path, and
//! it costs the same whether it makes one record durable or sixty-four.
//! [`Journal::append`] therefore runs the classic WAL group-commit
//! protocol: an appender encodes its frame, enqueues it under the journal
//! lock, and blocks on a condvar; the first appender to find no active
//! leader *becomes* the leader, optionally holds the door open for
//! [`GroupCommit::max_hold`] so concurrent appenders can join, then
//! writes every pending frame with one `write` sequence and exactly one
//! `fdatasync`, and wakes the whole cohort. No appender returns `Ok`
//! before the sync that covers its record — the PR 6 acknowledgement
//! contract is unchanged; only the number of syncs per acknowledged
//! record changes (from 1 to 1/cohort). `GroupCommit { max_records: 1 }`
//! restores the exact per-record behavior and is the measured baseline
//! of experiment E19.
//!
//! A cohort that fails — torn write, injected crash, real I/O error —
//! fails *every* member: none were acked, so none may believe they were
//! made durable. A failure that can leave a partial frame on disk wedges
//! the journal for this process lifetime (subsequent appends fail fast);
//! reopening the file is the recovery path, exactly as it is for a real
//! crash.
//!
//! Record framing (format 2, header magic `PSJ2`):
//!
//! ```text
//! "PSJ2" | records…
//! record = u32 BE payload length | payload (kind u8 + fields) | u32 BE CRC-32(payload)
//! ```
//!
//! The CRC trailer is what lets replay tell a *torn* append from
//! *corruption*: a record whose checksum mismatches and which ends the
//! file is a crash signature (truncate and continue); a mismatching
//! record with more bytes behind it is real damage and a hard error.
//! Without it, a torn write that happens to leave a plausible length
//! prefix would replay garbage fields as a real transition.
//!
//! Format-1 journals (no magic, no CRC) are still decodable: they are
//! replayed with the legacy tolerant-tail walk and atomically rewritten
//! in format 2 on open, so every append after the upgrade is checksummed.

use crate::crc::crc32;
use crate::digest::Digest;
use crate::faultpoint::{FaultPoint, Faults};
use crate::metrics::Metrics;
use crate::queue::JobStatus;
use crate::wire::{self, LenOverflow, Reader};
use pres_tvm::sync::{Condvar, Mutex, MutexGuard};
use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Format-2 header magic.
pub const MAGIC: [u8; 4] = *b"PSJ2";

/// One durable queue transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A job was accepted: `job` reproduces `bug` from the stored sketch.
    Submit {
        job: u64,
        bug: String,
        sketch: Digest,
    },
    /// A job was requeued for its `retries`-th retry.
    Retry { job: u64, retries: u32 },
    /// A job reached a terminal status.
    Result { job: u64, status: JobStatus },
}

const KIND_SUBMIT: u8 = 1;
const KIND_RETRY: u8 = 2;
const KIND_RESULT: u8 = 3;

impl Record {
    fn encode(&self) -> Result<Vec<u8>, LenOverflow> {
        let mut out = Vec::new();
        match self {
            Record::Submit { job, bug, sketch } => {
                out.push(KIND_SUBMIT);
                wire::put_u64(&mut out, *job);
                wire::put_str(&mut out, bug)?;
                wire::put_digest(&mut out, sketch);
            }
            Record::Retry { job, retries } => {
                out.push(KIND_RETRY);
                wire::put_u64(&mut out, *job);
                wire::put_u32(&mut out, *retries);
            }
            Record::Result { job, status } => {
                out.push(KIND_RESULT);
                wire::put_u64(&mut out, *job);
                status.encode(&mut out)?;
            }
        }
        Ok(out)
    }

    fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = Reader(payload);
        let record = match r.u8()? {
            KIND_SUBMIT => Record::Submit {
                job: r.u64()?,
                bug: r.str()?.to_string(),
                sketch: r.digest()?,
            },
            KIND_RETRY => Record::Retry {
                job: r.u64()?,
                retries: r.u32()?,
            },
            KIND_RESULT => Record::Result {
                job: r.u64()?,
                status: JobStatus::decode(&mut r)?,
            },
            _ => return None,
        };
        r.is_done().then_some(record)
    }
}

fn corrupt(path: &Path, at: usize, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed journal record at byte {at} of {}: {what}", path.display()),
    )
}

/// A parsed journal image: the records of the longest clean prefix and
/// that prefix's byte length (everything past it is tail damage).
struct Parsed {
    records: Vec<Record>,
    clean_len: u64,
}

/// Walks format-2 frames. Incomplete or checksum-mismatching data *at the
/// end of the file* is a torn append; a bad checksum or undecodable
/// payload with more bytes behind it is corruption.
fn parse_v2(data: &[u8], path: &Path) -> io::Result<Parsed> {
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    loop {
        let rest = &data[offset..];
        if rest.is_empty() {
            break;
        }
        let Some((head, after_len)) = rest.split_at_checked(4) else {
            break; // partial length prefix at the tail
        };
        let len = u32::from_be_bytes(head.try_into().unwrap()) as usize;
        let Some((payload, after_payload)) = after_len.split_at_checked(len) else {
            break; // partial payload at the tail
        };
        let Some((crc_bytes, after_crc)) = after_payload.split_at_checked(4) else {
            break; // partial checksum at the tail
        };
        let stored_crc = u32::from_be_bytes(crc_bytes.try_into().unwrap());
        if crc32(payload) != stored_crc {
            if after_crc.is_empty() {
                break; // torn final record: a plausible frame, wrong bytes
            }
            return Err(corrupt(path, offset, "checksum mismatch mid-file"));
        }
        let Some(record) = Record::decode(payload) else {
            // The checksum matched, so these bytes are what was written:
            // an undecodable payload is a writer bug or real corruption,
            // wherever it sits.
            return Err(corrupt(path, offset, "undecodable record payload"));
        };
        records.push(record);
        offset = data.len() - after_crc.len();
    }
    Ok(Parsed {
        records,
        clean_len: offset as u64,
    })
}

/// Walks legacy format-1 frames (`u32 len | payload`, no checksum).
fn parse_v1(data: &[u8], path: &Path) -> io::Result<Parsed> {
    let mut records = Vec::new();
    let mut cursor = data;
    while !cursor.is_empty() {
        let Some((head, rest)) = cursor.split_at_checked(4) else {
            break; // partial length prefix at the tail
        };
        let len = u32::from_be_bytes(head.try_into().unwrap()) as usize;
        let Some((payload, rest)) = rest.split_at_checked(len) else {
            break; // partial payload at the tail
        };
        match Record::decode(payload) {
            Some(record) => records.push(record),
            None => {
                return Err(corrupt(
                    path,
                    data.len() - cursor.len(),
                    "undecodable record payload",
                ))
            }
        }
        cursor = rest;
    }
    Ok(Parsed {
        records,
        clean_len: (data.len() - cursor.len()) as u64,
    })
}

/// Group-commit tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommit {
    /// Most records one `fdatasync` may cover. `1` = per-record syncing,
    /// byte-for-byte the PR 6 append path (and the E19 baseline).
    pub max_records: usize,
    /// How long a leader holds the cohort open for concurrent appenders
    /// to join before it writes and syncs. `0` = never wait: the leader
    /// commits whatever is already enqueued (opportunistic batching
    /// only). The hold is cut short the moment the cohort fills.
    pub max_hold: Duration,
}

impl Default for GroupCommit {
    fn default() -> Self {
        GroupCommit {
            max_records: 64,
            max_hold: Duration::from_micros(500),
        }
    }
}

impl GroupCommit {
    /// The per-record baseline: every append is its own cohort and its
    /// own `fdatasync` — exactly the pre-group-commit behavior.
    pub fn per_record() -> Self {
        GroupCommit {
            max_records: 1,
            max_hold: Duration::ZERO,
        }
    }
}

/// One enqueued-but-uncommitted frame.
struct Pending {
    seq: u64,
    frame: Vec<u8>,
}

/// Everything the commit protocol mutates, under one lock. The file
/// lives here too: the leader writes and syncs while holding the lock,
/// which is what makes "one leader at a time" and "file order == seq
/// order" trivially true. Appenders that arrive during a sync block on
/// the lock, enqueue the moment it is released, and form the next
/// cohort — the sync is never idle-waited on.
struct CommitState {
    file: File,
    /// Frames appended but not yet claimed by a leader, in seq order.
    pending: VecDeque<Pending>,
    /// The next sequence number to hand out (seqs are per-process).
    next_seq: u64,
    /// Every seq `<=` this has an outcome (synced, or an entry in
    /// `failed`).
    resolved: u64,
    /// Outcomes of failed cohorts, removed by their owners on observation
    /// — bounded by the number of appenders currently in flight.
    failed: BTreeMap<u64, String>,
    /// A leader is holding the door or writing (lock released during the
    /// hold, so the flag — not the lock — is what serializes leaders).
    leader: bool,
    /// Set when a failed cohort write may have left a partial frame on
    /// disk: the in-memory append position no longer matches a clean
    /// file tail, so every later append fails fast until reopen.
    wedged: Option<String>,
}

/// An open journal, positioned for appends (always format 2). Appends
/// take `&self`: the journal owns its synchronization, because the
/// group-commit protocol *is* that synchronization.
pub struct Journal {
    shared: Mutex<CommitState>,
    /// Woken when a cohort resolves and when the leader role frees up.
    commit: Condvar,
    /// Woken when the pending queue fills during a leader's hold window.
    /// Separate from `commit` so a cohort-full enqueue wakes exactly the
    /// holding leader, not every parked follower (with tens of
    /// concurrent appenders that thundering herd is real CPU).
    hold: Condvar,
    faults: Faults,
    config: GroupCommit,
    metrics: Arc<Metrics>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("config", &self.config).finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, replaying every
    /// complete record already present. A truncated or torn final record
    /// — the signature of a crash mid-append — is discarded and the file
    /// truncated back to its last clean record; a malformed record
    /// *before* the tail means real corruption and is an error. Legacy
    /// checksum-less journals are replayed and upgraded in place.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Vec<Record>)> {
        Journal::open_with_faults(path, Faults::none())
    }

    /// [`Journal::open`] with an injectable crash-point handle.
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        faults: Faults,
    ) -> io::Result<(Journal, Vec<Record>)> {
        Journal::open_with(path, faults, GroupCommit::default(), Arc::new(Metrics::new()))
    }

    /// [`Journal::open`] with everything injectable: crash points,
    /// group-commit tuning, and the metrics block the commit path counts
    /// records/syncs/cohorts into (the daemon passes its shared one).
    pub fn open_with(
        path: impl AsRef<Path>,
        faults: Faults,
        config: GroupCommit,
        metrics: Arc<Metrics>,
    ) -> io::Result<(Journal, Vec<Record>)> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        if data.is_empty() {
            // Fresh journal: stamp the format-2 header durably before any
            // record relies on it.
            file.write_all(&MAGIC)?;
            file.sync_data()?;
            if let Some(dir) = path.parent() {
                let _ = File::open(dir).and_then(|d| d.sync_all());
            }
            return Ok((Journal::assemble(file, faults, config, metrics), Vec::new()));
        }

        if data.starts_with(&MAGIC) {
            let parsed = parse_v2(&data, path)?;
            if parsed.clean_len < data.len() as u64 {
                // Drop the torn tail so future appends extend the clean
                // prefix instead of hiding behind unreadable bytes.
                file.set_len(parsed.clean_len)?;
                file.sync_data()?;
            }
            return Ok((Journal::assemble(file, faults, config, metrics), parsed.records));
        }

        // Legacy format 1: replay tolerantly, then upgrade the file to
        // format 2 atomically (tmp + rename, both synced) so every record
        // in front of future appends carries a checksum.
        let parsed = parse_v1(&data, path)?;
        drop(file);
        let upgrade = path.with_extension("upgrade");
        let mut out = Vec::with_capacity(data.len() + 4 + parsed.records.len() * 4);
        out.extend_from_slice(&MAGIC);
        for record in &parsed.records {
            let payload = record.encode().map_err(io::Error::from)?;
            frame_into(&mut out, &payload)?;
        }
        {
            let mut f = File::create(&upgrade)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        std::fs::rename(&upgrade, path)?;
        if let Some(dir) = path.parent() {
            let _ = File::open(dir).and_then(|d| d.sync_all());
        }
        let file = OpenOptions::new().read(true).append(true).open(path)?;
        Ok((Journal::assemble(file, faults, config, metrics), parsed.records))
    }

    fn assemble(file: File, faults: Faults, config: GroupCommit, metrics: Arc<Metrics>) -> Journal {
        Journal {
            shared: Mutex::new(CommitState {
                file,
                pending: VecDeque::new(),
                next_seq: 1,
                resolved: 0,
                failed: BTreeMap::new(),
                leader: false,
                wedged: None,
            }),
            commit: Condvar::new(),
            hold: Condvar::new(),
            faults,
            config,
            metrics,
        }
    }

    /// The metrics block the commit path counts into (the journal's own
    /// unless one was shared via [`Journal::open_with`]).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Appends one record, returning once an `fdatasync` covers it —
    /// callers may acknowledge the transition the moment this returns
    /// `Ok`. Concurrent appenders are group-committed: their frames ride
    /// one cohort and share one sync.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        let payload = record.encode().map_err(io::Error::from)?;
        let mut framed = Vec::with_capacity(8 + payload.len());
        frame_into(&mut framed, &payload)?;
        self.commit_frames(vec![framed])
    }

    /// Appends several records as members of the same commit cohort(s):
    /// they are enqueued atomically and in order, so with
    /// [`GroupCommit::max_records`] `>=` the batch length they share a
    /// single `fdatasync`. All-or-nothing acknowledgement: `Ok` means
    /// every record is covered by a sync; `Err` means none may be
    /// treated as durable.
    pub fn append_batch(&self, records: &[Record]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut frames = Vec::with_capacity(records.len());
        for record in records {
            let payload = record.encode().map_err(io::Error::from)?;
            let mut framed = Vec::with_capacity(8 + payload.len());
            frame_into(&mut framed, &payload)?;
            frames.push(framed);
        }
        self.commit_frames(frames)
    }

    /// The commit protocol: enqueue `frames`, then wait for their outcome
    /// — leading (writing cohorts) whenever no other appender is.
    fn commit_frames(&self, frames: Vec<Vec<u8>>) -> io::Result<()> {
        let count = frames.len() as u64;
        let mut shared = self.shared.lock();
        if let Some(msg) = &shared.wedged {
            return Err(wedged_error(msg));
        }
        let first = shared.next_seq;
        for frame in frames {
            let seq = shared.next_seq;
            shared.next_seq += 1;
            shared.pending.push_back(Pending { seq, frame });
        }
        let last = first + count - 1;
        if shared.pending.len() >= self.config.max_records {
            // A leader may be holding the door open for exactly this:
            // cut its hold short.
            self.hold.notify_all();
        }
        loop {
            if shared.resolved >= last {
                return Self::take_outcome(&mut shared, first, last);
            }
            if !shared.leader {
                shared.leader = true;
                self.lead(&mut shared, last);
                shared.leader = false;
                // Wake both cohort members (their outcome is in) and the
                // next leader candidate (pending may be non-empty).
                self.commit.notify_all();
            } else {
                self.commit.wait(&mut shared);
            }
        }
    }

    /// Runs commit cohorts until every seq up to `upto` has an outcome.
    /// Called with the `leader` flag held; the lock is released only
    /// during the hold window (so joiners can enqueue), never during the
    /// write+sync itself — appenders arriving mid-sync park on the lock
    /// and form the next cohort the moment it is released.
    fn lead(&self, shared: &mut MutexGuard<'_, CommitState>, upto: u64) {
        while shared.resolved < upto && shared.wedged.is_none() {
            // Hold the door: give concurrent appenders up to `max_hold`
            // to join this cohort, stopping early once it is full.
            if !self.config.max_hold.is_zero() && shared.pending.len() < self.config.max_records {
                let deadline = Instant::now() + self.config.max_hold;
                while shared.pending.len() < self.config.max_records {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    self.hold.wait_timeout(shared, left);
                }
            }
            let take = shared.pending.len().min(self.config.max_records.max(1));
            let cohort: Vec<Pending> = shared.pending.drain(..take).collect();
            let hi = cohort.last().expect("leader leads only with pending frames").seq;
            match self.write_cohort(shared, &cohort) {
                Ok(()) => {
                    self.metrics.journal_records.fetch_add(cohort.len() as u64, Ordering::Relaxed);
                    self.metrics.journal_syncs.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .journal_cohort_max
                        .fetch_max(cohort.len() as u64, Ordering::Relaxed);
                }
                Err(WriteFailure { error, tail_dirty }) => {
                    // The cohort was not synced: every member errors, none
                    // acks. A possibly-partial frame on disk additionally
                    // wedges the journal — later appends would land behind
                    // unreadable bytes.
                    let msg = error.to_string();
                    for p in &cohort {
                        shared.failed.insert(p.seq, msg.clone());
                    }
                    if tail_dirty {
                        shared.wedged = Some(msg.clone());
                        // Unclaimed frames can never be written either.
                        while let Some(p) = shared.pending.pop_front() {
                            shared.failed.insert(p.seq, msg.clone());
                            shared.resolved = shared.resolved.max(p.seq);
                        }
                    }
                }
            }
            shared.resolved = shared.resolved.max(hi);
            self.commit.notify_all();
        }
    }

    /// Writes one cohort's frames and issues its single `fdatasync`,
    /// threading the crash-injection points through: the per-record
    /// points fire per frame (so a single-record cohort crashes exactly
    /// like a PR 6 append), the cohort points at the batch boundaries.
    fn write_cohort(
        &self,
        shared: &mut MutexGuard<'_, CommitState>,
        cohort: &[Pending],
    ) -> Result<(), WriteFailure> {
        let clean = |e: io::Error| WriteFailure { error: e, tail_dirty: false };
        let dirty = |e: io::Error| WriteFailure { error: e, tail_dirty: true };
        self.faults.check(FaultPoint::JournalCohortWriteCrash).map_err(clean)?;
        for p in cohort {
            // Every earlier frame is complete: a crash at this check
            // leaves whole (if unsynced) records, not a torn tail.
            self.faults.check(FaultPoint::JournalWriteCrash).map_err(clean)?;
            if let Some(keep) = self.faults.torn(FaultPoint::JournalWriteTorn, p.frame.len()) {
                let _ = shared.file.write_all(&p.frame[..keep]);
                let _ = shared.file.sync_data();
                return Err(dirty(Faults::torn_error(FaultPoint::JournalWriteTorn)));
            }
            shared.file.write_all(&p.frame).map_err(dirty)?;
        }
        self.faults.check(FaultPoint::JournalSyncCrash).map_err(clean)?;
        self.faults.check(FaultPoint::JournalCohortSyncCrash).map_err(clean)?;
        // A buffered flush only reaches the kernel; the acknowledgement
        // contract is power-loss durability, which needs fdatasync.
        shared.file.sync_data().map_err(clean)
    }

    /// Collects the outcome for seqs `first..=last` once resolved: the
    /// first failure wins, success otherwise. Failed entries are removed
    /// here — each seq has exactly one owner — so the map stays bounded
    /// by the number of in-flight appenders.
    fn take_outcome(
        shared: &mut MutexGuard<'_, CommitState>,
        first: u64,
        last: u64,
    ) -> io::Result<()> {
        let mut outcome = Ok(());
        for seq in first..=last {
            if let Some(msg) = shared.failed.remove(&seq) {
                if outcome.is_ok() {
                    outcome = Err(io::Error::other(msg));
                }
            }
        }
        outcome
    }
}

/// A cohort write error plus whether it may have left a partial frame on
/// disk (in which case the journal must wedge).
struct WriteFailure {
    error: io::Error,
    tail_dirty: bool,
}

fn wedged_error(msg: &str) -> io::Error {
    io::Error::other(format!("journal is wedged by an earlier failed write: {msg}"))
}

/// Appends one format-2 frame (`len | payload | crc`) to `out`, with the
/// length conversion checked.
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
    let len = wire::check_len(payload.len()).map_err(io::Error::from)?;
    wire::put_u32(out, len);
    out.extend_from_slice(payload);
    wire::put_u32(out, crc32(payload));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;
    use crate::faultpoint::{FaultMode, INJECTED};
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pres-svc-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Submit {
                job: 1,
                bug: "pbzip-order".into(),
                sketch: sha256(b"sketch"),
            },
            Record::Retry { job: 1, retries: 1 },
            Record::Result {
                job: 1,
                status: JobStatus::Succeeded {
                    attempts: 17,
                    certificate: sha256(b"cert"),
                },
            },
            Record::Result {
                job: 2,
                status: JobStatus::Failed {
                    message: "unknown bug 'nope'".into(),
                },
            },
        ]
    }

    fn write_all(path: &Path, records: &[Record]) {
        let (j, _) = Journal::open(path).unwrap();
        for r in records {
            j.append(r).unwrap();
        }
    }

    /// A format-1 image of `records` (no magic, no checksums).
    fn v1_image(records: &[Record]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in records {
            let p = r.encode().unwrap();
            wire::put_u32(&mut out, p.len() as u32);
            out.extend_from_slice(&p);
        }
        out
    }

    #[test]
    fn append_then_replay() {
        let path = scratch("replay");
        let records = sample_records();
        write_all(&path, &records);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records);
        assert!(std::fs::read(&path).unwrap().starts_with(&MAGIC));
    }

    #[test]
    fn truncated_tail_is_dropped_and_physically_truncated() {
        let path = scratch("truncated");
        let records = sample_records();
        write_all(&path, &records);
        let full = std::fs::read(&path).unwrap();
        let without_last = {
            let mut out = MAGIC.to_vec();
            for r in &records[..records.len() - 1] {
                frame_into(&mut out, &r.encode().unwrap()).unwrap();
            }
            out
        };
        // Chop the file mid-final-record at every possible byte offset.
        for cut in 1..(full.len() - without_last.len()) {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let (_, replayed) = Journal::open(&path).unwrap();
            assert_eq!(replayed, records[..records.len() - 1], "cut {cut}");
            // The torn bytes are gone: the file ends at the clean prefix.
            assert_eq!(
                std::fs::read(&path).unwrap(),
                without_last,
                "cut {cut} left tail bytes behind"
            );
        }
    }

    #[test]
    fn appends_after_a_torn_tail_are_replayable() {
        let path = scratch("append-after-tear");
        let records = sample_records();
        write_all(&path, &records);
        let full = std::fs::read(&path).unwrap();
        // Tear the final record mid-frame, then append a new record
        // through a reopened journal.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let extra = Record::Retry { job: 9, retries: 2 };
        {
            let (j, replayed) = Journal::open(&path).unwrap();
            assert_eq!(replayed, records[..records.len() - 1]);
            j.append(&extra).unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        let mut expected = records[..records.len() - 1].to_vec();
        expected.push(extra);
        assert_eq!(replayed, expected);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = scratch("corrupt");
        write_all(&path, &sample_records());
        let mut data = std::fs::read(&path).unwrap();
        // Clobber the first record's kind byte (magic 4 + length 4 = 8).
        data[8] = 0xee;
        std::fs::write(&path, &data).unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn torn_final_record_with_plausible_length_is_detected_by_crc() {
        let path = scratch("plausible-tear");
        let records = sample_records();
        write_all(&path, &records);
        let mut data = std::fs::read(&path).unwrap();
        // Corrupt a payload byte of the FINAL record while keeping its
        // length prefix and total size intact: without the CRC this
        // replays as a (garbage) record; with it, it is a torn tail.
        let n = data.len();
        data[n - 6] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records[..records.len() - 1]);
    }

    #[test]
    fn legacy_v1_journal_is_replayed_and_upgraded() {
        let path = scratch("v1-upgrade");
        let records = sample_records();
        std::fs::write(&path, v1_image(&records)).unwrap();
        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records);
        // The file is now format 2 and keeps working across appends.
        assert!(std::fs::read(&path).unwrap().starts_with(&MAGIC));
        let extra = Record::Retry { job: 5, retries: 1 };
        j.append(&extra).unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        let mut expected = records;
        expected.push(extra);
        assert_eq!(replayed, expected);
    }

    #[test]
    fn legacy_v1_truncated_tail_is_tolerated() {
        let path = scratch("v1-tail");
        let records = sample_records();
        let mut image = v1_image(&records);
        image.truncate(image.len() - 5);
        std::fs::write(&path, image).unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records[..records.len() - 1]);
    }

    #[test]
    fn legacy_v1_mid_file_corruption_is_an_error() {
        let path = scratch("v1-corrupt");
        let mut image = v1_image(&sample_records());
        image[4] = 0xee; // first record's kind byte
        std::fs::write(&path, &image).unwrap();
        assert!(Journal::open(&path).is_err());
    }

    #[test]
    fn concurrent_appends_share_syncs_and_all_replay() {
        let path = scratch("group");
        let (j, _) = Journal::open_with(
            &path,
            Faults::none(),
            GroupCommit {
                max_records: 64,
                max_hold: Duration::from_millis(5),
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let j = Arc::new(j);
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 25;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        j.append(&Record::Retry {
                            job: t * PER_THREAD + i,
                            retries: 1,
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = j.metrics().snapshot();
        assert_eq!(snap.journal_records, THREADS * PER_THREAD);
        assert!(snap.journal_syncs >= 1 && snap.journal_syncs <= snap.journal_records);
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), (THREADS * PER_THREAD) as usize);
        // Every acked record replays exactly once, whatever the cohorts.
        let mut jobs: Vec<u64> = replayed
            .iter()
            .map(|r| match r {
                Record::Retry { job, .. } => *job,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        jobs.sort_unstable();
        assert_eq!(jobs, (0..THREADS * PER_THREAD).collect::<Vec<_>>());
    }

    #[test]
    fn per_record_config_syncs_every_append() {
        let path = scratch("per-record");
        let (j, _) = Journal::open_with(
            &path,
            Faults::none(),
            GroupCommit::per_record(),
            Arc::new(Metrics::new()),
        )
        .unwrap();
        for r in &sample_records() {
            j.append(r).unwrap();
        }
        let snap = j.metrics().snapshot();
        assert_eq!(snap.journal_records, 4);
        assert_eq!(snap.journal_syncs, 4);
        assert_eq!(snap.journal_cohort_max, 1);
    }

    #[test]
    fn append_batch_commits_one_cohort() {
        let path = scratch("batch");
        let (j, _) = Journal::open_with(
            &path,
            Faults::none(),
            GroupCommit {
                max_records: 64,
                max_hold: Duration::ZERO,
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let records = sample_records();
        j.append_batch(&records).unwrap();
        let snap = j.metrics().snapshot();
        assert_eq!(snap.journal_records, 4);
        assert_eq!(snap.journal_syncs, 1);
        assert_eq!(snap.journal_cohort_max, 4);
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records);
    }

    #[test]
    fn a_torn_cohort_wedges_the_journal_until_reopen() {
        let path = scratch("wedge");
        let faults = Faults::new();
        let (j, _) = Journal::open_with(
            &path,
            faults.clone(),
            GroupCommit {
                max_records: 64,
                max_hold: Duration::ZERO,
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let records = sample_records();
        j.append(&records[0]).unwrap();
        // Tear the second frame of a three-record cohort: the first
        // member's bytes are on disk (unsynced), the tail is garbage.
        faults.arm(FaultPoint::JournalWriteTorn, FaultMode::Torn { keep: 6 }, 2);
        let err = j.append_batch(&records[1..]).unwrap_err();
        assert!(err.to_string().contains(INJECTED), "{err}");
        // Wedged: the in-memory position sits behind torn bytes, so a
        // later append must refuse rather than write unreadable records.
        let err = j.append(&records[1]).unwrap_err();
        assert!(err.to_string().contains("wedged"), "{err}");
        drop(j);
        // Reopen = recovery: the torn tail is truncated. The first
        // cohort frame was written before the tear and never synced, so
        // it may legitimately survive; no member was acked, and nothing
        // is garbage.
        let (j, replayed) = Journal::open(&path).unwrap();
        assert!(!replayed.is_empty() && replayed[0] == records[0]);
        assert!(replayed.len() <= 2);
        j.append(&records[3]).unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.last(), Some(&records[3]));
    }

    #[test]
    fn a_failed_cohort_fails_every_member() {
        let path = scratch("cohort-fail");
        let faults = Faults::new();
        let (j, _) = Journal::open_with(
            &path,
            faults.clone(),
            GroupCommit {
                max_records: 64,
                max_hold: Duration::ZERO,
            },
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let records = sample_records();
        faults.arm(FaultPoint::JournalCohortSyncCrash, FaultMode::Crash, 1);
        let err = j.append_batch(&records).unwrap_err();
        assert!(err.to_string().contains("cohort-sync"), "{err}");
        assert_eq!(j.metrics().snapshot().journal_syncs, 0);
        // A sync crash leaves complete frames behind: not wedged, the
        // journal keeps accepting work.
        j.append(&records[0]).unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        // The unacked cohort's bytes were written (sync was the crash),
        // so it replays — as unacknowledged work, which is allowed —
        // followed by the acked append.
        assert_eq!(replayed.last(), Some(&records[0]));
        assert_eq!(replayed.len(), records.len() + 1);
    }

    #[test]
    fn bit_flips_never_yield_phantom_records() {
        // The safety property of the framing: whatever single bit is
        // flipped, replay returns an error or a strict prefix of the
        // true record sequence — never a record that was not appended.
        let path = scratch("flips");
        let records = sample_records();
        write_all(&path, &records);
        let pristine = std::fs::read(&path).unwrap();
        for offset in 0..pristine.len() {
            for bit in [0u8, 3, 7] {
                let mut mutant = pristine.clone();
                mutant[offset] ^= 1 << bit;
                std::fs::write(&path, &mutant).unwrap();
                match Journal::open(&path) {
                    Err(_) => {}
                    Ok((_, replayed)) => {
                        assert!(
                            replayed.len() <= records.len()
                                && replayed == records[..replayed.len()],
                            "offset {offset} bit {bit}: phantom or reordered records"
                        );
                    }
                }
            }
        }
    }
}
