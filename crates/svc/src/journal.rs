//! The append-only job journal.
//!
//! Every state transition the queue cares about across restarts is one
//! length-prefixed record appended (and flushed) before the transition is
//! acknowledged: SUBMIT when a job is accepted, RETRY when a job is
//! requeued after exhausting its attempt budget, RESULT when a job reaches
//! a terminal status. On startup the queue replays the journal front to
//! back; a crash can leave at most one partially-written record at the
//! tail, which replay tolerates by stopping there (the corresponding
//! transition was never acknowledged, so dropping it is correct).
//!
//! Record framing: `u32` big-endian payload length, then the payload
//! (kind byte + fields, via [`crate::wire`]).

use crate::digest::Digest;
use crate::queue::JobStatus;
use crate::wire::{self, Reader};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// One durable queue transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A job was accepted: `job` reproduces `bug` from the stored sketch.
    Submit {
        job: u64,
        bug: String,
        sketch: Digest,
    },
    /// A job was requeued for its `retries`-th retry.
    Retry { job: u64, retries: u32 },
    /// A job reached a terminal status.
    Result { job: u64, status: JobStatus },
}

const KIND_SUBMIT: u8 = 1;
const KIND_RETRY: u8 = 2;
const KIND_RESULT: u8 = 3;

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Submit { job, bug, sketch } => {
                out.push(KIND_SUBMIT);
                wire::put_u64(&mut out, *job);
                wire::put_str(&mut out, bug);
                wire::put_digest(&mut out, sketch);
            }
            Record::Retry { job, retries } => {
                out.push(KIND_RETRY);
                wire::put_u64(&mut out, *job);
                wire::put_u32(&mut out, *retries);
            }
            Record::Result { job, status } => {
                out.push(KIND_RESULT);
                wire::put_u64(&mut out, *job);
                status.encode(&mut out);
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = Reader(payload);
        let record = match r.u8()? {
            KIND_SUBMIT => Record::Submit {
                job: r.u64()?,
                bug: r.str()?.to_string(),
                sketch: r.digest()?,
            },
            KIND_RETRY => Record::Retry {
                job: r.u64()?,
                retries: r.u32()?,
            },
            KIND_RESULT => Record::Result {
                job: r.u64()?,
                status: JobStatus::decode(&mut r)?,
            },
            _ => return None,
        };
        r.is_done().then_some(record)
    }
}

/// An open journal, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, replaying every
    /// complete record already present. A truncated final record — the
    /// signature of a crash mid-append — is discarded; a malformed record
    /// *before* the tail means real corruption and is an error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Journal, Vec<Record>)> {
        let path = path.as_ref();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        let mut records = Vec::new();
        let mut cursor = &data[..];
        while !cursor.is_empty() {
            let Some((head, rest)) = cursor.split_at_checked(4) else {
                break; // partial length prefix at the tail
            };
            let len = u32::from_be_bytes(head.try_into().unwrap()) as usize;
            let Some((payload, rest)) = rest.split_at_checked(len) else {
                break; // partial payload at the tail
            };
            match Record::decode(payload) {
                Some(record) => records.push(record),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "malformed journal record at byte {} of {}",
                            data.len() - cursor.len(),
                            path.display()
                        ),
                    ))
                }
            }
            cursor = rest;
        }
        Ok((Journal { file }, records))
    }

    /// Appends one record and flushes it to the OS before returning.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let payload = record.encode();
        let mut framed = Vec::with_capacity(4 + payload.len());
        wire::put_u32(&mut framed, payload.len() as u32);
        framed.extend_from_slice(&payload);
        self.file.write_all(&framed)?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pres-svc-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Submit {
                job: 1,
                bug: "pbzip-order".into(),
                sketch: sha256(b"sketch"),
            },
            Record::Retry { job: 1, retries: 1 },
            Record::Result {
                job: 1,
                status: JobStatus::Succeeded {
                    attempts: 17,
                    certificate: sha256(b"cert"),
                },
            },
            Record::Result {
                job: 2,
                status: JobStatus::Failed {
                    message: "unknown bug 'nope'".into(),
                },
            },
        ]
    }

    #[test]
    fn append_then_replay() {
        let path = scratch("replay");
        let records = sample_records();
        {
            let (mut j, seeded) = Journal::open(&path).unwrap();
            assert!(seeded.is_empty());
            for r in &records {
                j.append(r).unwrap();
            }
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records);
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let path = scratch("truncated");
        let records = sample_records();
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for r in &records {
                j.append(r).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Chop the file mid-final-record at every possible byte offset.
        let last_len = {
            let (_, replayed) = Journal::open(&path).unwrap();
            assert_eq!(replayed.len(), records.len());
            let mut without_last = Vec::new();
            for r in &records[..records.len() - 1] {
                let p = r.encode();
                wire::put_u32(&mut without_last, p.len() as u32);
                without_last.extend_from_slice(&p);
            }
            full.len() - without_last.len()
        };
        for cut in 1..last_len {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let (_, replayed) = Journal::open(&path).unwrap();
            assert_eq!(replayed, records[..records.len() - 1], "cut {cut}");
        }
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = scratch("corrupt");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for r in sample_records() {
                j.append(&r).unwrap();
            }
        }
        let mut data = std::fs::read(&path).unwrap();
        data[4] = 0xee; // clobber the first record's kind byte
        std::fs::write(&path, &data).unwrap();
        assert!(Journal::open(&path).is_err());
    }
}
