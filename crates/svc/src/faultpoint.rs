//! Deterministic crash-point injection for the store and journal write
//! paths.
//!
//! A *fault point* names one place a process death can land inside a
//! durability-critical write sequence: before the staging write, between
//! write and fsync, between rename and the directory sync, and so on.
//! The store and journal call [`Faults::check`] (and, for torn writes,
//! [`Faults::torn`]) at every such point; production code passes
//! [`Faults::none`], which compiles down to an always-`Ok` pointer check.
//!
//! Tests arm exactly one fault — `(point, mode, nth hit)` — and drive a
//! write until it "crashes" (returns the injected error after leaving the
//! same on-disk state a SIGKILL at that instruction would). Dropping the
//! store/journal and reopening the same directory then *is* the restart,
//! and recovery invariants can be asserted per crash point:
//! [`FaultPoint::ALL`] enumerates the matrix so a test can prove every
//! point is covered.
//!
//! This simulates the crash *schedule* deterministically; the
//! `pres-torture` binary complements it by killing the real daemon
//! process at seeded wall-clock points, where the kernel — not this
//! module — decides what was durable.

use pres_tvm::sync::Mutex;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One injectable crash point in a durability-critical write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// `store::put`, before any staging byte is written: the crash leaves
    /// no trace (or an empty tmp file).
    StoreStageCrash,
    /// `store::put`, mid-staging-write: a torn tmp file exists, never
    /// published. Armed with [`FaultMode::Torn`].
    StoreStageTorn,
    /// `store::put`, staging bytes written but not yet fsynced.
    StoreTmpSyncCrash,
    /// `store::put`, staging file durable but `rename(2)` not yet issued.
    StoreRenameCrash,
    /// `store::put`, object renamed into place but the directory entries
    /// not yet fsynced.
    StoreDirSyncCrash,
    /// `journal::append`, before any frame byte is written.
    JournalWriteCrash,
    /// `journal::append`, mid-frame-write: a torn record at the tail.
    /// Armed with [`FaultMode::Torn`].
    JournalWriteTorn,
    /// `journal::append`, frame written but `fdatasync` not yet issued.
    JournalSyncCrash,
    /// Group commit: the leader claimed a cohort but has not yet written
    /// any of its bytes — the whole cohort vanishes, none of it acked.
    JournalCohortWriteCrash,
    /// Group commit: every cohort frame is written but the cohort's single
    /// `fdatasync` has not been issued — the batch-boundary twin of
    /// [`FaultPoint::JournalSyncCrash`]. Nothing in the cohort was acked,
    /// so the records may surface after replay (as unacknowledged work)
    /// or not, but never as garbage.
    JournalCohortSyncCrash,
    /// `flush::write_flush`, before any staging byte is written: the
    /// ring flush leaves no trace (or an empty tmp file).
    FlushStageCrash,
    /// `flush::write_flush`, mid-staging-write: a torn tmp file exists,
    /// never renamed into place. Armed with [`FaultMode::Torn`].
    FlushStageTorn,
    /// `flush::write_flush`, staging bytes written but not yet fsynced.
    FlushTmpSyncCrash,
    /// `flush::write_flush`, staging file durable but `rename(2)` not
    /// yet issued.
    FlushRenameCrash,
    /// `flush::write_flush`, sketch renamed into place but the directory
    /// entries not yet fsynced.
    FlushDirSyncCrash,
}

impl FaultPoint {
    /// Every crash point, in write-path order — the coverage matrix.
    pub const ALL: [FaultPoint; 15] = [
        FaultPoint::StoreStageCrash,
        FaultPoint::StoreStageTorn,
        FaultPoint::StoreTmpSyncCrash,
        FaultPoint::StoreRenameCrash,
        FaultPoint::StoreDirSyncCrash,
        FaultPoint::JournalWriteCrash,
        FaultPoint::JournalWriteTorn,
        FaultPoint::JournalSyncCrash,
        FaultPoint::JournalCohortWriteCrash,
        FaultPoint::JournalCohortSyncCrash,
        FaultPoint::FlushStageCrash,
        FaultPoint::FlushStageTorn,
        FaultPoint::FlushTmpSyncCrash,
        FaultPoint::FlushRenameCrash,
        FaultPoint::FlushDirSyncCrash,
    ];

    /// Stable human-readable name (used in injected-error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::StoreStageCrash => "store.put.stage",
            FaultPoint::StoreStageTorn => "store.put.stage-torn",
            FaultPoint::StoreTmpSyncCrash => "store.put.tmp-sync",
            FaultPoint::StoreRenameCrash => "store.put.rename",
            FaultPoint::StoreDirSyncCrash => "store.put.dir-sync",
            FaultPoint::JournalWriteCrash => "journal.append.write",
            FaultPoint::JournalWriteTorn => "journal.append.torn",
            FaultPoint::JournalSyncCrash => "journal.append.sync",
            FaultPoint::JournalCohortWriteCrash => "journal.commit.cohort-write",
            FaultPoint::JournalCohortSyncCrash => "journal.commit.cohort-sync",
            FaultPoint::FlushStageCrash => "flush.write.stage",
            FaultPoint::FlushStageTorn => "flush.write.stage-torn",
            FaultPoint::FlushTmpSyncCrash => "flush.write.tmp-sync",
            FaultPoint::FlushRenameCrash => "flush.write.rename",
            FaultPoint::FlushDirSyncCrash => "flush.write.dir-sync",
        }
    }

    /// Whether this point models a torn (partial) write rather than a
    /// clean stop. Torn points must be armed with [`FaultMode::Torn`].
    pub fn is_torn(self) -> bool {
        matches!(
            self,
            FaultPoint::StoreStageTorn | FaultPoint::JournalWriteTorn | FaultPoint::FlushStageTorn
        )
    }
}

/// How an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Stop before the guarded operation: nothing of it reaches disk.
    Crash,
    /// Perform a prefix of the guarded write (`keep` bytes, clamped to
    /// the write length), then stop.
    Torn { keep: usize },
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    point: FaultPoint,
    mode: FaultMode,
    /// Fires on the hit that decrements this to zero (1 = next hit).
    countdown: u64,
}

#[derive(Debug)]
struct Inner {
    armed: Mutex<Option<Armed>>,
    fired: AtomicBool,
}

/// A handle to the (at most one) armed fault, shared by every component
/// whose write path it can interrupt. Cloning shares the same fault.
#[derive(Debug, Clone, Default)]
pub struct Faults(Option<Arc<Inner>>);

/// The error an injected crash surfaces as. Callers treat it like any
/// other I/O failure; tests match on the message prefix.
pub const INJECTED: &str = "faultpoint: injected crash at ";

fn injected(point: FaultPoint) -> io::Error {
    io::Error::other(format!("{INJECTED}{}", point.name()))
}

impl Faults {
    /// The production handle: no faults, ever.
    pub fn none() -> Faults {
        Faults(None)
    }

    /// An injectable (initially unarmed) handle for tests and harnesses.
    pub fn new() -> Faults {
        Faults(Some(Arc::new(Inner {
            armed: Mutex::new(None),
            fired: AtomicBool::new(false),
        })))
    }

    /// Arms `point` to fire on its `nth` hit (1 = the very next one),
    /// replacing any previously armed fault and clearing [`fired`].
    ///
    /// Panics on a [`Faults::none`] handle (arming nothing is a test
    /// bug, not a runtime condition) and on a mode/point mismatch.
    ///
    /// [`fired`]: Faults::fired
    pub fn arm(&self, point: FaultPoint, mode: FaultMode, nth: u64) {
        assert!(
            point.is_torn() == matches!(mode, FaultMode::Torn { .. }),
            "fault point {} armed with mismatched mode {mode:?}",
            point.name()
        );
        assert!(nth >= 1, "nth is 1-based");
        let inner = self.0.as_ref().expect("arming a Faults::none() handle");
        *inner.armed.lock() = Some(Armed {
            point,
            mode,
            countdown: nth,
        });
        inner.fired.store(false, Ordering::SeqCst);
    }

    /// Disarms without firing.
    pub fn disarm(&self) {
        if let Some(inner) = &self.0 {
            *inner.armed.lock() = None;
        }
    }

    /// Whether the armed fault has fired since it was armed.
    pub fn fired(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|i| i.fired.load(Ordering::SeqCst))
    }

    /// A crash-mode hook: returns the injected error when the armed
    /// crash fault's countdown reaches this hit of `point`.
    pub fn check(&self, point: FaultPoint) -> io::Result<()> {
        let Some(inner) = &self.0 else { return Ok(()) };
        let mut armed = inner.armed.lock();
        match armed.as_mut() {
            Some(a) if a.point == point && a.mode == FaultMode::Crash => {
                a.countdown -= 1;
                if a.countdown == 0 {
                    *armed = None;
                    inner.fired.store(true, Ordering::SeqCst);
                    return Err(injected(point));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// A torn-write hook: when the armed torn fault's countdown reaches
    /// this hit of `point`, returns how many prefix bytes of the
    /// `len`-byte write to perform before crashing.
    pub fn torn(&self, point: FaultPoint, len: usize) -> Option<usize> {
        let inner = self.0.as_ref()?;
        let mut armed = inner.armed.lock();
        match armed.as_mut() {
            Some(a) if a.point == point => {
                let FaultMode::Torn { keep } = a.mode else {
                    return None;
                };
                a.countdown -= 1;
                if a.countdown == 0 {
                    *armed = None;
                    inner.fired.store(true, Ordering::SeqCst);
                    return Some(keep.min(len));
                }
                None
            }
            _ => None,
        }
    }

    /// The error a torn write returns after performing its prefix.
    pub fn torn_error(point: FaultPoint) -> io::Error {
        injected(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_handle_never_fires() {
        let f = Faults::none();
        for p in FaultPoint::ALL {
            if !p.is_torn() {
                assert!(f.check(p).is_ok());
            }
            assert_eq!(f.torn(p, 100), None);
        }
        assert!(!f.fired());
    }

    #[test]
    fn crash_fires_on_the_nth_hit_then_disarms() {
        let f = Faults::new();
        f.arm(FaultPoint::StoreRenameCrash, FaultMode::Crash, 3);
        assert!(f.check(FaultPoint::StoreRenameCrash).is_ok());
        // Other points never consume the countdown.
        assert!(f.check(FaultPoint::StoreStageCrash).is_ok());
        assert!(f.check(FaultPoint::StoreRenameCrash).is_ok());
        let err = f.check(FaultPoint::StoreRenameCrash).unwrap_err();
        assert!(err.to_string().contains("store.put.rename"), "{err}");
        assert!(f.fired());
        // One-shot: the same point is clean afterwards.
        assert!(f.check(FaultPoint::StoreRenameCrash).is_ok());
    }

    #[test]
    fn torn_returns_clamped_prefix_length() {
        let f = Faults::new();
        f.arm(
            FaultPoint::JournalWriteTorn,
            FaultMode::Torn { keep: 1000 },
            1,
        );
        assert_eq!(f.torn(FaultPoint::JournalWriteTorn, 10), Some(10));
        assert!(f.fired());
        f.arm(FaultPoint::JournalWriteTorn, FaultMode::Torn { keep: 3 }, 1);
        assert_eq!(f.torn(FaultPoint::JournalWriteTorn, 10), Some(3));
    }

    #[test]
    #[should_panic(expected = "mismatched mode")]
    fn torn_point_rejects_crash_mode() {
        Faults::new().arm(FaultPoint::StoreStageTorn, FaultMode::Crash, 1);
    }

    #[test]
    fn clones_share_the_armed_fault() {
        let f = Faults::new();
        let g = f.clone();
        f.arm(FaultPoint::JournalSyncCrash, FaultMode::Crash, 1);
        assert!(g.check(FaultPoint::JournalSyncCrash).is_err());
        assert!(f.fired());
    }
}
