//! The daemon's metrics surface.
//!
//! Lock-free atomic counters bumped from the accept loop, connection
//! handlers, and job workers, plus a coarse submit→certificate latency
//! histogram. Snapshots feed two consumers: the STATS protocol response
//! and the periodic one-line log the server emits while running. The
//! histogram's bucket bounds are powers of ten in milliseconds — queue
//! latency spans orders of magnitude, and order-of-magnitude is the
//! question operators actually ask.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (milliseconds, inclusive) of the latency buckets; the last
/// bucket is unbounded.
pub const LATENCY_BOUNDS_MS: [u64; 5] = [1, 10, 100, 1_000, 10_000];

/// Shared atomic counters. One instance lives for the server's lifetime.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Frames rejected as malformed/oversized (connection dropped, server
    /// kept serving).
    pub frames_rejected: AtomicU64,
    /// SUBMIT requests accepted (including dedup hits).
    pub submits: AtomicU64,
    /// SUBMITs answered from an existing object + job.
    pub dedup_hits: AtomicU64,
    /// Jobs finished with a minted certificate.
    pub jobs_succeeded: AtomicU64,
    /// Jobs that exhausted their attempt budget (after all retries).
    pub jobs_exhausted: AtomicU64,
    /// Jobs cut short by the per-job wall-clock timeout.
    pub jobs_timed_out: AtomicU64,
    /// Jobs rejected before exploration (unknown bug, undecodable sketch).
    pub jobs_failed: AtomicU64,
    /// Retry requeues.
    pub retries: AtomicU64,
    /// Total exploration attempts spent across all jobs.
    pub attempts: AtomicU64,
    /// Submit→terminal-status latency histogram.
    latency: [AtomicU64; LATENCY_BOUNDS_MS.len() + 1],
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one job's submit→terminal latency.
    pub fn observe_latency(&self, elapsed: Duration) {
        let ms = elapsed.as_millis() as u64;
        let bucket = LATENCY_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(LATENCY_BOUNDS_MS.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Snapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Snapshot {
            connections: load(&self.connections),
            frames_rejected: load(&self.frames_rejected),
            submits: load(&self.submits),
            dedup_hits: load(&self.dedup_hits),
            jobs_succeeded: load(&self.jobs_succeeded),
            jobs_exhausted: load(&self.jobs_exhausted),
            jobs_timed_out: load(&self.jobs_timed_out),
            jobs_failed: load(&self.jobs_failed),
            retries: load(&self.retries),
            attempts: load(&self.attempts),
            latency: std::array::from_fn(|i| load(&self.latency[i])),
        }
    }
}

/// A consistent-enough copy of the counters (individually atomic reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    pub connections: u64,
    pub frames_rejected: u64,
    pub submits: u64,
    pub dedup_hits: u64,
    pub jobs_succeeded: u64,
    pub jobs_exhausted: u64,
    pub jobs_timed_out: u64,
    pub jobs_failed: u64,
    pub retries: u64,
    pub attempts: u64,
    pub latency: [u64; LATENCY_BOUNDS_MS.len() + 1],
}

impl Snapshot {
    /// Jobs that reached any terminal status.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_succeeded + self.jobs_exhausted + self.jobs_timed_out + self.jobs_failed
    }

    /// The compact one-line form used by the periodic server log.
    pub fn log_line(&self) -> String {
        format!(
            "svc: conns={} submits={} (dedup {}) done={} (ok {} / exhausted {} / timeout {} / failed {}) retries={} attempts={} rejected-frames={}",
            self.connections,
            self.submits,
            self.dedup_hits,
            self.jobs_finished(),
            self.jobs_succeeded,
            self.jobs_exhausted,
            self.jobs_timed_out,
            self.jobs_failed,
            self.retries,
            self.attempts,
            self.frames_rejected,
        )
    }
}

impl std::fmt::Display for Snapshot {
    /// The multi-line rendering served to STATS clients.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "connections        {}", self.connections)?;
        writeln!(f, "frames_rejected    {}", self.frames_rejected)?;
        writeln!(f, "submits            {}", self.submits)?;
        writeln!(f, "dedup_hits         {}", self.dedup_hits)?;
        writeln!(f, "jobs_succeeded     {}", self.jobs_succeeded)?;
        writeln!(f, "jobs_exhausted     {}", self.jobs_exhausted)?;
        writeln!(f, "jobs_timed_out     {}", self.jobs_timed_out)?;
        writeln!(f, "jobs_failed        {}", self.jobs_failed)?;
        writeln!(f, "retries            {}", self.retries)?;
        writeln!(f, "attempts           {}", self.attempts)?;
        write!(f, "latency_ms        ")?;
        for (i, count) in self.latency.iter().enumerate() {
            match LATENCY_BOUNDS_MS.get(i) {
                Some(bound) => write!(f, " <={bound}:{count}")?,
                None => write!(f, " inf:{count}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(500)); // <=1ms
        m.observe_latency(Duration::from_millis(10)); // <=10ms (inclusive)
        m.observe_latency(Duration::from_millis(11)); // <=100ms
        m.observe_latency(Duration::from_secs(60)); // inf
        assert_eq!(m.snapshot().latency, [1, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn snapshot_renders_both_forms() {
        let m = Metrics::new();
        m.submits.fetch_add(3, Ordering::Relaxed);
        m.dedup_hits.fetch_add(1, Ordering::Relaxed);
        m.jobs_succeeded.fetch_add(2, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.jobs_finished(), 2);
        assert!(snap.log_line().contains("submits=3 (dedup 1)"));
        let long = snap.to_string();
        assert!(long.contains("submits            3"));
        assert!(long.contains("latency_ms"));
    }
}
