//! The daemon's metrics surface.
//!
//! Lock-free atomic counters bumped from the accept loop, connection
//! handlers, and job workers, plus a coarse submit→certificate latency
//! histogram. Snapshots feed two consumers: the STATS protocol response
//! and the periodic one-line log the server emits while running. The
//! histogram's bucket bounds are powers of ten in milliseconds — queue
//! latency spans orders of magnitude, and order-of-magnitude is the
//! question operators actually ask.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (milliseconds, inclusive) of the latency buckets; the last
/// bucket is unbounded.
pub const LATENCY_BOUNDS_MS: [u64; 5] = [1, 10, 100, 1_000, 10_000];

/// Shared atomic counters. One instance lives for the server's lifetime.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Accepted connections.
    pub connections: AtomicU64,
    /// Connections refused at the cap (answered with one ERROR frame).
    pub connections_refused: AtomicU64,
    /// Connections currently open (a gauge: incremented on accept,
    /// decremented on close).
    pub connections_live: AtomicU64,
    /// Times a connection's reads were paused because its in-flight
    /// response window filled (pipelining backpressure).
    pub window_stalls: AtomicU64,
    /// SUBMITs that arrived over the chunked streaming path.
    pub streaming_submits: AtomicU64,
    /// Frames rejected as malformed/oversized (connection dropped, server
    /// kept serving).
    pub frames_rejected: AtomicU64,
    /// SUBMIT requests accepted (including dedup hits).
    pub submits: AtomicU64,
    /// SUBMITs answered from an existing object + job.
    pub dedup_hits: AtomicU64,
    /// Jobs finished with a minted certificate.
    pub jobs_succeeded: AtomicU64,
    /// Jobs that exhausted their attempt budget (after all retries).
    pub jobs_exhausted: AtomicU64,
    /// Jobs cut short by the per-job wall-clock timeout.
    pub jobs_timed_out: AtomicU64,
    /// Jobs rejected before exploration (unknown bug, undecodable sketch).
    pub jobs_failed: AtomicU64,
    /// Retry requeues.
    pub retries: AtomicU64,
    /// Total exploration attempts spent across all jobs.
    pub attempts: AtomicU64,
    /// Job executions whose sketch carried a ring-flush checkpoint —
    /// replay started from a retained-window boundary, not from genesis.
    pub jobs_from_checkpoint: AtomicU64,
    /// Records group-committed to the journal.
    pub journal_records: AtomicU64,
    /// `fdatasync` calls the journal issued — one per commit cohort, so
    /// `journal_records / journal_syncs` is the mean cohort size.
    pub journal_syncs: AtomicU64,
    /// Largest cohort a single sync covered (updated with `fetch_max`).
    pub journal_cohort_max: AtomicU64,
    /// Journal appends that returned an error (submit refused, or a
    /// retry/result record lost for this process lifetime) — the "is the
    /// disk dying?" counter.
    pub journal_append_failures: AtomicU64,
    /// Job executions served a decoded sketch + index from the cache
    /// (no disk read, no SHA-256 re-verify, no decode).
    pub sketch_cache_hits: AtomicU64,
    /// Job executions that went to the store and decoded the sketch.
    pub sketch_cache_misses: AtomicU64,
    /// Cache entries evicted to fit the byte budget.
    pub sketch_cache_evictions: AtomicU64,
    /// Node-to-node RPCs this node issued (puts, gets, stats, lists,
    /// steals, done reports — every peer round trip).
    pub peer_rpcs: AtomicU64,
    /// Object payload bytes this node pushed to peers.
    pub peer_bytes_out: AtomicU64,
    /// Object payload bytes this node pulled from peers.
    pub peer_bytes_in: AtomicU64,
    /// Jobs this node stole from peers and executed.
    pub steals: AtomicU64,
    /// Queued jobs this node handed to stealing peers.
    pub stolen_served: AtomicU64,
    /// Objects fetched from peers by the repair pass (self is an owner
    /// but had no local copy).
    pub repair_pulled: AtomicU64,
    /// Objects pushed to under-replicated owners by the repair pass.
    pub repair_pushed: AtomicU64,
    /// Submit→terminal-status latency histogram.
    latency: [AtomicU64; LATENCY_BOUNDS_MS.len() + 1],
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one job's submit→terminal latency.
    pub fn observe_latency(&self, elapsed: Duration) {
        let ms = elapsed.as_millis() as u64;
        let bucket = LATENCY_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(LATENCY_BOUNDS_MS.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Snapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Snapshot {
            connections: load(&self.connections),
            connections_refused: load(&self.connections_refused),
            connections_live: load(&self.connections_live),
            window_stalls: load(&self.window_stalls),
            streaming_submits: load(&self.streaming_submits),
            frames_rejected: load(&self.frames_rejected),
            submits: load(&self.submits),
            dedup_hits: load(&self.dedup_hits),
            jobs_succeeded: load(&self.jobs_succeeded),
            jobs_exhausted: load(&self.jobs_exhausted),
            jobs_timed_out: load(&self.jobs_timed_out),
            jobs_failed: load(&self.jobs_failed),
            retries: load(&self.retries),
            attempts: load(&self.attempts),
            jobs_from_checkpoint: load(&self.jobs_from_checkpoint),
            journal_records: load(&self.journal_records),
            journal_syncs: load(&self.journal_syncs),
            journal_cohort_max: load(&self.journal_cohort_max),
            journal_append_failures: load(&self.journal_append_failures),
            sketch_cache_hits: load(&self.sketch_cache_hits),
            sketch_cache_misses: load(&self.sketch_cache_misses),
            sketch_cache_evictions: load(&self.sketch_cache_evictions),
            peer_rpcs: load(&self.peer_rpcs),
            peer_bytes_out: load(&self.peer_bytes_out),
            peer_bytes_in: load(&self.peer_bytes_in),
            steals: load(&self.steals),
            stolen_served: load(&self.stolen_served),
            repair_pulled: load(&self.repair_pulled),
            repair_pushed: load(&self.repair_pushed),
            latency: std::array::from_fn(|i| load(&self.latency[i])),
        }
    }
}

/// A consistent-enough copy of the counters (individually atomic reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    pub connections: u64,
    pub connections_refused: u64,
    pub connections_live: u64,
    pub window_stalls: u64,
    pub streaming_submits: u64,
    pub frames_rejected: u64,
    pub submits: u64,
    pub dedup_hits: u64,
    pub jobs_succeeded: u64,
    pub jobs_exhausted: u64,
    pub jobs_timed_out: u64,
    pub jobs_failed: u64,
    pub retries: u64,
    pub attempts: u64,
    pub jobs_from_checkpoint: u64,
    pub journal_records: u64,
    pub journal_syncs: u64,
    pub journal_cohort_max: u64,
    pub journal_append_failures: u64,
    pub sketch_cache_hits: u64,
    pub sketch_cache_misses: u64,
    pub sketch_cache_evictions: u64,
    pub peer_rpcs: u64,
    pub peer_bytes_out: u64,
    pub peer_bytes_in: u64,
    pub steals: u64,
    pub stolen_served: u64,
    pub repair_pulled: u64,
    pub repair_pushed: u64,
    pub latency: [u64; LATENCY_BOUNDS_MS.len() + 1],
}

/// A percentile read off the coarse latency histogram: the bucket the
/// cumulative count crosses in, not an interpolated value — honest about
/// the histogram's order-of-magnitude resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyEstimate {
    /// No observations yet.
    Empty,
    /// The percentile falls in a bounded bucket: at most this many ms.
    AtMostMs(u64),
    /// The percentile falls in the unbounded bucket: over this many ms.
    OverMs(u64),
}

impl std::fmt::Display for LatencyEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyEstimate::Empty => write!(f, "n/a"),
            LatencyEstimate::AtMostMs(ms) => write!(f, "<={ms}ms"),
            LatencyEstimate::OverMs(ms) => write!(f, ">{ms}ms"),
        }
    }
}

impl Snapshot {
    /// Jobs that reached any terminal status.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_succeeded + self.jobs_exhausted + self.jobs_timed_out + self.jobs_failed
    }

    /// Mean records per journal `fdatasync` — the group-commit win, as a
    /// ratio (1.0 = per-record syncing, the PR 6 behavior).
    pub fn journal_mean_cohort(&self) -> f64 {
        if self.journal_syncs == 0 {
            0.0
        } else {
            self.journal_records as f64 / self.journal_syncs as f64
        }
    }

    /// The bucket the `p`th percentile (0 < p <= 100) of observed
    /// latencies falls in.
    pub fn latency_percentile(&self, p: f64) -> LatencyEstimate {
        let total: u64 = self.latency.iter().sum();
        if total == 0 {
            return LatencyEstimate::Empty;
        }
        // The rank of the percentile observation, 1-based, ceiling — the
        // nearest-rank definition (p99 of 100 samples is sample #99).
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, count) in self.latency.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return match LATENCY_BOUNDS_MS.get(i) {
                    Some(&bound) => LatencyEstimate::AtMostMs(bound),
                    None => LatencyEstimate::OverMs(*LATENCY_BOUNDS_MS.last().unwrap()),
                };
            }
        }
        unreachable!("rank is bounded by the total")
    }

    /// The compact one-line form used by the periodic server log.
    pub fn log_line(&self) -> String {
        format!(
            "svc: conns={} (live {} / refused {}) submits={} (dedup {}, streamed {}) done={} (ok {} / exhausted {} / timeout {} / failed {}) retries={} attempts={} ckpt-jobs={} stalls={} rejected-frames={} journal={}r/{}s (mean {:.1}, max {}, failures {}) cache={}h/{}m (evicted {}) peers={}rpc ({}B out / {}B in) steals={}/{} repair={}/{} p50={} p95={} p99={}",
            self.connections,
            self.connections_live,
            self.connections_refused,
            self.submits,
            self.dedup_hits,
            self.streaming_submits,
            self.jobs_finished(),
            self.jobs_succeeded,
            self.jobs_exhausted,
            self.jobs_timed_out,
            self.jobs_failed,
            self.retries,
            self.attempts,
            self.jobs_from_checkpoint,
            self.window_stalls,
            self.frames_rejected,
            self.journal_records,
            self.journal_syncs,
            self.journal_mean_cohort(),
            self.journal_cohort_max,
            self.journal_append_failures,
            self.sketch_cache_hits,
            self.sketch_cache_misses,
            self.sketch_cache_evictions,
            self.peer_rpcs,
            self.peer_bytes_out,
            self.peer_bytes_in,
            self.steals,
            self.stolen_served,
            self.repair_pulled,
            self.repair_pushed,
            self.latency_percentile(50.0),
            self.latency_percentile(95.0),
            self.latency_percentile(99.0),
        )
    }
}

impl std::fmt::Display for Snapshot {
    /// The multi-line rendering served to STATS clients.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "connections        {}", self.connections)?;
        writeln!(f, "connections_refused {}", self.connections_refused)?;
        writeln!(f, "connections_live   {}", self.connections_live)?;
        writeln!(f, "window_stalls      {}", self.window_stalls)?;
        writeln!(f, "streaming_submits  {}", self.streaming_submits)?;
        writeln!(f, "frames_rejected    {}", self.frames_rejected)?;
        writeln!(f, "submits            {}", self.submits)?;
        writeln!(f, "dedup_hits         {}", self.dedup_hits)?;
        writeln!(f, "jobs_succeeded     {}", self.jobs_succeeded)?;
        writeln!(f, "jobs_exhausted     {}", self.jobs_exhausted)?;
        writeln!(f, "jobs_timed_out     {}", self.jobs_timed_out)?;
        writeln!(f, "jobs_failed        {}", self.jobs_failed)?;
        writeln!(f, "retries            {}", self.retries)?;
        writeln!(f, "attempts           {}", self.attempts)?;
        writeln!(f, "jobs_from_checkpoint {}", self.jobs_from_checkpoint)?;
        writeln!(f, "journal_records    {}", self.journal_records)?;
        writeln!(f, "journal_syncs      {}", self.journal_syncs)?;
        writeln!(f, "journal_mean_cohort {:.2}", self.journal_mean_cohort())?;
        writeln!(f, "journal_cohort_max {}", self.journal_cohort_max)?;
        writeln!(f, "journal_append_failures {}", self.journal_append_failures)?;
        writeln!(f, "sketch_cache_hits  {}", self.sketch_cache_hits)?;
        writeln!(f, "sketch_cache_misses {}", self.sketch_cache_misses)?;
        writeln!(f, "sketch_cache_evictions {}", self.sketch_cache_evictions)?;
        writeln!(f, "peer_rpcs          {}", self.peer_rpcs)?;
        writeln!(f, "peer_bytes_out     {}", self.peer_bytes_out)?;
        writeln!(f, "peer_bytes_in      {}", self.peer_bytes_in)?;
        writeln!(f, "steals             {}", self.steals)?;
        writeln!(f, "stolen_served      {}", self.stolen_served)?;
        writeln!(f, "repair_pulled      {}", self.repair_pulled)?;
        writeln!(f, "repair_pushed      {}", self.repair_pushed)?;
        writeln!(f, "latency_p50        {}", self.latency_percentile(50.0))?;
        writeln!(f, "latency_p95        {}", self.latency_percentile(95.0))?;
        writeln!(f, "latency_p99        {}", self.latency_percentile(99.0))?;
        write!(f, "latency_ms        ")?;
        for (i, count) in self.latency.iter().enumerate() {
            match LATENCY_BOUNDS_MS.get(i) {
                Some(bound) => write!(f, " <={bound}:{count}")?,
                None => write!(f, " inf:{count}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(500)); // <=1ms
        m.observe_latency(Duration::from_millis(10)); // <=10ms (inclusive)
        m.observe_latency(Duration::from_millis(11)); // <=100ms
        m.observe_latency(Duration::from_secs(60)); // inf
        assert_eq!(m.snapshot().latency, [1, 1, 1, 0, 0, 1]);
    }

    #[test]
    fn percentiles_follow_the_nearest_rank_rule() {
        let m = Metrics::new();
        assert_eq!(m.snapshot().latency_percentile(99.0), LatencyEstimate::Empty);
        // 98 fast observations, one mid, one catastrophic: p50 stays in
        // the fastest bucket, p99 lands on the mid one, p100 the tail.
        for _ in 0..98 {
            m.observe_latency(Duration::from_micros(100));
        }
        m.observe_latency(Duration::from_millis(500));
        m.observe_latency(Duration::from_secs(100));
        let snap = m.snapshot();
        assert_eq!(snap.latency_percentile(50.0), LatencyEstimate::AtMostMs(1));
        assert_eq!(snap.latency_percentile(98.0), LatencyEstimate::AtMostMs(1));
        assert_eq!(
            snap.latency_percentile(99.0),
            LatencyEstimate::AtMostMs(1_000)
        );
        assert_eq!(
            snap.latency_percentile(100.0),
            LatencyEstimate::OverMs(10_000)
        );
        assert_eq!(snap.latency_percentile(100.0).to_string(), ">10000ms");
    }

    #[test]
    fn snapshot_renders_both_forms() {
        let m = Metrics::new();
        m.submits.fetch_add(3, Ordering::Relaxed);
        m.dedup_hits.fetch_add(1, Ordering::Relaxed);
        m.jobs_succeeded.fetch_add(2, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.jobs_finished(), 2);
        assert!(snap.log_line().contains("submits=3 (dedup 1, streamed 0)"));
        assert!(snap.log_line().contains("p99=n/a"));
        let long = snap.to_string();
        assert!(long.contains("submits            3"));
        assert!(long.contains("connections_refused 0"));
        assert!(long.contains("window_stalls      0"));
        assert!(long.contains("latency_p99        n/a"));
        assert!(long.contains("latency_ms"));
    }

    #[test]
    fn cluster_counters_render_in_both_forms() {
        let m = Metrics::new();
        m.peer_rpcs.fetch_add(5, Ordering::Relaxed);
        m.peer_bytes_out.fetch_add(1024, Ordering::Relaxed);
        m.steals.fetch_add(2, Ordering::Relaxed);
        m.stolen_served.fetch_add(3, Ordering::Relaxed);
        m.repair_pulled.fetch_add(1, Ordering::Relaxed);
        let snap = m.snapshot();
        assert!(snap
            .log_line()
            .contains("peers=5rpc (1024B out / 0B in) steals=2/3 repair=1/0"));
        let long = snap.to_string();
        assert!(long.contains("peer_rpcs          5"));
        assert!(long.contains("peer_bytes_out     1024"));
        assert!(long.contains("steals             2"));
        assert!(long.contains("stolen_served      3"));
        assert!(long.contains("repair_pulled      1"));
        assert!(long.contains("repair_pushed      0"));
    }
}
