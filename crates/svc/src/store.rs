//! The content-addressed object store.
//!
//! Sketch containers and minted certificates are immutable blobs, so the
//! store keys them by SHA-256 and never overwrites: submitting the same
//! sketch twice costs one hash and zero disk writes. Layout mirrors git's
//! loose objects —
//!
//! ```text
//! <root>/objects/ab/cdef...   # first hex byte is the fan-out directory
//! <root>/tmp/                 # staging area for atomic ingest
//! ```
//!
//! Writes land in `tmp/` first and are published with `rename(2)`, which is
//! atomic on POSIX: a crash mid-ingest leaves a stale temp file (swept on
//! the next open) but never a truncated object. Because the name *is* the
//! hash, a rebuild after any crash is just a directory walk.

use crate::digest::{sha256, Digest};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A content-addressed blob store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    /// Monotone counter naming temp files; uniqueness matters only within
    /// this process (cross-process staging races are resolved by rename).
    tmp_seq: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store at `root`, sweeping any staging
    /// files a previous crash left behind and verifying the object
    /// directory is readable. Returns the store and the number of objects
    /// already present — the crash-safe "index rebuild" is exactly this
    /// walk, because object names are their own index.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<(Store, usize)> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        std::fs::create_dir_all(root.join("tmp"))?;
        for entry in std::fs::read_dir(root.join("tmp"))? {
            let entry = entry?;
            // Best effort: a sweep failure leaves garbage, not corruption.
            let _ = std::fs::remove_file(entry.path());
        }
        let store = Store {
            root,
            tmp_seq: AtomicU64::new(0),
        };
        let count = store.walk_count()?;
        Ok((store, count))
    }

    fn walk_count(&self) -> io::Result<usize> {
        let mut count = 0;
        for fan in std::fs::read_dir(self.root.join("objects"))? {
            let fan = fan?;
            if !fan.file_type()?.is_dir() {
                continue;
            }
            for obj in std::fs::read_dir(fan.path())? {
                let obj = obj?;
                let name = format!(
                    "{}{}",
                    fan.file_name().to_string_lossy(),
                    obj.file_name().to_string_lossy()
                );
                if Digest::from_hex(&name).is_some() {
                    count += 1;
                }
            }
        }
        Ok(count)
    }

    fn object_path(&self, digest: &Digest) -> PathBuf {
        let hex = digest.to_hex();
        self.root.join("objects").join(&hex[..2]).join(&hex[2..])
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Ingests a blob. Returns its digest and whether a new object was
    /// written (`false` = content already present, nothing touched disk
    /// beyond the existence probe).
    pub fn put(&self, data: &[u8]) -> io::Result<(Digest, bool)> {
        let digest = sha256(data);
        let path = self.object_path(&digest);
        if path.exists() {
            return Ok((digest, false));
        }
        let tmp = self.root.join("tmp").join(format!(
            "ingest-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, data)?;
        std::fs::create_dir_all(path.parent().expect("object path has fan-out parent"))?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok((digest, true)),
            Err(e) => {
                // A concurrent ingest of the same content may have won the
                // rename race; identical bytes mean either outcome is fine.
                let _ = std::fs::remove_file(&tmp);
                if path.exists() {
                    Ok((digest, false))
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Whether an object is present.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.object_path(digest).exists()
    }

    /// Reads an object back, verifying its content still matches its name
    /// (silent disk corruption surfaces here, not in a replay).
    pub fn get(&self, digest: &Digest) -> io::Result<Option<Vec<u8>>> {
        let path = self.object_path(digest);
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if sha256(&data) != *digest {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("object {digest} fails content verification"),
            ));
        }
        Ok(Some(data))
    }

    /// Number of objects currently stored (a directory walk; cheap at the
    /// corpus scales this daemon serves).
    pub fn len(&self) -> io::Result<usize> {
        self.walk_count()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pres-svc-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let (store, seeded) = Store::open(scratch("roundtrip")).unwrap();
        assert_eq!(seeded, 0);
        let (d1, fresh1) = store.put(b"sketch bytes").unwrap();
        assert!(fresh1);
        let (d2, fresh2) = store.put(b"sketch bytes").unwrap();
        assert_eq!(d1, d2);
        assert!(!fresh2, "second put of identical content must dedup");
        assert_eq!(store.get(&d1).unwrap().unwrap(), b"sketch bytes");
        assert_eq!(store.len().unwrap(), 1);
    }

    #[test]
    fn missing_object_is_none() {
        let (store, _) = Store::open(scratch("missing")).unwrap();
        let ghost = sha256(b"never stored");
        assert_eq!(store.get(&ghost).unwrap(), None);
        assert!(!store.contains(&ghost));
    }

    #[test]
    fn reopen_rebuilds_the_index_and_sweeps_staging() {
        let root = scratch("reopen");
        let digests: Vec<Digest> = {
            let (store, _) = Store::open(&root).unwrap();
            (0..5u8)
                .map(|i| store.put(&[i; 100]).unwrap().0)
                .collect()
        };
        // Simulate a crash mid-ingest: a stale staging file survives.
        std::fs::write(root.join("tmp").join("ingest-crashed"), b"partial").unwrap();
        let (store, seeded) = Store::open(&root).unwrap();
        assert_eq!(seeded, 5);
        assert!(std::fs::read_dir(root.join("tmp")).unwrap().next().is_none());
        for (i, d) in digests.iter().enumerate() {
            assert_eq!(store.get(d).unwrap().unwrap(), vec![i as u8; 100]);
        }
    }

    #[test]
    fn corrupted_object_fails_verification() {
        let root = scratch("corrupt");
        let (store, _) = Store::open(&root).unwrap();
        let (d, _) = store.put(b"pristine").unwrap();
        let hex = d.to_hex();
        let path = root.join("objects").join(&hex[..2]).join(&hex[2..]);
        std::fs::write(&path, b"tampered").unwrap();
        let err = store.get(&d).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
