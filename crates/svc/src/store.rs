//! The content-addressed object store.
//!
//! Sketch containers and minted certificates are immutable blobs, so the
//! store keys them by SHA-256 and never overwrites: submitting the same
//! sketch twice costs one hash and zero disk writes. Layout mirrors git's
//! loose objects —
//!
//! ```text
//! <root>/objects/ab/cdef...   # first hex byte is the fan-out directory
//! <root>/tmp/                 # staging area for atomic ingest
//! <root>/quarantine/          # objects that failed self-verification
//! ```
//!
//! Publication is tmp-write → fsync(tmp file) → `rename(2)` →
//! fsync(destination dir) → fsync(tmp dir): the rename is atomic on
//! POSIX *and* every link in the chain is forced down before `put`
//! returns, so an acknowledged object survives power loss, not just
//! process death. A crash mid-ingest leaves a stale temp file (swept on
//! the next open) but never a truncated object. Because the name *is*
//! the hash, a rebuild after any crash is just a directory walk, and
//! [`Store::fsck`] makes the walk adversarial: every object is re-hashed
//! and mismatches are quarantined (moved aside, never served again from
//! their digest path — a later `put` of the true bytes re-ingests
//! cleanly).
//!
//! Each fallible step is guarded by a [`Faults`] crash point so tests can
//! stop the sequence at any link and assert what a restart observes.
//!
//! Immutability is also what makes the queue's decode cache
//! ([`crate::cache::SketchCache`]) sound: a digest's bytes never change,
//! so a hot sketch skips [`Store::get`] — and the read + hash-verify +
//! decode behind it — entirely, with no invalidation protocol needed.

use crate::cluster::Cluster;
use crate::digest::{sha256, Digest, Sha256};
use crate::faultpoint::{FaultPoint, Faults};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// An in-progress streaming ingest: chunks are digested incrementally and
/// spilled straight into a staging file, so ingesting a multi-MB blob
/// never holds more than one chunk in memory. Obtained from
/// [`Store::put_streaming`]; finish with [`StreamingPut::finish`] (which
/// runs the same dedup + atomic-publish + fsync chain as [`Store::put`])
/// or drop it to abort, which removes the staging file.
#[derive(Debug)]
pub struct StreamingPut<'a> {
    store: &'a Store,
    file: Option<File>,
    tmp: PathBuf,
    hasher: Sha256,
    written: u64,
}

impl StreamingPut<'_> {
    /// Appends one chunk to the staging file and the running digest.
    pub fn write(&mut self, chunk: &[u8]) -> io::Result<()> {
        let file = self
            .file
            .as_mut()
            .expect("write after finish/abort on a StreamingPut");
        if let Some(keep) = self
            .store
            .faults
            .torn(FaultPoint::StoreStageTorn, chunk.len())
        {
            file.write_all(&chunk[..keep])?;
            let _ = file.sync_all();
            return Err(Faults::torn_error(FaultPoint::StoreStageTorn));
        }
        file.write_all(chunk)?;
        self.hasher.update(chunk);
        self.written += chunk.len() as u64;
        Ok(())
    }

    /// Bytes streamed so far — the server's stream-size cap reads this.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Syncs the staged bytes, then publishes them under their digest.
    /// Returns the digest and whether a new object was written (`false` =
    /// identical content was already published; the staging file is
    /// discarded). A fresh object replicates to its remote owners when
    /// the store is clustered, exactly like [`Store::put`].
    pub fn finish(self) -> io::Result<(Digest, bool)> {
        let store = self.store;
        let (digest, fresh) = self.finish_local()?;
        if fresh {
            if let Some(cluster) = store.cluster() {
                cluster.replicate(&digest, store);
            }
        }
        Ok((digest, fresh))
    }

    /// [`StreamingPut::finish`] without the replication push — the
    /// receiving half of a peer transfer, which must not fan out again.
    pub fn finish_local(mut self) -> io::Result<(Digest, bool)> {
        let file = self
            .file
            .take()
            .expect("finish called twice on a StreamingPut");
        self.store.faults.check(FaultPoint::StoreTmpSyncCrash)?;
        // The staged bytes must be durable BEFORE the rename: a rename of
        // an unsynced file can publish a name whose content is lost by
        // power failure.
        file.sync_all()?;
        drop(file);
        let digest = self.hasher.clone().finalize();
        let fresh = self.store.publish(&self.tmp, &digest)?;
        Ok((digest, fresh))
    }
}

impl Drop for StreamingPut<'_> {
    fn drop(&mut self) {
        // An unfinished stream (client disconnect, protocol error, crash
        // of the handler) must not leak staging files; publication already
        // happened if `finish` consumed the file.
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// What [`Store::fsck`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsckReport {
    /// Objects that re-hashed to their own name.
    pub verified: usize,
    /// Objects whose bytes mismatched their name, now moved to
    /// `quarantine/`.
    pub quarantined: usize,
}

/// A content-addressed blob store rooted at one directory.
///
/// With a [`Cluster`] attached ([`Store::attach_cluster`]) the store
/// becomes one shard of a replicated cluster store: `put` publishes
/// locally first (the durability ack is always backed by a local,
/// fsynced copy) and then pushes the fresh object to its remote owners;
/// `get` falls back to fetching a local miss from the cluster,
/// re-publishing it locally when this node is an owner. The `*_local`
/// variants never touch the network — peer-facing server handlers use
/// them, which is what makes routed lookups cycle-free.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    /// Monotone counter naming temp files; uniqueness matters only within
    /// this process (cross-process staging races are resolved by rename).
    tmp_seq: AtomicU64,
    faults: Faults,
    /// Set once at server startup when this node joins a cluster.
    cluster: OnceLock<Arc<Cluster>>,
}

/// Opens `dir` and fsyncs it, making recently created/renamed/unlinked
/// entries durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Store {
    /// Opens (creating if needed) a store at `root`, sweeping any staging
    /// files a previous crash left behind and verifying the object
    /// directory is readable. Returns the store and the number of objects
    /// already present — the crash-safe "index rebuild" is exactly this
    /// walk, because object names are their own index.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<(Store, usize)> {
        Store::open_with_faults(root, Faults::none())
    }

    /// [`Store::open`] with an injectable crash-point handle (tests and
    /// the torture harness).
    pub fn open_with_faults(
        root: impl Into<PathBuf>,
        faults: Faults,
    ) -> io::Result<(Store, usize)> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        std::fs::create_dir_all(root.join("tmp"))?;
        std::fs::create_dir_all(root.join("quarantine"))?;
        let mut swept = false;
        for entry in std::fs::read_dir(root.join("tmp"))? {
            let entry = entry?;
            // Best effort: a sweep failure leaves garbage, not corruption.
            swept |= std::fs::remove_file(entry.path()).is_ok();
        }
        if swept {
            let _ = sync_dir(&root.join("tmp"));
        }
        let store = Store {
            root,
            tmp_seq: AtomicU64::new(0),
            faults,
            cluster: OnceLock::new(),
        };
        let count = store.walk_count()?;
        Ok((store, count))
    }

    /// Joins this store to a cluster: subsequent `put`s replicate fresh
    /// objects to their remote owners and `get`s route local misses.
    /// Call once, before serving traffic; a second call is ignored.
    pub fn attach_cluster(&self, cluster: Arc<Cluster>) {
        let _ = self.cluster.set(cluster);
    }

    /// The attached cluster, if any.
    pub fn cluster(&self) -> Option<&Arc<Cluster>> {
        self.cluster.get()
    }

    /// Every digest currently published (directory-walk order).
    fn walk(&self) -> io::Result<Vec<Digest>> {
        let mut digests = Vec::new();
        for fan in std::fs::read_dir(self.root.join("objects"))? {
            let fan = fan?;
            if !fan.file_type()?.is_dir() {
                continue;
            }
            for obj in std::fs::read_dir(fan.path())? {
                let obj = obj?;
                let name = format!(
                    "{}{}",
                    fan.file_name().to_string_lossy(),
                    obj.file_name().to_string_lossy()
                );
                if let Some(digest) = Digest::from_hex(&name) {
                    digests.push(digest);
                }
            }
        }
        Ok(digests)
    }

    fn walk_count(&self) -> io::Result<usize> {
        Ok(self.walk()?.len())
    }

    /// Every locally published digest — the peer LIST response and the
    /// repair/census walks read exactly this.
    pub fn local_digests(&self) -> io::Result<Vec<Digest>> {
        self.walk()
    }

    fn object_path(&self, digest: &Digest) -> PathBuf {
        let hex = digest.to_hex();
        self.root.join("objects").join(&hex[..2]).join(&hex[2..])
    }

    /// The on-disk path a local copy of `digest` would live at (the
    /// cluster layer streams peer pushes straight off this file).
    pub fn local_object_path(&self, digest: &Digest) -> PathBuf {
        self.object_path(digest)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine directory (corrupt objects are moved here by
    /// [`Store::get`]/[`Store::fsck`], named `<hex>-<seq>`).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// A fresh staging path; uniqueness matters only within this process.
    fn stage_path(&self) -> PathBuf {
        self.root.join("tmp").join(format!(
            "ingest-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// The publish half shared by [`Store::put`] and
    /// [`StreamingPut::finish`]: moves an already-synced staging file to
    /// its digest path (or discards it on dedup) and forces the directory
    /// entries down. Returns whether a new object was published.
    fn publish(&self, tmp: &Path, digest: &Digest) -> io::Result<bool> {
        let path = self.object_path(digest);
        if path.exists() {
            // Identical content already published (a streamed re-submit,
            // or a concurrent ingest that won): drop the staging copy.
            let _ = std::fs::remove_file(tmp);
            let _ = sync_dir(&self.root.join("tmp"));
            return Ok(false);
        }
        let parent = path.parent().expect("object path has fan-out parent");
        std::fs::create_dir_all(parent)?;
        self.faults.check(FaultPoint::StoreRenameCrash)?;
        match std::fs::rename(tmp, &path) {
            Ok(()) => {}
            Err(e) => {
                // A concurrent ingest of the same content may have won the
                // rename race; identical bytes mean either outcome is fine
                // (and the winner performed the directory syncs).
                let _ = std::fs::remove_file(tmp);
                if path.exists() {
                    return Ok(false);
                }
                return Err(e);
            }
        }
        self.faults.check(FaultPoint::StoreDirSyncCrash)?;
        // Make the publication durable: the new dirent in the fan-out
        // directory and the unlink from the staging directory.
        sync_dir(parent)?;
        sync_dir(&self.root.join("tmp"))?;
        Ok(true)
    }

    /// Ingests a blob. Returns its digest and whether a new object was
    /// written (`false` = content already present, nothing touched disk
    /// beyond the existence probe). On success the object *and* the
    /// directory entries publishing it are fsynced. With a cluster
    /// attached, a fresh object is then pushed to its remote owners
    /// (best-effort — the local fsynced copy already backs the ack;
    /// repair fills any gap an unreachable owner leaves).
    pub fn put(&self, data: &[u8]) -> io::Result<(Digest, bool)> {
        let (digest, fresh) = self.put_local(data)?;
        if fresh {
            if let Some(cluster) = self.cluster.get() {
                cluster.replicate(&digest, self);
            }
        }
        Ok((digest, fresh))
    }

    /// [`Store::put`] without the replication push: peer-facing handlers
    /// and the repair pull phase land objects with this, so a replica
    /// write never fans out again.
    pub fn put_local(&self, data: &[u8]) -> io::Result<(Digest, bool)> {
        let digest = sha256(data);
        if self.object_path(&digest).exists() {
            return Ok((digest, false));
        }
        let tmp = self.stage_path();
        self.faults.check(FaultPoint::StoreStageCrash)?;
        {
            let mut file = File::create(&tmp)?;
            if let Some(keep) = self.faults.torn(FaultPoint::StoreStageTorn, data.len()) {
                file.write_all(&data[..keep])?;
                let _ = file.sync_all();
                return Err(Faults::torn_error(FaultPoint::StoreStageTorn));
            }
            file.write_all(data)?;
            self.faults.check(FaultPoint::StoreTmpSyncCrash)?;
            // The staged bytes must be durable BEFORE the rename: a
            // rename of an unsynced file can publish a name whose
            // content is lost by power failure.
            file.sync_all()?;
        }
        let fresh = self.publish(&tmp, &digest)?;
        Ok((digest, fresh))
    }

    /// Opens a streaming ingest: the returned writer spills chunks into a
    /// staging file and digests them incrementally, so peak memory is one
    /// chunk regardless of blob size. The crash-point walk matches
    /// [`Store::put`] step for step (stage → torn-write → tmp-sync →
    /// rename → dir-sync), so the durability contract and its tests cover
    /// both paths.
    pub fn put_streaming(&self) -> io::Result<StreamingPut<'_>> {
        let tmp = self.stage_path();
        self.faults.check(FaultPoint::StoreStageCrash)?;
        let file = File::create(&tmp)?;
        Ok(StreamingPut {
            store: self,
            file: Some(file),
            tmp,
            hasher: Sha256::new(),
            written: 0,
        })
    }

    /// Whether an object is present.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.object_path(digest).exists()
    }

    /// Reads an object, routing a local miss through the cluster when one
    /// is attached: owners are asked first, then every remaining peer. A
    /// remote hit is verified against its digest and — when this node is
    /// an owner — re-published locally, so routed reads repair replication
    /// gaps as a side effect. Corruption semantics on the local path match
    /// [`Store::get_local`].
    pub fn get(&self, digest: &Digest) -> io::Result<Option<Vec<u8>>> {
        if let Some(data) = self.get_local(digest)? {
            return Ok(Some(data));
        }
        let Some(cluster) = self.cluster.get() else {
            return Ok(None);
        };
        let Some(bytes) = cluster.fetch(digest) else {
            return Ok(None);
        };
        if cluster.is_owner(digest) {
            // An owner that had to route is a replication gap: close it.
            self.put_local(&bytes)?;
        }
        Ok(Some(bytes))
    }

    /// Reads a *local* object back, verifying its content still matches
    /// its name (silent disk corruption surfaces here, not in a replay).
    /// A mismatching object is *quarantined*: moved out of its digest
    /// path so it is never served again and a fresh `put` of the true
    /// bytes can repair the store, then reported as an error for this
    /// read. Never touches the network — the peer GET handler serves
    /// exactly this.
    pub fn get_local(&self, digest: &Digest) -> io::Result<Option<Vec<u8>>> {
        let path = self.object_path(digest);
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        if sha256(&data) != *digest {
            let qpath = self.quarantine_dir().join(format!(
                "{}-{}",
                digest.to_hex(),
                self.tmp_seq.fetch_add(1, Ordering::Relaxed)
            ));
            let quarantined = std::fs::rename(&path, &qpath).is_ok();
            if quarantined {
                let _ = path.parent().map(sync_dir);
                let _ = sync_dir(&self.quarantine_dir());
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "object {digest} fails content verification{}",
                    if quarantined {
                        format!("; quarantined to {}", qpath.display())
                    } else {
                        String::new()
                    }
                ),
            ));
        }
        Ok(Some(data))
    }

    /// Re-hashes every object, quarantining any whose bytes no longer
    /// match their name. Run at daemon startup: after it returns, every
    /// object that `get` can find verifies.
    pub fn fsck(&self) -> io::Result<FsckReport> {
        let mut report = FsckReport::default();
        for digest in self.walk()? {
            match self.get_local(&digest) {
                Ok(Some(_)) => report.verified += 1,
                Ok(None) => {} // raced with a concurrent quarantine
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    report.quarantined += 1;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Number of objects currently stored (a directory walk; cheap at the
    /// corpus scales this daemon serves).
    pub fn len(&self) -> io::Result<usize> {
        self.walk_count()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pres-svc-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let (store, seeded) = Store::open(scratch("roundtrip")).unwrap();
        assert_eq!(seeded, 0);
        let (d1, fresh1) = store.put(b"sketch bytes").unwrap();
        assert!(fresh1);
        let (d2, fresh2) = store.put(b"sketch bytes").unwrap();
        assert_eq!(d1, d2);
        assert!(!fresh2, "second put of identical content must dedup");
        assert_eq!(store.get(&d1).unwrap().unwrap(), b"sketch bytes");
        assert_eq!(store.len().unwrap(), 1);
    }

    #[test]
    fn missing_object_is_none() {
        let (store, _) = Store::open(scratch("missing")).unwrap();
        let ghost = sha256(b"never stored");
        assert_eq!(store.get(&ghost).unwrap(), None);
        assert!(!store.contains(&ghost));
    }

    #[test]
    fn reopen_rebuilds_the_index_and_sweeps_staging() {
        let root = scratch("reopen");
        let digests: Vec<Digest> = {
            let (store, _) = Store::open(&root).unwrap();
            (0..5u8)
                .map(|i| store.put(&[i; 100]).unwrap().0)
                .collect()
        };
        // Simulate a crash mid-ingest: a stale staging file survives.
        std::fs::write(root.join("tmp").join("ingest-crashed"), b"partial").unwrap();
        let (store, seeded) = Store::open(&root).unwrap();
        assert_eq!(seeded, 5);
        assert!(std::fs::read_dir(root.join("tmp")).unwrap().next().is_none());
        for (i, d) in digests.iter().enumerate() {
            assert_eq!(store.get(d).unwrap().unwrap(), vec![i as u8; 100]);
        }
    }

    #[test]
    fn corrupted_object_is_quarantined_not_served_and_repairable() {
        let root = scratch("corrupt");
        let (store, _) = Store::open(&root).unwrap();
        let (d, _) = store.put(b"pristine").unwrap();
        let hex = d.to_hex();
        let path = root.join("objects").join(&hex[..2]).join(&hex[2..]);
        std::fs::write(&path, b"tampered").unwrap();

        // First read: detected, quarantined, reported.
        let err = store.get(&d).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("quarantined"), "{err}");
        assert!(!path.exists(), "corrupt object must leave its digest path");
        let quarantined: Vec<_> = std::fs::read_dir(store.quarantine_dir())
            .unwrap()
            .collect();
        assert_eq!(quarantined.len(), 1);

        // Second read: plain miss, not a poisoned error forever.
        assert_eq!(store.get(&d).unwrap(), None);
        assert!(!store.contains(&d));

        // Re-ingesting the true bytes repairs the store.
        let (d2, fresh) = store.put(b"pristine").unwrap();
        assert_eq!(d2, d);
        assert!(fresh);
        assert_eq!(store.get(&d).unwrap().unwrap(), b"pristine");
    }

    #[test]
    fn streaming_put_matches_monolithic_put() {
        let (store, _) = Store::open(scratch("streaming")).unwrap();
        let blob: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        let expect = sha256(&blob);

        let mut put = store.put_streaming().unwrap();
        for chunk in blob.chunks(7_001) {
            put.write(chunk).unwrap();
        }
        assert_eq!(put.written(), blob.len() as u64);
        let (digest, fresh) = put.finish().unwrap();
        assert_eq!(digest, expect, "streamed digest must equal one-shot");
        assert!(fresh);
        assert_eq!(store.get(&digest).unwrap().unwrap(), blob);

        // A monolithic re-put of the same bytes dedups, and vice versa.
        assert_eq!(store.put(&blob).unwrap(), (expect, false));
        let mut again = store.put_streaming().unwrap();
        again.write(&blob).unwrap();
        assert_eq!(again.finish().unwrap(), (expect, false));
        assert_eq!(store.len().unwrap(), 1);
        // Dedup discarded both staging files.
        assert!(std::fs::read_dir(store.root().join("tmp"))
            .unwrap()
            .next()
            .is_none());
    }

    #[test]
    fn empty_stream_is_the_empty_object() {
        let (store, _) = Store::open(scratch("streaming-empty")).unwrap();
        let put = store.put_streaming().unwrap();
        let (digest, fresh) = put.finish().unwrap();
        assert_eq!(digest, sha256(b""));
        assert!(fresh);
        assert_eq!(store.get(&digest).unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn dropped_stream_removes_its_staging_file() {
        let (store, _) = Store::open(scratch("streaming-abort")).unwrap();
        {
            let mut put = store.put_streaming().unwrap();
            put.write(b"half a sketch").unwrap();
            // Dropped without finish: the disconnect-mid-stream path.
        }
        assert!(std::fs::read_dir(store.root().join("tmp"))
            .unwrap()
            .next()
            .is_none());
        assert_eq!(store.len().unwrap(), 0);
    }

    #[test]
    fn streaming_put_hits_the_same_crash_points() {
        use crate::faultpoint::{FaultMode, FaultPoint};
        // Arm each store-path crash point and check the streamed ingest
        // fails at it, leaving no published object — the same contract
        // tests/svc_crash.rs pins for the monolithic path.
        for point in [
            FaultPoint::StoreStageCrash,
            FaultPoint::StoreTmpSyncCrash,
            FaultPoint::StoreRenameCrash,
        ] {
            let faults = Faults::new();
            faults.arm(point, FaultMode::Crash, 1);
            let (store, _) =
                Store::open_with_faults(scratch(&format!("stream-{point:?}")), faults).unwrap();
            let res = store.put_streaming().and_then(|mut p| {
                p.write(b"doomed bytes")?;
                p.finish().map(|_| ())
            });
            assert!(res.is_err(), "{point:?} did not fire");
            assert_eq!(store.len().unwrap(), 0, "{point:?} published anyway");
        }
        // Torn chunk write: fails the stream; nothing is ever published
        // and the in-process drop (unlike a real crash) clears the stage.
        let faults = Faults::new();
        faults.arm(FaultPoint::StoreStageTorn, FaultMode::Torn { keep: 4 }, 1);
        let (store, _) = Store::open_with_faults(scratch("stream-torn"), faults).unwrap();
        let mut put = store.put_streaming().unwrap();
        assert!(put.write(b"these bytes get torn").is_err());
        drop(put);
        assert_eq!(store.len().unwrap(), 0);
    }

    #[test]
    fn fsck_quarantines_every_corrupt_object() {
        let root = scratch("fsck");
        let (store, _) = Store::open(&root).unwrap();
        let good: Vec<Digest> = (0..3u8).map(|i| store.put(&[i; 64]).unwrap().0).collect();
        let (bad, _) = store.put(b"will rot").unwrap();
        let hex = bad.to_hex();
        std::fs::write(
            root.join("objects").join(&hex[..2]).join(&hex[2..]),
            b"rotted",
        )
        .unwrap();

        let report = store.fsck().unwrap();
        assert_eq!(report.verified, 3);
        assert_eq!(report.quarantined, 1);
        assert_eq!(store.len().unwrap(), 3);
        for d in &good {
            assert!(store.get(d).unwrap().is_some());
        }
        // A second pass finds a clean store.
        let report = store.fsck().unwrap();
        assert_eq!(report, FsckReport { verified: 3, quarantined: 0 });
    }
}
