//! Readiness multiplexing for the sharded connection workers.
//!
//! The workspace is dependency-free by policy, so instead of an event
//! library this is the thinnest possible shim over `poll(2)`: a
//! `#[repr(C)]` `pollfd`, the three flag bits the server uses, and one
//! `wait` call. std already links libc on every unix target, so declaring
//! the symbol costs nothing and adds no dependency.
//!
//! On non-Linux targets the shim degrades to a bounded sleep that reports
//! every descriptor ready: the connection workers then run their
//! non-blocking read/write attempts unconditionally, which is correct
//! (sockets are non-blocking; a not-actually-ready socket returns
//! `WouldBlock`) just less efficient. All correctness lives in the worker
//! loop; this module only decides how long to sleep.

use std::io;
use std::time::Duration;

/// There is data to read (or a pending connection to accept).
pub const POLLIN: i16 = 0x001;
/// Writing now will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (only ever returned in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (only ever returned in `revents`).
pub const POLLHUP: i16 = 0x010;

/// One descriptor's interest set and, after [`wait`], its readiness.
/// Layout-compatible with the kernel's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any requested (or error/hangup) condition fired.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

#[cfg(target_os = "linux")]
pub fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: std::os::raw::c_int)
            -> std::os::raw::c_int;
    }
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    loop {
        // SAFETY: `PollFd` is repr(C) with the kernel's pollfd layout, the
        // slice is valid for `len` entries for the duration of the call,
        // and poll(2) writes only within it.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// Portable fallback: sleep briefly and report everything ready. The
/// worker's non-blocking I/O turns spurious readiness into `WouldBlock`.
#[cfg(not(target_os = "linux"))]
pub fn wait(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    std::thread::sleep(timeout.min(Duration::from_millis(1)));
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    Ok(fds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[cfg(unix)]
    fn raw(stream: &TcpStream) -> i32 {
        use std::os::unix::io::AsRawFd;
        stream.as_raw_fd()
    }

    #[cfg(not(unix))]
    fn raw(_stream: &TcpStream) -> i32 {
        0
    }

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut writer = TcpStream::connect(addr).unwrap();
        let (mut reader, _) = listener.accept().unwrap();

        // Nothing buffered yet: a short poll sees no POLLIN (on the real
        // implementation; the fallback over-reports by design, and the
        // read below disambiguates).
        let mut fds = [PollFd::new(raw(&reader), POLLIN)];
        wait(&mut fds, Duration::from_millis(1)).unwrap();

        writer.write_all(b"ping").unwrap();
        writer.flush().unwrap();
        // With bytes in flight, readiness must arrive well within a
        // generous deadline.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut fds = [PollFd::new(raw(&reader), POLLIN)];
            let n = wait(&mut fds, Duration::from_millis(50)).unwrap();
            if n > 0 && fds[0].readable() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "POLLIN never fired");
        }
        let mut buf = [0u8; 4];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // A connected socket with room in its send buffer is writable.
        let mut fds = [PollFd::new(raw(&writer), POLLOUT)];
        let n = wait(&mut fds, Duration::from_millis(50)).unwrap();
        assert!(n > 0 && fds[0].writable());
    }
}
