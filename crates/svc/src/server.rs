//! The daemon: accept loop, connection handlers, worker pool, lifecycle.
//!
//! Threading model: one accept thread, one OS thread per live connection
//! (connections are few and long-polling), and
//! [`QueueConfig::workers`](crate::queue::QueueConfig) job workers each
//! owning a warm [`VthreadPool`]. Connections are isolated: a malformed
//! frame, oversized length prefix, or mid-request disconnect costs that
//! one connection (answered with an ERROR frame when the transport still
//! works, counted in [`Metrics::frames_rejected`]) and never the accept
//! loop.
//!
//! Shutdown — whether from [`Server::shutdown`] or a SHUTDOWN frame — is a
//! drain: the queue stops accepting, running jobs finish, queued jobs stay
//! journaled for the next start, and [`Server::join`] returns once every
//! worker is idle.

use crate::metrics::Metrics;
use crate::proto::{Frame, Request, Response, DEFAULT_MAX_FRAME};
use crate::queue::{JobQueue, JobStatus, QueueConfig};
use crate::store::Store;
use pres_apps::registry::all_bugs;
use pres_core::explore::ExploreConfig;
use pres_tvm::pool::VthreadPool;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:7557`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Root directory for the store and journal.
    pub data_dir: PathBuf,
    /// Queue tuning (worker count, budgets, retries).
    pub queue: QueueConfig,
    /// Cap on accepted frame payloads.
    pub max_frame: u32,
    /// Per-connection read timeout: a connection idle this long is
    /// dropped, bounding the thread cost of abandoned clients.
    pub read_timeout: Duration,
    /// How often the metrics log line is emitted (`None` = never).
    pub log_interval: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7557".into(),
            data_dir: PathBuf::from("pres-svc-data"),
            queue: QueueConfig::default(),
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            log_interval: Some(Duration::from_secs(10)),
        }
    }
}

/// A running daemon.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<JobQueue>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    logger: Option<JoinHandle<()>>,
}

impl Server {
    /// Opens the store and journal under `data_dir`, replays unfinished
    /// jobs, binds the listener, and starts accepting.
    pub fn start(opts: ServeOptions) -> io::Result<Server> {
        let metrics = Arc::new(Metrics::new());
        let (store, _) = Store::open(opts.data_dir.join("store"))?;
        // Self-verify the whole store before serving: any object that
        // rotted on disk is quarantined now, so every post-start read
        // either verifies or is a clean miss (a resubmission repairs it).
        let fsck = store.fsck()?;
        if fsck.quarantined > 0 {
            eprintln!(
                "pres-svc: startup fsck quarantined {} corrupt object(s) ({} verified)",
                fsck.quarantined, fsck.verified
            );
        }
        let queue = Arc::new(JobQueue::open(
            opts.data_dir.join("journal.log"),
            Arc::new(store),
            Arc::clone(&metrics),
            opts.queue.clone(),
        )?);
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let workers: Vec<JoinHandle<()>> = (0..opts.queue.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                thread::Builder::new()
                    .name(format!("svc-job-{i}"))
                    .spawn(move || {
                        // One warm pool per worker, reused across jobs:
                        // steady-state job turnover spawns no OS threads.
                        let pool = VthreadPool::new(ExploreConfig::default().pool_width);
                        queue.work(&pool);
                    })
                    .expect("spawn job worker")
            })
            .collect();

        let accept = {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            let read_timeout = opts.read_timeout;
            let max_frame = opts.max_frame;
            thread::Builder::new()
                .name("svc-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        metrics.connections.fetch_add(1, Ordering::Relaxed);
                        let queue = Arc::clone(&queue);
                        let metrics = Arc::clone(&metrics);
                        let shutdown = Arc::clone(&shutdown);
                        let _ = thread::Builder::new().name("svc-conn".into()).spawn(
                            move || {
                                serve_connection(
                                    stream,
                                    &queue,
                                    &metrics,
                                    &shutdown,
                                    read_timeout,
                                    max_frame,
                                );
                            },
                        );
                    }
                })
                .expect("spawn accept loop")
        };

        let logger = opts.log_interval.map(|interval| {
            let metrics = Arc::clone(&metrics);
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("svc-log".into())
                .spawn(move || {
                    let tick = Duration::from_millis(100);
                    let mut since_log = Duration::ZERO;
                    while !shutdown.load(Ordering::SeqCst) {
                        thread::sleep(tick);
                        since_log += tick;
                        if since_log >= interval {
                            eprintln!("{}", metrics.snapshot().log_line());
                            since_log = Duration::ZERO;
                        }
                    }
                })
                .expect("spawn metrics logger")
        });

        Ok(Server {
            addr,
            queue,
            metrics,
            shutdown,
            accept: Some(accept),
            workers,
            logger,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics block.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The queue (for in-process inspection in tests and benches).
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// Initiates the drain-and-exit sequence (idempotent).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.drain();
        // The accept loop blocks in `accept(2)`; a throwaway local
        // connection is the portable way to kick it loose.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the drain to complete: running jobs finished, accept loop
    /// and workers exited.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.logger.take() {
            let _ = h.join();
        }
        self.queue.await_drained();
    }
}

/// One connection's request loop. Returns (closing the connection) on
/// transport errors, timeouts, malformed frames, or after SHUTDOWN.
fn serve_connection(
    mut stream: TcpStream,
    queue: &JobQueue,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    read_timeout: Duration,
    max_frame: u32,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match Frame::read_from(&mut stream, max_frame) {
            // Transport gone or idle past the timeout: just close.
            Err(_) => return,
            Ok(Err(proto_err)) => {
                metrics.frames_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        message: proto_err.to_string(),
                    },
                );
                return;
            }
            Ok(Ok(frame)) => frame,
        };
        let request = match Request::from_frame(&frame) {
            Ok(r) => r,
            Err(proto_err) => {
                metrics.frames_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        message: proto_err.to_string(),
                    },
                );
                return;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = handle(request, queue, metrics, shutdown);
        if write_response(&mut stream, &response).is_err() {
            return;
        }
        if is_shutdown {
            // Kick the accept loop out of `accept(2)` so it observes the
            // flag; our local address *is* the server's listen address.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
    }
}

/// Encodes and writes one response. A response too large for the u32
/// frame length (a pathological certificate) degrades to an ERROR frame
/// rather than killing the connection with nothing on the wire.
fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    match response.to_frame() {
        Ok(frame) => frame.write_to(stream),
        Err(e) => Response::Error {
            message: e.to_string(),
        }
        .to_frame()
        .expect("an error frame is always small enough to encode")
        .write_to(stream),
    }
}

fn handle(
    request: Request,
    queue: &JobQueue,
    metrics: &Metrics,
    shutdown: &AtomicBool,
) -> Response {
    match request {
        Request::Submit { bug, sketch } => {
            metrics.submits.fetch_add(1, Ordering::Relaxed);
            if !all_bugs().iter().any(|b| b.id == bug) {
                return Response::Error {
                    message: format!("unknown bug '{bug}' — see `pres list`"),
                };
            }
            let (digest, fresh_object) = match queue.store().put(&sketch) {
                Ok(r) => r,
                Err(e) => {
                    return Response::Error {
                        message: format!("store ingest failed: {e}"),
                    }
                }
            };
            match queue.submit(&bug, digest) {
                Ok((job, fresh_job)) => Response::Submitted {
                    job,
                    sketch: digest,
                    fresh_object,
                    fresh_job,
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::Status { job } => Response::Status {
            status: queue.status(job),
        },
        Request::Result { job } => match queue.status(job) {
            Some(JobStatus::Succeeded { certificate, .. }) => {
                match queue.store().get(&certificate) {
                    Ok(Some(bytes)) => Response::Result { certificate: bytes },
                    Ok(None) => Response::Error {
                        message: format!("certificate object {certificate} missing from store"),
                    },
                    Err(e) => Response::Error {
                        message: format!("certificate read failed: {e}"),
                    },
                }
            }
            Some(status) => Response::Error {
                message: format!("job {job} has no certificate: {status}"),
            },
            None => Response::Error {
                message: format!("unknown job {job}"),
            },
        },
        Request::Stats => Response::Stats {
            text: metrics.snapshot().to_string(),
        },
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            queue.drain();
            Response::ShuttingDown
        }
    }
}
